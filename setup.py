"""Setup shim so editable installs work without the `wheel` package.

The project metadata lives in pyproject.toml; this file exists because the
environment has no network access and no `wheel` package, so pip's legacy
(setup.py develop) editable path is the one that works offline.
"""
from setuptools import setup

setup()
