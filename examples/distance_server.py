#!/usr/bin/env python3
"""Two epsilon levels behind one async distance server.

The serving subsystem (:mod:`repro.serve`) operationalises the
stretch/size trade-off: keep several oracle artifacts at different
stretch levels and answer each query from the cheapest one that
satisfies its stretch budget.  This example walks the full serving loop:

1. build TWO ``landmark-mssp`` oracles of the same graph at different
   epsilon levels (a tight 3(1+0.1)x one and a loose 3(1+0.9)x one) and
   persist them next to a registry manifest;
2. discover both through an :class:`ArtifactRegistry` (lazy engines,
   LRU-evicted) and route with a :class:`StretchRouter`;
3. serve concurrent queries through :class:`DistanceServer` — budgetless
   queries coalesce onto the cheap artifact, budgeted ones onto the
   tight artifact;
4. drive a Zipf-skewed closed-loop workload with the load generator and
   read the per-client stats, per-engine stats, and route counts.

Run with::

    python examples/distance_server.py [n] [queries]
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

from repro.graphs import random_weighted_graph
from repro.oracle import OracleBuilder
from repro.serve import (
    ArtifactRegistry,
    DistanceServer,
    ServerConfig,
    StretchRouter,
    run_closed_loop,
    zipf_pairs,
)


async def serve(registry: ArtifactRegistry, n: int, queries: int) -> None:
    router = StretchRouter(registry)
    config = ServerConfig(coalesce_window=0.001, max_batch=4096)
    async with DistanceServer(router, config) as server:
        # --- budget routing: same pair, two guarantees -------------------
        tight_budget = registry.get("tight").stretch.multiplicative
        loose = await server.dist(0, n - 1, client="demo")
        tight = await server.dist(0, n - 1, multiplicative=tight_budget,
                                  client="demo")
        print("\n-- one pair, two stretch budgets --")
        print(f"dist(0, {n - 1})  no budget      = {loose:g}  (served by "
              f"{router.route().name!r})")
        print(f"dist(0, {n - 1})  <= {tight_budget:g}x budget = {tight:g}  "
              f"(served by {router.route(multiplicative=tight_budget).name!r})")

        # --- a coalesced Zipf workload ----------------------------------
        pairs = zipf_pairs(n, queries, skew=1.0, seed=42)
        report = await run_closed_loop(server, pairs, concurrency=64,
                                       client="loadgen")
        print("\n-- closed-loop workload --")
        print(report.summary())

        stats = server.stats()
        print("\n-- server stats --")
        print(f"requests         : {stats['requests_total']} "
              f"({stats['shed_total']} shed)")
        print(f"engine batches   : {stats['engine_batches']} for "
              f"{stats['coalesced_keys']} coalesced keys")
        print(f"routes           : {stats['router']['routes']}")
        for name, engine_stats in stats["engines"].items():
            print(f"engine[{name}]: queries={engine_stats['queries_total']}, "
                  f"hit_rate={engine_stats['cache_hit_rate']:.3f}, "
                  f"batch_sizes={engine_stats['batch_sizes']}")


def main(n: int = 96, queries: int = 2000) -> None:
    print(f"== Async distance serving on n={n}, two epsilon levels ==")
    graph = random_weighted_graph(n, average_degree=8, max_weight=32, seed=7)
    print(f"graph: {graph.n} nodes, {graph.num_edges()} edges")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        # The expensive half, paid once per epsilon level.
        for name, epsilon in (("tight", 0.1), ("loose", 0.9)):
            builder = OracleBuilder(strategy="landmark-mssp", epsilon=epsilon)
            artifact = builder.build(graph)
            artifact.save(root / f"{name}.npz")
            stretch = artifact.stretch
            print(f"built {name!r}: eps={epsilon} -> "
                  f"{stretch.multiplicative:g}x guarantee")

        registry = ArtifactRegistry(capacity=2)
        registry.discover(root)
        manifest = registry.write_manifest(root / "fleet.json")
        print(f"manifest: {manifest.name} pins {len(registry)} artifacts")

        asyncio.run(serve(registry, n, queries))


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    main(size, count)
