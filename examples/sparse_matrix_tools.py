#!/usr/bin/env python3
"""Using the sparse matrix-multiplication tools directly.

The distance algorithms are built on two reusable matrix primitives:

* Theorem 8 — output-sensitive sparse multiplication, whose cost depends on
  the densities of both inputs *and* of the output;
* Theorem 14 — filtered multiplication, which keeps only the ρ smallest
  entries per output row and pays for ρ rather than for the true output
  density.

This example multiplies matrices with three very different sparsity
patterns and compares the simulated round costs of the paper's algorithms
against the dense 3D algorithm and the CLT18 sparse algorithm, reproducing
the comparisons discussed in Section 1.3 / Section 2 of the paper.

Run with::

    python examples/sparse_matrix_tools.py [n]
"""

from __future__ import annotations

import random
import sys

from repro import dense_mm, filtered_mm, output_sensitive_mm, sparse_mm_clt18
from repro.matmul import SemiringMatrix
from repro.semiring import MIN_PLUS


def banded_matrix(n: int, bandwidth: int, seed: int) -> SemiringMatrix:
    """Sparse input whose product is also sparse (band x band = wider band)."""
    rng = random.Random(seed)
    matrix = SemiringMatrix(n, MIN_PLUS)
    for i in range(n):
        matrix.set(i, i, 0.0)
        for offset in range(1, bandwidth + 1):
            if i + offset < n:
                matrix.set(i, i + offset, float(rng.randint(1, 9)))
                matrix.set(i + offset, i, float(rng.randint(1, 9)))
    return matrix


def star_matrix(n: int) -> SemiringMatrix:
    """The paper's Section 1.3 example: sparse input, dense product."""
    matrix = SemiringMatrix(n, MIN_PLUS)
    matrix.set(0, 0, 0.0)
    for leaf in range(1, n):
        matrix.set(0, leaf, 1.0)
        matrix.set(leaf, 0, 1.0)
        matrix.set(leaf, leaf, 0.0)
    return matrix


def random_sparse(n: int, per_row: int, seed: int) -> SemiringMatrix:
    rng = random.Random(seed)
    matrix = SemiringMatrix(n, MIN_PLUS)
    for i in range(n):
        for _ in range(per_row):
            matrix.set(i, rng.randrange(n), float(rng.randint(1, 99)))
    return matrix


def report(name: str, S: SemiringMatrix, T: SemiringMatrix) -> None:
    print(f"\n-- {name} --")
    reference = output_sensitive_mm(S, T)  # doubling variant, also the answer
    true_density = reference.product.density()
    print(
        f"input densities rho_S={S.density()}, rho_T={T.density()}, "
        f"true output density rho_P={true_density}"
    )
    rows = []
    ours = output_sensitive_mm(S, T, rho_hat=true_density)
    rows.append(("Theorem 8 (output-sensitive)", ours.rounds))
    clt = sparse_mm_clt18(S, T)
    rows.append(("CLT18 sparse baseline", clt.rounds))
    dense = dense_mm(S, T)
    rows.append(("dense 3D baseline", dense.rounds))
    filtered = filtered_mm(S, T, rho=4)
    rows.append(("Theorem 14 (rho=4 filtered)", filtered.rounds))
    for label, rounds in rows:
        print(f"  {label:<32} {rounds:>8.0f} rounds")
    assert ours.product.equals(clt.product)
    assert ours.product.equals(dense.product)


def main(n: int = 96) -> None:
    print(f"== Sparse matrix multiplication tools (n={n}) ==")
    report("banded inputs, sparse output", banded_matrix(n, 2, 1), banded_matrix(n, 2, 2))
    report("star inputs, dense output", star_matrix(n), star_matrix(n))
    report(
        "random sparse inputs, medium output",
        random_sparse(n, 4, 3),
        random_sparse(n, 4, 4),
    )
    print(
        "\nTheorem 8 matches CLT18 when the output is dense and beats it when "
        "the output is sparse; Theorem 14 keeps the cost low even for dense "
        "true products by paying only for the rho entries per row it keeps."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    main(size)
