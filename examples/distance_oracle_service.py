#!/usr/bin/env python3
"""Distance-oracle service walkthrough: build once, persist, query many.

The headline algorithms compute distances once and throw the result away;
a serving system wants the opposite split — pay the expensive Congested
Clique computation once, keep the artifact, and answer queries in
microseconds.  This example walks the full loop:

1. build a ``landmark-mssp`` oracle (exact √n-balls + hitting-set
   landmarks + (1 + ε)-approximate MSSP table) and inspect its build cost;
2. save it to disk (compressed ``.npz`` + JSON metadata sidecar) and load
   it back, as a service restart would;
3. serve point, batch, and k-nearest queries through the LRU-cached
   engine;
4. validate answers against exact Dijkstra and read the serving stats
   (cache hit rate, latency percentiles).

Run with::

    python examples/distance_oracle_service.py [n] [epsilon]
"""

from __future__ import annotations

import random
import sys
import tempfile
from pathlib import Path

from repro.graphs import dijkstra, random_weighted_graph
from repro.oracle import OracleArtifact, OracleBuilder, QueryEngine


def main(n: int = 96, epsilon: float = 0.5) -> None:
    print(f"== Distance-oracle service on n={n}, eps={epsilon} ==\n")

    graph = random_weighted_graph(n, average_degree=8, max_weight=32, seed=7)
    print(f"graph: {graph.n} nodes, {graph.num_edges()} edges")

    # --- 1. build ---------------------------------------------------------
    builder = OracleBuilder(strategy="landmark-mssp", epsilon=epsilon)
    artifact = builder.build(graph)
    print("\n-- oracle build (paid once) --")
    print(builder.report(artifact).summary())

    # --- 2. persist and reload -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "oracle.npz"
        payload, sidecar = artifact.save(path)
        size_kb = payload.stat().st_size / 1024
        print("\n-- persistence --")
        print(f"payload  : {payload.name} ({size_kb:.1f} KiB compressed)")
        print(f"metadata : {sidecar.name}")
        engine = QueryEngine(OracleArtifact.load(path))  # a fresh "server"

    # --- 3. serve queries --------------------------------------------------
    rng = random.Random(11)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(2000)]
    engine.batch(pairs)  # cold pass fills the cache
    engine.batch(pairs)  # warm pass is served from the cache

    u, v = pairs[0]
    print("\n-- queries --")
    print(f"dist({u}, {v})    = {engine.dist(u, v):g}")
    nearest = engine.k_nearest(0, 5)
    print(f"k_nearest(0, 5) = {nearest}")

    # --- 4. validate and report stats --------------------------------------
    bound = artifact.stretch
    worst = 1.0
    exact_from_u = {u: dijkstra(graph, u) for u in {p[0] for p in pairs[:200]}}
    for u, v in pairs[:200]:
        true = exact_from_u[u][v]
        if true in (0, float("inf")):
            continue
        estimate = engine.dist(u, v)
        assert true - 1e-9 <= estimate <= bound.upper_bound(true) + 1e-9
        worst = max(worst, estimate / true)
    print("\n-- validation against exact Dijkstra (200 sampled pairs) --")
    print(f"max stretch      : {worst:.3f} "
          f"(guarantee {bound.multiplicative:g}x)")

    stats = engine.stats()
    latency = stats["latency"]
    print("\n-- serving stats --")
    print(f"queries          : {stats['queries']}")
    print(f"cache hit rate   : {stats['cache_hit_rate']:.3f}")
    print(f"latency P50/P95/P99 (us): {latency['p50_us']:.1f} / "
          f"{latency['p95_us']:.1f} / {latency['p99_us']:.1f}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(size, eps)
