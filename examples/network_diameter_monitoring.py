#!/usr/bin/env python3
"""Monitoring the diameter of changing network topologies.

Operators of overlay networks track the network diameter as a health metric
(it bounds worst-case routing latency).  Computing it exactly needs all-pairs
distances; the paper's Claim 35 gives a near-3/2 approximation in
polylogarithmic rounds instead.

This example runs the diameter approximation across a set of topologies with
very different true diameters and reports estimate vs truth, together with
the guaranteed window [2D/3 - W, (1+eps)D].

Run with::

    python examples/network_diameter_monitoring.py [epsilon]
"""

from __future__ import annotations

import sys

from repro import approximate_diameter
from repro.graphs import (
    barbell_graph,
    cycle_graph,
    erdos_renyi,
    exact_diameter,
    grid_graph,
    path_graph,
    power_law_graph,
    random_weighted_graph,
)


def main(epsilon: float = 0.5) -> None:
    print(f"== Diameter monitoring (eps={epsilon}) ==\n")

    topologies = {
        "path(60)": path_graph(60),
        "cycle(60)": cycle_graph(60),
        "grid(8x8)": grid_graph(8, 8),
        "barbell(12,20)": barbell_graph(12, 20),
        "ER(64, p=0.08)": erdos_renyi(64, 0.08, seed=2),
        "power-law(64)": power_law_graph(64, attachment=2, seed=3),
        "weighted ER(64)": random_weighted_graph(64, average_degree=6, max_weight=10, seed=4),
    }

    header = f"{'topology':<18} {'true D':>8} {'estimate':>9} {'lower bound':>12} {'upper bound':>12} {'rounds':>8}"
    print(header)
    print("-" * len(header))
    for name, graph in topologies.items():
        true_diameter = exact_diameter(graph)
        result = approximate_diameter(graph, epsilon=epsilon)
        w_max = graph.max_weight()
        lower = 2 * true_diameter / 3 - (w_max if w_max > 1 else 0)
        upper = (1 + epsilon) * true_diameter
        print(
            f"{name:<18} {true_diameter:>8.0f} {result.estimate:>9.0f} "
            f"{lower:>12.1f} {upper:>12.1f} {result.rounds:>8.0f}"
        )

    print(
        "\nEvery estimate falls inside the guaranteed window "
        "[2D/3 - W_max, (1+eps) D] of Claim 35 (the additive W_max slack only "
        "applies to weighted graphs)."
    )


if __name__ == "__main__":
    eps = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    main(eps)
