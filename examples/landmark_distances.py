#!/usr/bin/env python3
"""Landmark-based distance estimation in an overlay network.

The introduction of the paper motivates Congested Clique algorithms with
fully connected overlays (data centres, P2P overlays).  A standard task in
such systems is *landmark routing*: designate Õ(√n) well-connected nodes as
landmarks and let every node learn its distance to every landmark, so that
any pairwise distance can be estimated by triangulation.

This example builds a power-law overlay, picks the √n highest-degree hubs as
landmarks, runs the paper's (1 + ε)-approximate multi-source shortest paths
(Theorem 3), and then uses the landmark distances for pairwise distance
triangulation, reporting the quality of both steps.

Run with::

    python examples/landmark_distances.py [n] [epsilon]
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro import mssp
from repro.graphs import dijkstra, power_law_graph


def main(n: int = 96, epsilon: float = 0.5) -> None:
    print(f"== Landmark distances on a power-law overlay (n={n}, eps={epsilon}) ==\n")

    graph = power_law_graph(n, attachment=3, seed=7, max_weight=8)
    degrees = sorted(((graph.degree(v), v) for v in graph.nodes()), reverse=True)
    num_landmarks = max(2, int(math.isqrt(n)))
    landmarks = sorted(v for _, v in degrees[:num_landmarks])
    print(f"graph: {graph.n} nodes, {graph.num_edges()} edges")
    print(f"landmarks ({num_landmarks} hubs): {landmarks}")

    # --- Theorem 3: MSSP from the landmarks -------------------------------
    result = mssp(graph, landmarks, epsilon=epsilon)
    print(f"\nMSSP simulated rounds: {result.rounds:.0f}")
    print(f"hopset size used     : {result.details['hopset_edges']} edges, beta={result.details['beta']}")

    exact_from_landmarks = {s: dijkstra(graph, s) for s in landmarks}
    worst = 1.0
    for v in range(graph.n):
        for index, s in enumerate(result.sources):
            true = exact_from_landmarks[s][v]
            if true in (0, math.inf):
                continue
            worst = max(worst, result.distances[v, index] / true)
    print(f"max landmark-distance stretch: {worst:.3f}  (guarantee: {1 + epsilon})")

    # --- landmark triangulation for arbitrary pairs ------------------------
    # Estimate d(u, v) as min over landmarks s of d(u, s) + d(s, v); this is
    # an upper bound whose quality depends on how well landmarks cover the
    # graph -- the same idea the paper's (3+eps) APSP uses with a hitting set.
    rng = np.random.default_rng(1)
    sample_pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(200, 2)) if a != b]
    ratios = []
    for u, v in sample_pairs:
        true = dijkstra(graph, u)[v]
        if true in (0, math.inf):
            continue
        estimate = float(np.min(result.distances[u] + result.distances[v]))
        ratios.append(estimate / true)
    ratios = np.array(ratios)
    print("\n-- Triangulated pairwise estimates over 200 random pairs --")
    print(f"mean stretch : {ratios.mean():.3f}")
    print(f"p95 stretch  : {np.percentile(ratios, 95):.3f}")
    print(f"max stretch  : {ratios.max():.3f}")

    print("\n-- Round breakdown --")
    print(result.clique.report())


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(size, eps)
