#!/usr/bin/env python3
"""From distance estimates to actual routes.

Distance values alone rarely suffice in a deployed overlay — nodes need to
know *which neighbour to forward to*.  The paper points out (Section 3.1)
that its matrix tools produce witnesses for free, which is exactly the
information needed to reconstruct paths.  This example demonstrates the
three path-recovery utilities of the library:

1. per-node shortest-path trees for the k nearest nodes (witnessed filtered
   squaring, the Theorem 18 tool),
2. the exact shortest-path tree of the Theorem 33 SSSP, and
3. next-hop routing tables derived from an exact APSP matrix, driving greedy
   forwarding.

Run with::

    python examples/routing_tables.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import exact_sssp
from repro.baselines import apsp_dense_mm
from repro.distance import (
    extract_path,
    forward_route,
    k_nearest_paths,
    path_weight,
    routing_table_from_estimates,
    sssp_tree,
)
from repro.graphs import all_pairs_dijkstra, dijkstra, random_weighted_graph


def main(n: int = 64) -> None:
    graph = random_weighted_graph(n, average_degree=6, max_weight=20, seed=11)
    print(f"== Path recovery on a weighted graph (n={n}, m={graph.num_edges()}) ==\n")

    # --- 1. k-nearest shortest paths ---------------------------------------
    k = 6
    paths = k_nearest_paths(graph, k)
    exact = all_pairs_dijkstra(graph)
    sample_node = 0
    print(f"-- k-nearest paths of node {sample_node} (k={k}) --")
    for target, path in sorted(paths[sample_node].items()):
        weight = path_weight(graph, path)
        marker = "exact" if abs(weight - exact[sample_node][target]) < 1e-9 else "NOT OPTIMAL"
        print(f"  to {target:>3}: {' -> '.join(map(str, path)):<40s} weight {weight:>5.0f}  [{marker}]")

    # --- 2. SSSP tree --------------------------------------------------------
    source = 0
    sssp = exact_sssp(graph, source)
    predecessors = sssp_tree(graph, source, list(sssp.distances))
    farthest = int(np.nanargmax(np.where(np.isfinite(sssp.distances), sssp.distances, -1)))
    tree_path = extract_path(predecessors, source, farthest)
    print(f"\n-- Theorem 33 SSSP tree from node {source} --")
    print(f"farthest reachable node: {farthest} at distance {sssp.distances[farthest]:.0f}")
    print(f"path: {' -> '.join(map(str, tree_path))}")
    print(f"path weight matches Dijkstra: {abs(path_weight(graph, tree_path) - dijkstra(graph, source)[farthest]) < 1e-9}")

    # --- 3. routing tables from exact APSP ----------------------------------
    apsp = apsp_dense_mm(graph)
    tables = routing_table_from_estimates(graph, apsp.estimates)
    print("\n-- Greedy forwarding over next-hop tables (exact APSP estimates) --")
    rng = np.random.default_rng(3)
    optimal = 0
    for _ in range(8):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v or not np.isfinite(apsp.estimates[u, v]):
            continue
        route = forward_route(graph, tables, u, v)
        weight = path_weight(graph, route)
        is_optimal = abs(weight - exact[u][v]) < 1e-9
        optimal += is_optimal
        print(f"  {u:>3} -> {v:>3}: {len(route) - 1} hops, weight {weight:>5.0f}, optimal: {is_optimal}")
    print("\nEvery forwarded route follows a true shortest path because the "
          "tables were built from a locally consistent (exact) distance matrix.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    main(size)
