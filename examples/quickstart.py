#!/usr/bin/env python3
"""Quickstart: approximate all-pairs shortest paths in the Congested Clique.

This example walks through the library's main entry points on a small
weighted graph:

1. generate a reproducible random weighted graph;
2. run the paper's (2 + ε, (1 + ε)W)-approximate weighted APSP (Theorem 28);
3. compare the estimates against exact sequential Dijkstra;
4. compare the simulated round count against the exact-APSP baseline
   (iterated dense matrix squaring, Õ(n^{1/3}) rounds);
5. print where the rounds were spent.

Run with::

    python examples/quickstart.py [n] [epsilon]
"""

from __future__ import annotations

import sys

from repro import apsp_weighted
from repro.baselines import apsp_dense_mm
from repro.graphs import all_pairs_dijkstra, random_weighted_graph
from repro.graphs.reference import approximation_ratio


def main(n: int = 64, epsilon: float = 0.5) -> None:
    print(f"== Quickstart: (2+eps)-approximate APSP on n={n}, eps={epsilon} ==\n")

    graph = random_weighted_graph(n, average_degree=8, max_weight=32, seed=42)
    print(f"graph: {graph.n} nodes, {graph.num_edges()} edges, max weight {graph.max_weight()}")

    # --- the paper's algorithm -------------------------------------------
    result = apsp_weighted(graph, epsilon=epsilon)
    exact = all_pairs_dijkstra(graph)
    worst, mean = approximation_ratio(
        [list(row) for row in result.estimates], exact
    )
    print("\n-- Theorem 28: (2+eps, (1+eps)W)-approximate APSP --")
    print(f"simulated rounds : {result.rounds:.0f}")
    print(f"max stretch      : {worst:.3f}")
    print(f"mean stretch     : {mean:.3f}")
    print(f"guarantee        : 2+eps multiplicative plus (1+eps)*W additive")

    # --- the exact baseline ------------------------------------------------
    baseline = apsp_dense_mm(graph)
    print("\n-- Baseline: exact APSP by dense matrix squaring (prior work) --")
    print(f"simulated rounds : {baseline.rounds:.0f}   (grows as n^(1/3) log n)")
    print(f"max stretch      : {baseline.max_stretch(exact):.3f}")

    # --- round breakdown ----------------------------------------------------
    print("\n-- Round breakdown of the approximation algorithm --")
    print(result.clique.report())

    print(
        "\nNote: at small n the polylogarithmic algorithm pays larger constants "
        "than the n^(1/3) baseline; its advantage is the asymptotic scaling, "
        "which benchmarks/bench_baseline_comparison.py sweeps."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(size, eps)
