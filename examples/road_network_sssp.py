#!/usr/bin/env python3
"""Exact single-source shortest paths on a road-network-like graph.

Grid-like weighted graphs (road networks) have large shortest-path diameter,
which is exactly the regime where plain distributed Bellman-Ford is slow
(one round per hop of the shortest-path tree).  The paper's Theorem 33
replaces most of those hops with k-nearest shortcut edges and drops the
round complexity to Õ(n^{1/6}).

This example runs both algorithms on a weighted grid, verifies that both are
exact, and compares their simulated round counts, also sweeping the shortcut
parameter k to show the trade-off called out in DESIGN.md.

Run with::

    python examples/road_network_sssp.py [rows] [cols]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import exact_sssp
from repro.baselines import sssp_bellman_ford
from repro.graphs import dijkstra, grid_graph


def main(rows: int = 12, cols: int = 12) -> None:
    graph = grid_graph(rows, cols, max_weight=16, seed=5)
    n = graph.n
    source = 0
    print(f"== Exact SSSP on a {rows}x{cols} weighted grid (n={n}) ==\n")

    expected = np.array(dijkstra(graph, source))

    # --- baseline: plain Bellman-Ford --------------------------------------
    baseline = sssp_bellman_ford(graph, source)
    assert np.allclose(baseline.distances, expected)
    print("-- Baseline: distributed Bellman-Ford --")
    print(f"rounds (= relaxation iterations): {baseline.rounds:.0f}\n")

    # --- Theorem 33: k-shortcut SSSP ---------------------------------------
    result = exact_sssp(graph, source)
    assert np.allclose(result.distances, expected)
    print("-- Theorem 33: k-nearest shortcuts + Bellman-Ford --")
    print(f"k (ball size)              : {result.details['k']}")
    print(f"shortcut edges added       : {result.details['shortcut_edges']}")
    print(f"Bellman-Ford iterations    : {result.details['bellman_ford_iterations']}")
    print(f"total simulated rounds     : {result.rounds:.0f}")
    print(f"(theory: ~n^(1/6) = {n ** (1/6):.1f} iterations after shortcutting)\n")

    # --- ablation: sweep k ---------------------------------------------------
    print("-- Ablation: shortcut ball size k vs rounds --")
    print(f"{'k':>8} {'BF iterations':>14} {'total rounds':>14}")
    for k in (4, 8, 16, 32, min(n, 64)):
        swept = exact_sssp(graph, source, k=k)
        assert np.allclose(swept.distances, expected)
        print(
            f"{k:>8} {swept.details['bellman_ford_iterations']:>14} "
            f"{swept.rounds:>14.0f}"
        )
    print(
        "\nSmall k: cheap k-nearest phase but many Bellman-Ford rounds; "
        "large k: the k-nearest phase dominates.  Theorem 33 balances the two "
        "at k = n^(5/6)."
    )


if __name__ == "__main__":
    r = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    c = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    main(r, c)
