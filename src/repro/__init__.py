"""repro — Fast Approximate Shortest Paths in the Congested Clique.

A faithful, executable reproduction of Censor-Hillel, Dory, Korhonen and
Leitersdorf, *Fast Approximate Shortest Paths in the Congested Clique*
(PODC 2019).  The package provides:

* a Congested Clique model substrate (message-level simulator + round
  accounting) — :mod:`repro.cclique`;
* semirings and sparse matrix multiplication in the model, including the
  paper's output-sensitive (Theorem 8) and filtered (Theorem 14) algorithms
  — :mod:`repro.semiring`, :mod:`repro.matmul`;
* the distance tools of Section 3 (k-nearest, source detection, distance
  through sets, hitting sets) — :mod:`repro.distance`;
* the hopset construction of Section 4 — :mod:`repro.hopsets`;
* the headline algorithms: (1+ε) multi-source shortest paths, (2+ε)/(3+ε)
  APSP approximations, exact Õ(n^{1/6}) SSSP, and the near-3/2 diameter
  approximation — :mod:`repro.core`;
* the prior-work baselines those results are compared against —
  :mod:`repro.baselines`;
* a build-once / query-many distance-oracle subsystem with on-disk
  artifacts, an LRU-cached query engine, and CLI integration —
  :mod:`repro.oracle`;
* an async serving subsystem — multi-artifact registry, stretch-budget
  routing, and a coalescing :class:`~repro.serve.DistanceServer` with a
  load generator — :mod:`repro.serve` (imported lazily: library users
  who never serve pay no asyncio import cost);
* a network tier over it — framed binary wire protocol with HTTP/JSON
  fallback, per-process workers, a failover-capable front tier, and a
  local cluster manager — :mod:`repro.net` (also lazy).

Quick start::

    from repro import graphs, core

    g = graphs.random_weighted_graph(64, average_degree=8, seed=0)
    result = core.apsp_weighted(g, epsilon=0.5)
    print(result.rounds, result.estimates[0][5])
"""

from repro import baselines, cclique, core, distance, graphs, hopsets, matmul, oracle, semiring
from repro.cclique import Clique
from repro.core import (
    apsp_unweighted,
    apsp_weighted,
    approximate_diameter,
    exact_sssp,
    mssp,
)
from repro.distance import k_nearest, source_detection, distance_through_sets
from repro.graphs import Graph
from repro.hopsets import build_hopset
from repro.matmul import (
    SemiringMatrix,
    dense_mm,
    filtered_mm,
    output_sensitive_mm,
    sparse_mm_clt18,
)

__version__ = "1.4.0"


def __getattr__(name: str):
    # Lazy submodule export (PEP 562): ``repro.serve`` pulls in asyncio
    # and the serving stack, ``repro.net`` additionally sockets and
    # multiprocessing — pure library users never need either.
    if name in ("serve", "net"):
        import importlib

        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Graph",
    "Clique",
    "SemiringMatrix",
    "apsp_unweighted",
    "apsp_weighted",
    "approximate_diameter",
    "exact_sssp",
    "mssp",
    "k_nearest",
    "source_detection",
    "distance_through_sets",
    "build_hopset",
    "dense_mm",
    "filtered_mm",
    "output_sensitive_mm",
    "sparse_mm_clt18",
    "baselines",
    "cclique",
    "core",
    "distance",
    "graphs",
    "hopsets",
    "matmul",
    "net",
    "oracle",
    "semiring",
    "serve",
    "__version__",
]
