"""Serving subsystem: async distance serving over many oracle artifacts.

``repro.oracle`` built the build-once / query-many split; this package
turns it into a *service*.  Four layers, bottom-up:

* :mod:`repro.serve.registry` — :class:`ArtifactRegistry`: discover many
  artifacts (several graphs, several epsilon levels), load engines
  lazily with LRU eviction, pin fleets with JSON manifests.
* :mod:`repro.serve.router` — :class:`StretchRouter`: route each request
  to the cheapest artifact whose stretch guarantee satisfies the
  request's budget, with build-on-miss hooks.
* :mod:`repro.serve.server` — :class:`DistanceServer`: asyncio front end
  with request coalescing (concurrent point queries become one
  vectorised gather per micro-batching window), bounded-queue
  backpressure with load shedding, per-client stats, graceful shutdown.
* :mod:`repro.serve.loadgen` — closed- and open-loop load generation
  with Zipf-skewed pair sampling and JSON reports.

Quick start::

    import asyncio
    from repro.serve import ArtifactRegistry, DistanceServer

    async def main():
        registry = ArtifactRegistry()
        registry.register("oracle-tight.npz")   # e.g. dense-apsp
        registry.register("oracle-cheap.npz")   # e.g. landmark-mssp
        async with DistanceServer(registry) as server:
            fast = await server.dist(0, 42)                    # cheapest
            tight = await server.dist(0, 42, multiplicative=3)  # budgeted
            print(fast, tight, server.stats()["engine_batches"])

    asyncio.run(main())
"""

from repro.serve.loadgen import (
    LoadReport,
    count_mismatches,
    residency_from_stats,
    run_closed_loop,
    run_open_loop,
    zipf_pairs,
)
from repro.serve.registry import (
    MANIFEST_VERSION,
    ArtifactEntry,
    ArtifactRegistry,
    RegistryError,
    build_registry,
)
from repro.serve.router import (
    RouteDecision,
    RoutingError,
    StretchBudget,
    StretchRouter,
    shards_for_nodes,
)
from repro.serve.server import (
    DeadlineExceeded,
    DistanceServer,
    ServerClosed,
    ServerConfig,
    ServerOverloaded,
    serve_artifacts,
)

__all__ = [
    "ArtifactEntry",
    "ArtifactRegistry",
    "DeadlineExceeded",
    "DistanceServer",
    "LoadReport",
    "MANIFEST_VERSION",
    "RegistryError",
    "RouteDecision",
    "RoutingError",
    "ServerClosed",
    "ServerConfig",
    "ServerOverloaded",
    "StretchBudget",
    "StretchRouter",
    "build_registry",
    "count_mismatches",
    "residency_from_stats",
    "run_closed_loop",
    "run_open_loop",
    "serve_artifacts",
    "shards_for_nodes",
    "zipf_pairs",
]
