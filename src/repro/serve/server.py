"""Asyncio distance server with request coalescing and backpressure.

:class:`DistanceServer` is the front end that turns the synchronous
:class:`~repro.oracle.engine.QueryEngine` into a service.  Its core trick
is **request coalescing**: concurrent ``await server.dist(u, v)`` calls do
not each pay an engine round-trip.  Instead every request parks a future
in a per-artifact pending map and a single flusher task drains the map
once per micro-batching window (``coalesce_window`` seconds), resolving
all parked keys with one vectorised ``QueryEngine.batch`` gather (in
chunks of at most ``max_batch``).  Duplicate concurrent keys share one
future, so a thundering herd on a hot pair costs one table lookup.
Answers are bit-for-bit identical to serial ``engine.dist`` calls —
coalescing reorders work, never results.

Around that core:

* **Routing** — each request carries a stretch budget and is routed by a
  :class:`~repro.serve.router.StretchRouter` to the cheapest admissible
  artifact; a bare ``QueryEngine`` (or ``ArtifactRegistry``) is adapted
  automatically.
* **Backpressure** — at most ``queue_capacity`` requests may be in
  flight.  Beyond that the server either sheds (``overload_policy="shed"``,
  raising :class:`ServerOverloaded` immediately — the caller can retry
  elsewhere) or parks the caller until space frees
  (``overload_policy="wait"``).
* **Per-client stats** — every request names a ``client``; the server
  keeps per-client request/answer/shed counters and latency percentiles,
  and folds in the engines' own ``stats()`` snapshots.
* **Graceful shutdown** — ``await server.stop()`` rejects new requests,
  flushes everything pending, and joins the flusher; ``async with``
  scopes a server to a block.

The engine gathers run inline on the event loop: they are numpy-bound
microsecond work, and keeping them on-loop makes answers deterministic
and the server dependency-free (pure stdlib asyncio + numpy).
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.oracle.cache import LatencyRecorder
from repro.oracle.engine import QueryEngine
from repro.oracle.sharding import ShardIntegrityError
from repro.serve.registry import ArtifactEntry, ArtifactRegistry
from repro.serve.router import (
    RouteDecision,
    RoutingError,
    StretchRouter,
    budget_admits,
)

Pair = Tuple[int, int]


class ServerClosed(RuntimeError):
    """The server is shut down (or shutting down) and takes no new requests."""


class ServerOverloaded(RuntimeError):
    """Request shed: the in-flight queue is at capacity (load-shed policy)."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired before an answer could be produced.

    Deadlines are absolute ``time.monotonic()`` instants checked at the
    admission gate, after any backpressure wait, and between gather
    chunks — work that cannot finish in time is abandoned early instead
    of burning engine cycles on an answer nobody is waiting for.  The
    net tier maps this to the wire error ``ERR_DEADLINE_EXCEEDED``.
    """


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for :class:`DistanceServer`.

    coalesce_window:
        Seconds a flush waits after the first enqueue so concurrent
        requests accumulate into one batch.  ``0`` disables coalescing:
        every request becomes its own single-pair engine batch (the
        naive baseline the benchmark compares against).  The string
        ``"auto"`` opts into the adaptive window: the server keeps an
        EWMA of the observed arrival rate and sizes each window to
        collect about ``auto_target_batch`` keys, clamped to
        ``[window_min, window_max]`` — light traffic gets low latency,
        heavy traffic gets big gathers, with no tuning.
    window_min / window_max / auto_target_batch:
        Bounds and batch goal for the adaptive window (ignored for a
        fixed numeric ``coalesce_window``).
    max_batch:
        Maximum keys per engine gather; a flush drains *all* pending
        keys in ``ceil(pending / max_batch)`` engine batches.
    queue_capacity:
        Maximum requests in flight before backpressure engages.
    overload_policy:
        ``"shed"`` raises :class:`ServerOverloaded` at capacity;
        ``"wait"`` parks callers until space frees.
    client_latency_window:
        Samples per client backing the latency percentiles.
    """

    coalesce_window: Union[float, str] = 0.001
    window_min: float = 0.0002
    window_max: float = 0.005
    auto_target_batch: int = 64
    max_batch: int = 1024
    queue_capacity: int = 8192
    overload_policy: str = "shed"
    client_latency_window: int = 8192

    def __post_init__(self) -> None:
        if isinstance(self.coalesce_window, str):
            if self.coalesce_window != "auto":
                raise ValueError(
                    f"coalesce_window must be a non-negative number or "
                    f"'auto', got {self.coalesce_window!r}"
                )
        elif self.coalesce_window < 0:
            raise ValueError("coalesce_window must be >= 0")
        if not 0 < self.window_min <= self.window_max:
            raise ValueError(
                f"need 0 < window_min <= window_max, got "
                f"{self.window_min} / {self.window_max}"
            )
        if self.auto_target_batch < 1:
            raise ValueError("auto_target_batch must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.overload_policy not in ("shed", "wait"):
            raise ValueError(
                f"overload_policy must be 'shed' or 'wait', "
                f"got {self.overload_policy!r}"
            )

    @property
    def auto_window(self) -> bool:
        return self.coalesce_window == "auto"


class _ClientStats:
    """Per-client counters and latency percentiles."""

    __slots__ = ("requests", "answered", "shed", "errors", "latency")

    def __init__(self, window: int):
        self.requests = 0
        self.answered = 0
        self.shed = 0
        self.errors = 0
        self.latency = LatencyRecorder(window)

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "latency": self.latency.snapshot(),
        }


class _SingleEngineRouter:
    """Adapter presenting one already-loaded engine as a router."""

    def __init__(self, engine: QueryEngine, name: str = "default"):
        artifact = engine.artifact
        self._engine = engine
        self._entry = ArtifactEntry(
            name=name,
            path=Path("<memory>"),
            strategy=engine.strategy,
            n=engine.n,
            epsilon=artifact.epsilon,
            stretch=artifact.stretch,
            payload_bytes=0,
            resident_floats=float(engine.n) * engine.n,
            query_cost=1.0,
        )
        self._route_counts = 0
        self._rejected = 0
        # One artifact means one possible decision; build it once so the
        # server's hot path does not construct a dataclass per request.
        self._decision = RouteDecision(name=name, entry=self._entry, loaded=True)

    def route(self, multiplicative: float = math.inf,
              additive: float = math.inf) -> RouteDecision:
        stretch = self._entry.stretch
        if not budget_admits(stretch, multiplicative, additive):
            self._rejected += 1
            raise RoutingError(
                f"engine guarantee {stretch.multiplicative:g}x+"
                f"{stretch.additive:g} exceeds stretch budget "
                f"{multiplicative:g}x+{additive:g}"
            )
        self._route_counts += 1
        return self._decision

    def engine(self, name: str) -> QueryEngine:
        return self._engine

    def entry(self, name: str) -> ArtifactEntry:
        if name != self._entry.name:
            raise RoutingError(
                f"unknown artifact {name!r}; this server holds only "
                f"{self._entry.name!r}")
        return self._entry

    def loaded_engines(self) -> Dict[str, QueryEngine]:
        return {self._entry.name: self._engine}

    def stats(self) -> Dict[str, object]:
        return {"routes": {self._entry.name: self._route_counts},
                "miss_hook_routes": 0, "rejected": self._rejected,
                "registry": None}


RouterLike = Union[StretchRouter, ArtifactRegistry, QueryEngine]


class DistanceServer:
    """Serve distance queries over one or many oracle artifacts.

    ``target`` may be a :class:`StretchRouter`, an
    :class:`ArtifactRegistry` (wrapped in a default router), or a bare
    :class:`QueryEngine` (single-artifact serving).
    """

    def __init__(self, target: RouterLike, config: Optional[ServerConfig] = None):
        if isinstance(target, QueryEngine):
            self._router = _SingleEngineRouter(target)
        elif isinstance(target, ArtifactRegistry):
            self._router = StretchRouter(target)
        else:
            self._router = target
        self.config = config or ServerConfig()

        self._pending: Dict[str, Dict[Pair, asyncio.Future]] = {}
        self._wake = asyncio.Event()
        self._flusher: Optional[asyncio.Task] = None
        self._closed = False
        self._draining = False

        # Adaptive coalescing: with coalesce_window="auto" the flusher
        # re-sizes the window each flush from an EWMA of the observed
        # arrival rate; a numeric window stays fixed (and 0 disables
        # coalescing entirely).
        self._auto_window = self.config.auto_window
        self._coalesce_disabled = (not self._auto_window
                                   and self.config.coalesce_window <= 0)
        self._window = (self.config.window_min if self._auto_window
                        else float(self.config.coalesce_window or 0.0))
        self._arrival_rate = 0.0  # EWMA keys/sec seen by the flusher

        self._in_flight = 0
        self._space_waiters: Deque[asyncio.Future] = deque()

        self._clients: Dict[str, _ClientStats] = {}
        self._requests_total = 0
        self._served_total = 0
        self._shed_total = 0
        self._errors_total = 0
        self._engine_batches = 0
        self._coalesced_keys = 0
        self._quarantines = 0
        self._deadline_rejections = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror server totals onto the obs registry (weakref callbacks).

        Every series reads the plain-int counters the hot coroutines
        already maintain, so the dist()/gather() paths pay nothing for
        being observable.
        """
        from repro.obs.metrics import get_registry
        registry = get_registry()
        for metric, help_text, read in (
            ("repro_serve_requests_total",
             "Requests entering DistanceServer (pairs count individually)",
             lambda s: s._requests_total),
            ("repro_serve_served_total",
             "Requests answered successfully", lambda s: s._served_total),
            ("repro_serve_shed_total",
             "Requests shed at the backpressure gate",
             lambda s: s._shed_total),
            ("repro_serve_errors_total",
             "Requests failed with an error", lambda s: s._errors_total),
            ("repro_serve_engine_batches_total",
             "Vectorised engine gathers issued", lambda s: s._engine_batches),
            ("repro_serve_coalesced_keys_total",
             "Distinct keys resolved through engine gathers",
             lambda s: s._coalesced_keys),
            ("repro_serve_quarantines_total",
             "Gathers that tripped the shard-integrity quarantine",
             lambda s: s._quarantines),
            ("repro_serve_deadline_rejections_total",
             "Requests abandoned because their deadline expired",
             lambda s: s._deadline_rejections),
        ):
            registry.counter(metric, help_text).set_function(read, self)
        for metric, help_text, read in (
            ("repro_serve_in_flight",
             "Requests holding a queue slot right now",
             lambda s: s._in_flight),
            ("repro_serve_pending_keys",
             "Keys parked in coalescing buckets",
             lambda s: sum(len(b) for b in s._pending.values())),
            ("repro_serve_coalesce_window_seconds",
             "Coalescing window currently in effect", lambda s: s._window),
            ("repro_serve_ewma_arrival_rate",
             "EWMA keys/sec observed by the flusher",
             lambda s: s._arrival_rate),
        ):
            registry.gauge(metric, help_text).set_function(read, self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DistanceServer":
        """Start the flusher task (idempotent; ``dist`` also auto-starts)."""
        self._ensure_flusher()
        return self

    async def stop(self) -> None:
        """Graceful shutdown: reject new requests, drain, join the flusher."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        # Resolve everything already parked, then let the parked callers
        # run before the flusher goes away.  ``_outstanding`` counts every
        # dist() call that has entered but not yet settled, including ones
        # parked behind the backpressure gate.
        while self._outstanding():
            self._flush_pending()
            await asyncio.sleep(0)
        if self._flusher is not None:
            self._wake.set()
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None

    async def __aenter__(self) -> "DistanceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # query API
    # ------------------------------------------------------------------
    async def dist(self, u: int, v: int, *, multiplicative: float = math.inf,
                   additive: float = math.inf, client: str = "default") -> float:
        """Estimated distance, served from the cheapest admissible artifact.

        Raises :class:`RoutingError` when no artifact meets the budget,
        :class:`ServerOverloaded` when shed, :class:`ServerClosed` after
        shutdown, and ``ValueError`` for out-of-range nodes.
        """
        if self._closed:
            raise ServerClosed("server is shut down")
        started = time.perf_counter_ns()
        stats = self._clients.get(client)
        if stats is None:
            stats = self._client(client)
        stats.requests += 1
        self._requests_total += 1
        # One flat coroutine: this is the hot path, and every extra frame
        # or coroutine hop costs about a microsecond per request.
        try:
            decision = self._router.route(multiplicative=multiplicative,
                                          additive=additive)
            n = decision.entry.n
            if not 0 <= u < n or not 0 <= v < n:
                raise ValueError(f"node pair ({u}, {v}) out of range [0, {n})")
            if u == v:
                value = 0.0
            else:
                key = (u, v) if u < v else (v, u)
                config = self.config
                if self._in_flight >= config.queue_capacity:
                    await self._admit_slow(stats)
                self._in_flight += 1
                try:
                    if self._coalesce_disabled:
                        # Coalescing disabled: one single-pair engine batch
                        # per request — the naive loop the benchmark
                        # measures against.
                        value = float(
                            self._router.engine(decision.name).batch([key])[0])
                        self._engine_batches += 1
                        self._coalesced_keys += 1
                    else:
                        if self._flusher is None:
                            self._ensure_flusher()
                        bucket = self._pending.setdefault(decision.name, {})
                        future = bucket.get(key)
                        if future is None:
                            future = asyncio.get_running_loop().create_future()
                            bucket[key] = future
                            self._wake.set()
                        value = await future
                finally:
                    self._release()
        except ServerOverloaded:
            raise  # shed accounting happened at the admission gate
        except BaseException:
            stats.errors += 1
            self._errors_total += 1
            raise
        stats.answered += 1
        self._served_total += 1
        stats.latency.record(time.perf_counter_ns() - started)
        return value

    async def batch(self, pairs: Sequence[Pair], *,
                    multiplicative: float = math.inf,
                    additive: float = math.inf,
                    client: str = "default") -> List[float]:
        """Concurrent :meth:`dist` over ``pairs`` (shares their coalescing)."""
        return list(await asyncio.gather(*(
            self.dist(u, v, multiplicative=multiplicative, additive=additive,
                      client=client)
            for u, v in pairs
        )))

    async def gather(self, u, v, *, multiplicative: float = math.inf,
                     additive: float = math.inf, client: str = "default",
                     artifact: Optional[str] = None,
                     trace=None,
                     deadline: Optional[float] = None) -> np.ndarray:
        """Vectorised batch: one route and one engine gather chain per call.

        The wire-protocol fast path (:mod:`repro.net`): a worker decodes
        a batched request into ``u``/``v`` node arrays and answers it
        here, paying routing, validation, and the engine gather once per
        *frame* instead of once per pair — no per-pair futures, no
        coalescing window.  Answers are identical to per-pair
        :meth:`dist` calls (both resolve through the engine's
        ``batch_core``).  ``artifact`` pins a registered artifact by name
        (still budget-checked) so a front tier can force every worker to
        answer from the same table; ``None`` routes by budget as usual.

        Each pair counts once in the request/served/shed/error totals
        and client percentiles; the call occupies one backpressure slot.

        ``deadline`` (an absolute ``time.monotonic()`` instant, or None)
        bounds the work: it is checked at admission, again after any
        backpressure wait, and between gather chunks, raising
        :class:`DeadlineExceeded` instead of computing answers the
        caller has stopped waiting for.  Chunk results are screened for
        impossible distances (NaN/negative — mapped shard bytes gone
        bad); a failed screen quarantines the implicated shards, retries
        the chunk once against re-verified data, and raises
        :class:`~repro.oracle.sharding.ShardIntegrityError` if the
        corruption is persistent.  A wrong answer is never returned.
        """
        if self._closed:
            raise ServerClosed("server is shut down")
        started = time.perf_counter_ns()
        stats = self._client(client)
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError(
                f"u/v must be equal-length 1-D node arrays, got shapes "
                f"{u.shape} and {v.shape}")
        count = len(u)
        stats.requests += count
        self._requests_total += count
        try:
            self._check_deadline(deadline, "at admission")
            if artifact is None:
                decision = self._router.route(multiplicative=multiplicative,
                                              additive=additive)
                name, n = decision.name, decision.entry.n
            else:
                entry = self._router.entry(artifact)
                if not budget_admits(entry.stretch, multiplicative, additive):
                    raise RoutingError(
                        f"pinned artifact {artifact!r} guarantees "
                        f"{entry.stretch.multiplicative:g}x+"
                        f"{entry.stretch.additive:g}, exceeding the stretch "
                        f"budget {multiplicative:g}x+{additive:g}")
                name, n = entry.name, entry.n
            if count == 0:
                values = np.zeros(0, dtype=np.float64)
            else:
                if (int(u.min()) < 0 or int(u.max()) >= n
                        or int(v.min()) < 0 or int(v.max()) >= n):
                    bad_mask = ((u < 0) | (u >= n) | (v < 0) | (v >= n))
                    index = int(np.argmax(bad_mask))
                    raise ValueError(
                        f"node pair ({int(u[index])}, {int(v[index])}) "
                        f"out of range [0, {n})")
                config = self.config
                # Manual span timing (not the context manager) keeps the
                # untraced path free of any tracing overhead.
                if trace is not None:
                    span_wall = time.time()
                    span_tick = time.perf_counter_ns()
                if self._in_flight >= config.queue_capacity:
                    await self._admit_slow(stats, weight=count)
                    self._check_deadline(deadline, "waiting for a queue slot")
                self._in_flight += 1
                if trace is not None:
                    trace.add("worker.queue", span_wall,
                              (time.perf_counter_ns() - span_tick) / 1000.0)
                    span_wall = time.time()
                    span_tick = time.perf_counter_ns()
                try:
                    lo = np.minimum(u, v)
                    hi = np.maximum(u, v)
                    engine = self._router.engine(name)
                    values = np.empty(count, dtype=np.float64)
                    for start in range(0, count, config.max_batch):
                        if start:
                            self._check_deadline(deadline, "between chunks")
                        chunk = slice(start, min(start + config.max_batch,
                                                 count))
                        values[chunk] = self._screened_batch(
                            engine, lo[chunk], hi[chunk])
                        self._engine_batches += 1
                        self._coalesced_keys += chunk.stop - chunk.start
                    if trace is not None:
                        trace.add("worker.gather", span_wall,
                                  (time.perf_counter_ns() - span_tick)
                                  / 1000.0)
                finally:
                    self._release()
        except ServerOverloaded:
            raise  # shed accounting happened at the admission gate
        except BaseException:
            stats.errors += count
            self._errors_total += count
            raise
        stats.answered += count
        self._served_total += count
        if count:
            stats.latency.record_many(
                (time.perf_counter_ns() - started) // count, count)
        return values

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Server, router, per-client, and per-engine statistics."""
        return {
            "requests_total": self._requests_total,
            "served_total": self._served_total,
            "shed_total": self._shed_total,
            "errors_total": self._errors_total,
            "engine_batches": self._engine_batches,
            "coalesced_keys": self._coalesced_keys,
            "quarantines": self._quarantines,
            "deadline_rejections": self._deadline_rejections,
            "queue": {
                "capacity": self.config.queue_capacity,
                "in_flight": self._in_flight,
                "pending_keys": sum(len(b) for b in self._pending.values()),
                "overload_policy": self.config.overload_policy,
            },
            "coalescing": {
                "mode": ("auto" if self._auto_window
                         else ("off" if self._coalesce_disabled else "fixed")),
                # Both the knob and the truth: "configured" is what the
                # server was asked for, "window_s" the window actually in
                # effect right now (they differ under mode="auto", where
                # the EWMA re-sizes the window every flush).
                "configured": self.config.coalesce_window,
                "window_s": self._window,
                "ewma_arrival_rate": self._arrival_rate,
            },
            "router": self._router.stats(),
            "clients": {name: client.snapshot()
                        for name, client in sorted(self._clients.items())},
            "engines": {name: engine.stats() for name, engine
                        in sorted(self._router.loaded_engines().items())},
        }

    def client_stats(self, client: str = "default") -> Dict[str, object]:
        return self._client(client).snapshot()

    def engines(self) -> Dict[str, QueryEngine]:
        """The engines currently loaded behind this server, by name.

        Public accessor for aggregators (the net worker's ``/statsz``
        residency report) that need per-engine ``memory_stats()`` without
        reaching into the router.
        """
        return dict(self._router.loaded_engines())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _outstanding(self) -> int:
        """Requests that entered :meth:`dist` and have not yet settled."""
        return (self._requests_total - self._served_total
                - self._shed_total - self._errors_total)

    def _client(self, name: str) -> _ClientStats:
        stats = self._clients.get(name)
        if stats is None:
            stats = self._clients[name] = _ClientStats(
                self.config.client_latency_window)
            # Attach (not copy) the client's recorder so /metricsz reads
            # the same live window stats() reports.
            from repro.obs.metrics import get_registry
            get_registry().recorder(
                "repro_serve_client_latency_us",
                "Per-client request latency", labels={"client": name},
            ).attach(stats.latency)
        return stats

    def _check_deadline(self, deadline: Optional[float], where: str) -> None:
        """Raise :class:`DeadlineExceeded` if ``deadline`` has passed."""
        if deadline is not None and time.monotonic() >= deadline:
            self._deadline_rejections += 1
            raise DeadlineExceeded(f"request deadline expired {where}")

    def _screened_batch(self, engine: QueryEngine, lo: np.ndarray,
                        hi: np.ndarray) -> np.ndarray:
        """One engine gather whose answers are guaranteed plausible.

        Distances are non-negative by construction (``inf`` for
        disconnected pairs is fine); a NaN or negative value can only
        mean the bytes backing the gather have rotted — a corrupted
        mapped shard, typically.  On a failed screen the implicated rows'
        caches are purged and their shards quarantined
        (:meth:`QueryEngine.quarantine_rows`), then the gather runs once
        more against freshly re-verified data.  Either the re-verify
        fails (the shard is condemned and ``open_shard`` raises a typed
        :class:`~repro.oracle.sharding.ShardIntegrityError`), or a sound
        file was re-mapped and the clean retry answer is returned.  If
        the retry is somehow still implausible, the error is raised
        here — under no screen outcome does a wrong answer escape.
        """
        values = engine.batch_core(lo, hi)
        bad = ~(values >= 0)  # catches NaN and negatives in one pass
        if not bad.any():
            return values
        self._quarantines += 1
        rows = np.unique(np.concatenate([lo[bad], hi[bad]]))
        shards = engine.quarantine_rows(rows)
        values = engine.batch_core(lo, hi)
        bad = ~(values >= 0)
        if bad.any():
            raise ShardIntegrityError(
                f"gather returned implausible distances for "
                f"{int(bad.sum())} pair(s) even after quarantining "
                f"shard(s) {shards} and re-gathering")
        return values

    async def _admit_slow(self, stats: _ClientStats, weight: int = 1) -> None:
        """The backpressure gate, entered only when the queue is full.

        Returns with a slot reserved for the caller (who increments
        ``_in_flight`` immediately, with no await in between).
        ``weight`` is how many requests a shed counts for — 1 for a point
        query, the pair count for a :meth:`gather` batch, keeping the
        request/served/shed/error totals consistent either way.
        """
        while self._in_flight >= self.config.queue_capacity:
            if self.config.overload_policy == "shed":
                stats.shed += weight
                self._shed_total += weight
                raise ServerOverloaded(
                    f"in-flight queue at capacity "
                    f"({self.config.queue_capacity}); request shed"
                )
            waiter = asyncio.get_running_loop().create_future()
            self._space_waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if not waiter.done():
                    waiter.cancel()
                raise

    def _release(self) -> None:
        self._in_flight -= 1
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break

    def _ensure_flusher(self) -> None:
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop(), name="repro-serve-flusher")

    async def _flush_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                elapsed = 0.0
                if self._pending and not self._draining:
                    # The micro-batching window: let concurrent requests
                    # pile into the pending map before one gather.
                    started = time.perf_counter()
                    await asyncio.sleep(self._window)
                    elapsed = time.perf_counter() - started
                drained = self._flush_pending()
                if self._auto_window and elapsed > 0 and drained:
                    self._retune_window(drained, elapsed)
        except asyncio.CancelledError:
            self._flush_pending()
            raise

    #: EWMA smoothing for the observed arrival rate (higher = twitchier).
    _EWMA_ALPHA = 0.2

    def _retune_window(self, drained: int, elapsed: float) -> None:
        """Size the next window to collect ~auto_target_batch keys.

        The keys drained per window over the window's wall time is a
        sample of the arrival rate while coalescing is active; the EWMA
        smooths flush-to-flush noise so one quiet window does not
        collapse the batch size.

        When even ``window_max`` could not fill a batch at the observed
        rate, waiting longer buys almost no batching and only taxes
        latency, so light traffic drops to ``window_min`` instead of
        pegging at the maximum — light traffic gets low latency, heavy
        traffic gets big gathers.
        """
        rate = drained / elapsed
        if self._arrival_rate <= 0:
            self._arrival_rate = rate
        else:
            self._arrival_rate += self._EWMA_ALPHA * (rate - self._arrival_rate)
        ideal = self.config.auto_target_batch / self._arrival_rate
        if ideal > self.config.window_max:
            self._window = self.config.window_min
        else:
            self._window = max(ideal, self.config.window_min)

    def _flush_pending(self) -> int:
        """Drain every pending key with one engine gather per chunk."""
        drained = 0
        while self._pending:
            pending, self._pending = self._pending, {}
            for name, bucket in pending.items():
                # Insertion order aligns keys with futures.
                keys = list(bucket)
                futures = list(bucket.values())
                drained += len(keys)
                try:
                    engine = self._router.engine(name)
                except Exception as exc:  # load failure fails the batch
                    self._fail_futures(futures, exc)
                    continue
                for start in range(0, len(keys), self.config.max_batch):
                    chunk = keys[start:start + self.config.max_batch]
                    chunk_futures = futures[start:start + self.config.max_batch]
                    try:
                        values = engine.batch(chunk)
                    except Exception as exc:
                        self._fail_futures(chunk_futures, exc)
                        continue
                    self._engine_batches += 1
                    self._coalesced_keys += len(chunk)
                    for future, value in zip(chunk_futures, values.tolist()):
                        if not future.done():
                            future.set_result(value)
        return drained

    @staticmethod
    def _fail_futures(futures: Sequence[asyncio.Future],
                      exc: Exception) -> None:
        for future in futures:
            if not future.done():
                future.set_exception(exc)


async def serve_artifacts(paths: Sequence[Union[str, Path]],
                          config: Optional[ServerConfig] = None,
                          capacity: int = 4) -> DistanceServer:
    """Convenience: registry over ``paths`` behind a started server."""
    from repro.serve.registry import build_registry

    registry = build_registry(paths, capacity=capacity)
    return await DistanceServer(registry, config=config).start()


__all__ = [
    "DeadlineExceeded",
    "DistanceServer",
    "ServerClosed",
    "ServerConfig",
    "ServerOverloaded",
    "serve_artifacts",
]
