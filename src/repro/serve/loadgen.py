"""Closed- and open-loop load generation for :class:`DistanceServer`.

A serving claim is only as good as the load that tested it.  This module
drives a server with the two canonical load models:

* **closed loop** (:func:`run_closed_loop`) — ``concurrency`` workers
  each keep exactly one request in flight, issuing the next as soon as
  the previous completes.  Measures the server's sustainable throughput:
  offered load adapts to service rate, so nothing sheds unless capacity
  is tiny.
* **open loop** (:func:`run_open_loop`) — requests fire at a fixed target
  QPS regardless of completions, the arrival model of real user traffic.
  When the server falls behind, latency and shed counts reveal it (the
  coordinated-omission trap closed-loop tests fall into).

Query pairs come from :func:`zipf_pairs`: node popularity follows a
Zipf(``skew``) law over a seeded permutation, the standard skewed-access
model for caches — at ``skew=0`` it degrades to uniform sampling.
Latency percentiles reuse the oracle engine's
:class:`~repro.oracle.cache.LatencyRecorder`; reports serialise to JSON
via :meth:`LoadReport.as_dict` so benchmark harnesses and CI can diff
them.  :func:`count_mismatches` closes the loop on correctness by
replaying every answered pair through a direct :class:`QueryEngine`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.oracle.cache import LatencyRecorder
from repro.oracle.engine import QueryEngine
from repro.serve.router import RoutingError
from repro.serve.server import DistanceServer, ServerOverloaded

Pair = Tuple[int, int]

#: Exception classes a load loop counts as "error" (vs shed) by default.
#: Network callers extend this with transport failures, e.g.
#: ``DEFAULT_ERROR_TYPES + (NetError, ConnectionError, TimeoutError)``.
DEFAULT_ERROR_TYPES: Tuple[type, ...] = (RoutingError, ValueError)


def zipf_pairs(n: int, count: int, skew: float = 1.0,
               seed: int = 0) -> List[Pair]:
    """``count`` query pairs with Zipf(``skew``)-distributed node popularity.

    Node ranks are assigned by a seeded permutation (so node 0 is not
    always the hottest), and each endpoint is drawn independently with
    probability proportional to ``1 / rank^skew``.  ``skew=0`` is uniform;
    ``skew`` around 1 matches typical cache-friendly access patterns.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
    us = rng.choices(nodes, weights=weights, k=count)
    vs = rng.choices(nodes, weights=weights, k=count)
    return list(zip(us, vs))


@dataclasses.dataclass
class LoadReport:
    """Outcome of one load-generation run, JSON-serialisable."""

    mode: str
    requested: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    achieved_qps: float
    offered_qps: Optional[float]
    latency: Dict[str, Optional[float]]
    mismatches: Optional[int] = None
    #: Requests that blew the client-side deadline (``timeout=`` on the
    #: load loops).  First-class — not folded into :attr:`errors` — so
    #: availability math can distinguish "slow" from "broken".
    timeouts: int = 0
    #: Error taxonomy: exception class name -> count.  Timeouts appear
    #: under ``"timeout"``.  The chaos benchmark asserts on this (e.g.
    #: shard corruption must surface as typed integrity errors, never as
    #: generic transport failures).
    error_taxonomy: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Residency snapshot (shard faults, resident vs mapped bytes) from
    #: :func:`residency_from_stats`, attached by ``--report-residency``.
    residency: Optional[Dict[str, object]] = None
    #: Per-pair answers aligned with the input pairs (None = shed/error).
    answers: List[Optional[float]] = dataclasses.field(
        default_factory=list, repr=False)
    #: Per-request raw samples (``collect_samples=True``): dicts with
    #: ``t`` (epoch seconds at issue), ``client``, ``latency_us`` and
    #: ``status`` ("ok" / "shed" / "error").  Exported via
    #: :meth:`write_samples_jsonl`, re-ingested by :meth:`from_jsonl`.
    samples: List[Dict[str, object]] = dataclasses.field(
        default_factory=list, repr=False)

    @property
    def success_rate(self) -> float:
        return self.completed / self.requested if self.requested else 1.0

    @property
    def availability(self) -> float:
        """Fraction of requests answered (not shed, errored, or timed out)."""
        return self.success_rate

    def as_dict(self) -> Dict[str, object]:
        """Everything except the raw answers, for JSON reports."""
        return {
            "mode": self.mode,
            "requested": self.requested,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "success_rate": self.success_rate,
            "availability": self.availability,
            "error_taxonomy": dict(self.error_taxonomy),
            "duration_s": self.duration_s,
            "achieved_qps": self.achieved_qps,
            "offered_qps": self.offered_qps,
            "latency": self.latency,
            "mismatches": self.mismatches,
            "residency": self.residency,
        }

    def write_samples_jsonl(self, path: str) -> int:
        """Append this run's raw per-request samples to ``path`` as JSONL.

        One JSON object per line, schema as in :attr:`samples`.  Appending
        (not truncating) lets a campaign pour every rung and every worker
        into one file that :meth:`from_jsonl` can merge back into a
        report.  Returns the number of samples written.
        """
        with open(path, "a", encoding="utf-8") as sink:
            for sample in self.samples:
                sink.write(json.dumps(sample, sort_keys=True) + "\n")
        return len(self.samples)

    @classmethod
    def from_jsonl(cls, paths: Iterable[str] | str,
                   latency_window: int = 1 << 20) -> "LoadReport":
        """Rebuild a merged report from raw JSONL sample files.

        The inverse of :meth:`write_samples_jsonl`: counts come from the
        per-sample ``status`` fields, the duration spans the earliest
        issue to the latest completion across *all* files, and the
        latency percentiles are recomputed over the union — so reports
        from independent clients (or worker processes) merge into one
        campaign-level view without sharing memory.  Lines that fail to
        parse are counted as errors rather than aborting the merge.
        """
        if isinstance(paths, str):
            paths = [paths]
        recorder = LatencyRecorder(latency_window)
        counts = {"ok": 0, "shed": 0, "error": 0, "timeout": 0}
        first_issue = last_done = None
        samples: List[Dict[str, object]] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as source:
                for line in source:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        sample = json.loads(line)
                        status = str(sample["status"])
                        issued = float(sample["t"])
                        latency_us = float(sample.get("latency_us") or 0.0)
                    except (KeyError, TypeError, ValueError,
                            json.JSONDecodeError):
                        counts["error"] += 1
                        continue
                    counts[status if status in counts else "error"] += 1
                    done = issued + latency_us / 1e6
                    if first_issue is None or issued < first_issue:
                        first_issue = issued
                    if last_done is None or done > last_done:
                        last_done = done
                    if status == "ok" and latency_us > 0:
                        recorder.record(int(latency_us * 1000))
                    samples.append(sample)
        requested = sum(counts.values())
        duration = max(1e-9, (last_done - first_issue)
                       if first_issue is not None else 0.0)
        return cls(
            mode="merged",
            requested=requested,
            completed=counts["ok"],
            shed=counts["shed"],
            errors=counts["error"],
            timeouts=counts["timeout"],
            duration_s=duration,
            achieved_qps=counts["ok"] / duration,
            offered_qps=None,
            latency=recorder.snapshot(),
            samples=samples,
        )

    def summary(self) -> str:
        lines = [
            f"mode             : {self.mode}",
            f"requests         : {self.requested} "
            f"({self.completed} ok, {self.shed} shed, {self.errors} errors, "
            f"{self.timeouts} timeouts)",
            f"availability     : {self.availability:.4f}",
            f"duration         : {self.duration_s:.3f}s",
            f"achieved qps     : {self.achieved_qps:,.0f}"
            + (f" (offered {self.offered_qps:,.0f})" if self.offered_qps else ""),
        ]
        if self.latency.get("count"):
            lines.append(
                f"latency P50/P95/P99 (us): {self.latency['p50_us']:.1f} / "
                f"{self.latency['p95_us']:.1f} / {self.latency['p99_us']:.1f}"
            )
        if self.error_taxonomy:
            taxonomy = ", ".join(f"{name}={count}" for name, count
                                 in sorted(self.error_taxonomy.items()))
            lines.append(f"error taxonomy   : {taxonomy}")
        if self.mismatches is not None:
            lines.append(f"answer mismatches: {self.mismatches}")
        if self.residency is not None:
            total = self.residency.get("total", {})
            lines.append(
                f"shard faults     : {total.get('shard_faults', 0)} "
                f"(resident {total.get('resident_bytes', 0) / 2**20:.1f} MiB / "
                f"mapped {total.get('mapped_bytes', 0) / 2**20:.1f} MiB)"
            )
        return "\n".join(lines)


async def run_closed_loop(server: DistanceServer, pairs: Sequence[Pair],
                          concurrency: int = 32,
                          multiplicative: float = float("inf"),
                          additive: float = float("inf"),
                          client: str = "loadgen",
                          latency_window: int = 65536,
                          record_latency: bool = True,
                          error_types: Tuple[type, ...] = DEFAULT_ERROR_TYPES,
                          collect_samples: bool = False,
                          timeout: Optional[float] = None,
                          budgets: Optional[Sequence[Tuple[float, float]]] = None,
                          ) -> LoadReport:
    """Drive ``pairs`` through ``server`` with a fixed number of workers.

    ``record_latency=False`` skips the per-request client-side timing
    (the report's latency snapshot stays empty) — the throughput
    harnesses use it because the server already keeps per-client
    percentiles, and timing every call twice taxes all modes equally.
    ``server`` is anything with an awaitable ``dist(u, v, ...)`` —
    the in-process :class:`DistanceServer` or a network client.
    ``error_types`` widens what counts as a per-request error (network
    callers add transport failures); ``collect_samples=True`` records a
    raw per-request sample (timestamp, per-worker client id, latency,
    status) into :attr:`LoadReport.samples` for JSONL export.
    ``timeout`` bounds each request client-side: a request that has not
    answered within ``timeout`` seconds is cancelled and counted in
    :attr:`LoadReport.timeouts` — the load loop never hangs on a stuck
    server, which is the whole point under chaos.
    ``budgets`` optionally carries one ``(multiplicative, additive)``
    stretch budget per pair — a mixed-fidelity workload where each
    request routes independently (``repro loadgen --stretch-mix``); when
    given it overrides the fixed ``multiplicative``/``additive``.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if budgets is not None and len(budgets) != len(pairs):
        raise ValueError(
            f"budgets ({len(budgets)}) must align with pairs ({len(pairs)})")
    recorder = LatencyRecorder(latency_window)
    answers: List[Optional[float]] = [None] * len(pairs)
    samples: List[Dict[str, object]] = []
    taxonomy: Dict[str, int] = {}
    indices = iter(range(len(pairs)))
    timing = record_latency or collect_samples
    dist = server.dist

    async def worker(worker_index: int) -> Tuple[int, int, int, int]:
        completed = shed = errors = timeouts = 0
        worker_client = f"{client}/{worker_index}" if collect_samples else client
        for index in indices:
            u, v = pairs[index]
            issued = time.time() if collect_samples else 0.0
            started = time.perf_counter_ns() if timing else 0
            status = "ok"
            mult, add = (budgets[index] if budgets is not None
                         else (multiplicative, additive))
            try:
                call = dist(u, v, multiplicative=mult,
                            additive=add, client=client)
                if timeout is not None:
                    call = asyncio.wait_for(call, timeout)
                answers[index] = await call
            except ServerOverloaded:
                shed += 1
                status = "shed"
            except (TimeoutError, asyncio.TimeoutError):
                timeouts += 1
                status = "timeout"
                taxonomy["timeout"] = taxonomy.get("timeout", 0) + 1
            except error_types as exc:
                errors += 1
                status = "error"
                name = type(exc).__name__
                taxonomy[name] = taxonomy.get(name, 0) + 1
            elapsed_us = ((time.perf_counter_ns() - started) / 1000.0
                          if timing else 0.0)
            if status == "ok":
                completed += 1
                if record_latency:
                    recorder.record(int(elapsed_us * 1000))
            if collect_samples:
                samples.append({"t": issued, "client": worker_client,
                                "latency_us": elapsed_us, "status": status})
        return completed, shed, errors, timeouts

    started = time.perf_counter()
    workers = max(1, min(concurrency, len(pairs)))
    tallies = await asyncio.gather(
        *(worker(worker_index) for worker_index in range(workers)))
    duration = max(1e-9, time.perf_counter() - started)
    return LoadReport(
        mode="closed",
        requested=len(pairs),
        completed=sum(tally[0] for tally in tallies),
        shed=sum(tally[1] for tally in tallies),
        errors=sum(tally[2] for tally in tallies),
        timeouts=sum(tally[3] for tally in tallies),
        error_taxonomy=taxonomy,
        duration_s=duration,
        achieved_qps=sum(tally[0] for tally in tallies) / duration,
        offered_qps=None,
        latency=recorder.snapshot(),
        answers=answers,
        samples=samples,
    )


async def run_open_loop(server: DistanceServer, pairs: Sequence[Pair],
                        qps: float,
                        multiplicative: float = float("inf"),
                        additive: float = float("inf"),
                        client: str = "loadgen",
                        latency_window: int = 65536,
                        error_types: Tuple[type, ...] = DEFAULT_ERROR_TYPES,
                        collect_samples: bool = False,
                        timeout: Optional[float] = None,
                        budgets: Optional[Sequence[Tuple[float, float]]] = None,
                        ) -> LoadReport:
    """Fire ``pairs`` at a fixed target QPS, independent of completions.

    ``timeout`` bounds each request client-side exactly as in
    :func:`run_closed_loop`, and ``budgets`` optionally carries one
    per-pair ``(multiplicative, additive)`` stretch budget.
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if budgets is not None and len(budgets) != len(pairs):
        raise ValueError(
            f"budgets ({len(budgets)}) must align with pairs ({len(pairs)})")
    recorder = LatencyRecorder(latency_window)
    answers: List[Optional[float]] = [None] * len(pairs)
    samples: List[Dict[str, object]] = []
    taxonomy: Dict[str, int] = {}
    counters = {"completed": 0, "shed": 0, "errors": 0, "timeouts": 0}
    interval = 1.0 / qps

    async def one(index: int, u: int, v: int) -> None:
        issued = time.time() if collect_samples else 0.0
        started = time.perf_counter_ns()
        status = "ok"
        mult, add = (budgets[index] if budgets is not None
                     else (multiplicative, additive))
        try:
            call = server.dist(
                u, v, multiplicative=mult, additive=add,
                client=client)
            if timeout is not None:
                call = asyncio.wait_for(call, timeout)
            answers[index] = await call
        except ServerOverloaded:
            counters["shed"] += 1
            status = "shed"
        except (TimeoutError, asyncio.TimeoutError):
            counters["timeouts"] += 1
            status = "timeout"
            taxonomy["timeout"] = taxonomy.get("timeout", 0) + 1
        except error_types as exc:
            counters["errors"] += 1
            status = "error"
            name = type(exc).__name__
            taxonomy[name] = taxonomy.get(name, 0) + 1
        elapsed_ns = time.perf_counter_ns() - started
        if status == "ok":
            recorder.record(elapsed_ns)
            counters["completed"] += 1
        if collect_samples:
            samples.append({"t": issued, "client": client,
                            "latency_us": elapsed_ns / 1000.0,
                            "status": status})

    started = time.perf_counter()
    tasks = []
    for index, (u, v) in enumerate(pairs):
        delay = started + index * interval - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(index, u, v)))
    if tasks:
        await asyncio.gather(*tasks)
    duration = max(1e-9, time.perf_counter() - started)
    return LoadReport(
        mode="open",
        requested=len(pairs),
        completed=counters["completed"],
        shed=counters["shed"],
        errors=counters["errors"],
        timeouts=counters["timeouts"],
        error_taxonomy=taxonomy,
        duration_s=duration,
        achieved_qps=counters["completed"] / duration,
        offered_qps=qps,
        latency=recorder.snapshot(),
        answers=answers,
        samples=samples,
    )


def residency_from_stats(server_stats: Dict[str, object]) -> Dict[str, object]:
    """Condense a server stats snapshot into a residency report.

    Per loaded engine: shard-fault count and resident vs mapped payload
    bytes (from :meth:`repro.oracle.engine.QueryEngine.memory_stats`),
    plus a totals row.  Attached to :class:`LoadReport` by
    ``repro loadgen --report-residency`` so a load report answers "how
    much RAM did serving this workload actually take?" alongside its
    latency percentiles.
    """
    engines = server_stats.get("engines", {}) or {}
    per_engine: Dict[str, object] = {}
    total = {"shard_faults": 0, "resident_bytes": 0, "mapped_bytes": 0}
    for name, engine_stats in sorted(engines.items()):
        memory = dict(engine_stats.get("memory", {}))
        per_engine[name] = memory
        total["shard_faults"] += int(memory.get("shard_faults", 0))
        total["resident_bytes"] += int(memory.get("resident_bytes", 0))
        total["mapped_bytes"] += int(memory.get("mapped_bytes", 0))
    return {"total": total, "engines": per_engine}


def count_mismatches(pairs: Sequence[Pair], answers: Sequence[Optional[float]],
                     engine: QueryEngine, tolerance: float = 1e-9) -> int:
    """Answered pairs whose server answer differs from a direct engine call.

    Shed/errored pairs (``None`` answers) are skipped — the success-rate
    accounting covers those; this covers correctness of what *was* served.
    """
    answered = [(index, pair) for index, pair
                in enumerate(pairs) if answers[index] is not None]
    if not answered:
        return 0
    reference = engine.batch([pair for _, pair in answered])
    mismatches = 0
    for (index, _), expected in zip(answered, reference.tolist()):
        value = answers[index]
        if not (abs(value - expected) <= tolerance
                or (value == float("inf") and expected == float("inf"))):
            mismatches += 1
    return mismatches
