"""Multi-artifact discovery and lazy engine loading for the serving layer.

A serving process rarely holds one oracle: it serves several graphs, or
several epsilon levels of one graph, each persisted as an
:class:`~repro.oracle.artifact.OracleArtifact` on disk.
:class:`ArtifactRegistry` is the catalogue of those artifacts:

* **Registration is cheap.**  ``register``/``discover`` read only the JSON
  metadata sidecar — never the (potentially large) ``.npz`` payload — and
  derive an :class:`ArtifactEntry` with everything routing needs: the
  stretch guarantee, the graph size, and a deterministic serving-cost
  estimate.
* **Engines load lazily.**  ``engine(name)`` materialises a
  :class:`~repro.oracle.engine.QueryEngine` (payload read, checksum
  verified, balls indexed) on first use and keeps at most ``capacity``
  engines resident, evicting the least recently used — dense artifacts are
  O(n²) floats, so a registry over many graphs must not hold them all.
* **Manifests make a fleet reproducible.**  ``write_manifest`` pins the
  current catalogue to a JSON file (relative paths, greppable stretch
  summaries); ``load_manifest`` rebuilds the registry from it on another
  host or after a restart.

The serving-cost model used by :class:`~repro.serve.router.StretchRouter`
is intentionally simple and fully determined by the sidecar metadata:
``resident_floats`` estimates the resident working-set size (``n²`` for
the dense strategies, ``2nk + n·|A|`` for ``landmark-mssp``) and
``query_cost`` the per-query work (1 lookup for dense strategies, a
min over the ``|A|`` landmarks otherwise).  Cheapness is compared
lexicographically — footprint first, then per-query work, then payload
bytes, then name — so the order is total and reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.oracle.artifact import (
    FORMAT_VERSION,
    ArtifactError,
    META_SUFFIX,
    OracleArtifact,
    artifact_paths,
)
from repro.oracle.engine import QueryEngine
from repro.oracle.strategies import StretchGuarantee

PathLike = str | Path

#: Manifest schema version; bump on incompatible changes.
MANIFEST_VERSION = 1


class RegistryError(RuntimeError):
    """Raised for unknown names, duplicate registrations, or bad manifests."""


@dataclasses.dataclass(frozen=True)
class ArtifactEntry:
    """One registered artifact: identity, guarantee, and serving cost."""

    name: str
    path: Path  # payload (.npz) path
    strategy: str
    n: int
    epsilon: float
    stretch: StretchGuarantee
    payload_bytes: int
    #: Estimated resident floats once loaded (n^2 dense, ~n^{3/2} landmark).
    resident_floats: float
    #: Estimated per-query work units (1 = one table lookup).
    query_cost: float

    @property
    def cost(self) -> Tuple[float, float, int, str]:
        """Total serving-cost order: footprint, per-query work, bytes, name."""
        return (self.resident_floats, self.query_cost, self.payload_bytes, self.name)

    def describe(self) -> str:
        stretch = f"{self.stretch.multiplicative:g}x"
        if self.stretch.additive:
            stretch += f"+{self.stretch.additive:g}"
        return (f"{self.name}: {self.strategy} n={self.n} stretch={stretch} "
                f"cost=({self.resident_floats:.0f} floats, "
                f"{self.query_cost:g}/query)")


def _entry_from_sidecar(name: str, payload: Path, metadata: dict) -> ArtifactEntry:
    version = metadata.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {payload} has format_version={version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    try:
        strategy = str(metadata["strategy"])
        n = int(metadata["n"])
        epsilon = float(metadata["epsilon"])
        stretch = StretchGuarantee.from_dict(metadata["stretch"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"metadata sidecar for {payload} is missing or "
                            f"malformed required fields: {exc}") from exc
    build = metadata.get("build", {})
    if strategy == "landmark-mssp":
        k = int(build.get("k") or max(2, math.ceil(math.sqrt(n))))
        landmarks = int(build.get("num_landmarks") or math.ceil(math.sqrt(n)))
        resident = 2.0 * n * k + 1.0 * n * landmarks
        query_cost = float(landmarks)
    else:  # dense-apsp / exact-fallback store the full n x n matrix
        resident = float(n) * n
        query_cost = 1.0
    return ArtifactEntry(
        name=name,
        path=payload,
        strategy=strategy,
        n=n,
        epsilon=epsilon,
        stretch=stretch,
        payload_bytes=payload.stat().st_size,
        resident_floats=resident,
        query_cost=query_cost,
    )


class ArtifactRegistry:
    """Catalogue of oracle artifacts with lazily loaded, LRU-evicted engines.

    Parameters
    ----------
    capacity:
        Maximum number of :class:`QueryEngine` instances resident at once.
        Must be at least 1; eviction drops the least recently *used*
        engine (every ``engine()`` call refreshes recency).
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError(f"registry capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: Dict[str, ArtifactEntry] = {}
        self._engines: "OrderedDict[str, QueryEngine]" = OrderedDict()
        self.loads = 0
        self.evictions = 0
        #: Bumped on any catalogue or resident-set change; lets routers
        #: memoize per-budget decisions and invalidate them cheaply.
        self.epoch = 0

    # ------------------------------------------------------------------
    # registration and discovery
    # ------------------------------------------------------------------
    def register(self, path: PathLike, name: Optional[str] = None) -> ArtifactEntry:
        """Register one artifact from its files (sidecar read, payload not).

        ``name`` defaults to the payload stem; auto-generated names are
        suffixed (``oracle-2``, ``oracle-3``, …) on collision, while an
        explicit duplicate ``name`` raises :class:`RegistryError`.
        """
        payload, sidecar = artifact_paths(path)
        if not payload.exists():
            raise ArtifactError(f"oracle artifact not found: {payload}")
        if not sidecar.exists():
            raise ArtifactError(f"metadata sidecar not found: {sidecar}")
        try:
            metadata = json.loads(sidecar.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"unparseable metadata sidecar {sidecar}: {exc}") from exc

        explicit = name is not None
        chosen = name if name is not None else payload.name[: -len(".npz")]
        if chosen in self._entries:
            if explicit:
                raise RegistryError(
                    f"artifact name {chosen!r} is already registered "
                    f"(for {self._entries[chosen].path})"
                )
            suffix = 2
            while f"{chosen}-{suffix}" in self._entries:
                suffix += 1
            chosen = f"{chosen}-{suffix}"
        entry = _entry_from_sidecar(chosen, payload, metadata)
        self._entries[chosen] = entry
        self.epoch += 1
        return entry

    def discover(self, root: PathLike) -> List[ArtifactEntry]:
        """Register every artifact below ``root`` (by its ``.meta.json``).

        Returns the newly registered entries, sorted by name.  Sidecars
        whose payload is missing raise; an empty directory returns ``[]``.
        """
        root = Path(root)
        if not root.is_dir():
            raise ArtifactError(f"not a directory: {root}")
        found = []
        for sidecar in sorted(root.rglob(f"*{META_SUFFIX}")):
            payload = sidecar.with_name(
                sidecar.name[: -len(META_SUFFIX)] + ".npz")
            found.append(self.register(payload))
        return sorted(found, key=lambda entry: entry.name)

    # ------------------------------------------------------------------
    # lookup and lazy engines
    # ------------------------------------------------------------------
    def entries(self) -> List[ArtifactEntry]:
        """All registered entries, sorted by name."""
        return sorted(self._entries.values(), key=lambda entry: entry.name)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> ArtifactEntry:
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(f"unknown artifact {name!r}; registered: {known}")
        return entry

    def is_loaded(self, name: str) -> bool:
        """Whether ``name`` currently has a resident engine (no side effects)."""
        return name in self._engines

    def loaded(self) -> List[str]:
        """Names with resident engines, least recently used first."""
        return list(self._engines)

    def engine(self, name: str) -> QueryEngine:
        """The engine for ``name``, loading the payload on first use.

        Loading verifies the payload checksum and may evict the least
        recently used engine once more than ``capacity`` are resident.
        """
        entry = self.get(name)
        engine = self._engines.get(name)
        if engine is None:
            engine = QueryEngine(OracleArtifact.load(entry.path))
            self.loads += 1
            self._engines[name] = engine
            while len(self._engines) > self.capacity:
                self._engines.popitem(last=False)
                self.evictions += 1
            self.epoch += 1
        else:
            self._engines.move_to_end(name)
        return engine

    def loaded_engines(self) -> Dict[str, QueryEngine]:
        """Resident engines by name (no loading; recency untouched)."""
        return dict(self._engines)

    def evict(self, name: Optional[str] = None) -> None:
        """Drop one resident engine (or all of them when ``name`` is None)."""
        if name is None:
            self.evictions += len(self._engines)
            self._engines.clear()
            self.epoch += 1
        elif name in self._engines:
            del self._engines[name]
            self.evictions += 1
            self.epoch += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def stats(self) -> Dict[str, object]:
        return {
            "artifacts": len(self._entries),
            "capacity": self.capacity,
            "loaded": self.loaded(),
            "loads": self.loads,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------
    # manifests
    # ------------------------------------------------------------------
    def write_manifest(self, path: PathLike) -> Path:
        """Pin the catalogue to a JSON manifest next to the artifacts.

        Paths are stored relative to the manifest's directory when
        possible, so a directory of artifacts plus its manifest can be
        moved or shipped as a unit.
        """
        path = Path(path)
        base = path.resolve().parent
        artifacts = []
        for entry in self.entries():
            resolved = entry.path.resolve()
            try:
                stored = str(resolved.relative_to(base))
            except ValueError:
                stored = str(resolved)
            artifacts.append({
                "name": entry.name,
                "path": stored,
                "strategy": entry.strategy,
                "n": entry.n,
                "epsilon": entry.epsilon,
                "stretch": entry.stretch.as_dict(),
            })
        payload = {"manifest_version": MANIFEST_VERSION, "artifacts": artifacts}
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load_manifest(cls, path: PathLike, capacity: int = 4) -> "ArtifactRegistry":
        """Rebuild a registry from :meth:`write_manifest` output.

        Entries are re-derived from the artifact sidecars on disk (the
        manifest pins *which* artifacts, the sidecars stay the source of
        truth for *what* they guarantee).
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise RegistryError(f"cannot read manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise RegistryError(f"unparseable manifest {path}: {exc}") from exc
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise RegistryError(
                f"manifest {path} has manifest_version={version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        registry = cls(capacity=capacity)
        base = path.resolve().parent
        for item in payload.get("artifacts", []):
            artifact_path = Path(item["path"])
            if not artifact_path.is_absolute():
                artifact_path = base / artifact_path
            registry.register(artifact_path, name=item.get("name"))
        return registry


def build_registry(paths: Iterable[PathLike], capacity: int = 4) -> ArtifactRegistry:
    """Registry from a mixed list of artifact files, directories, manifests.

    The shared front end behind ``repro serve`` and ``repro loadgen``:
    each path may be a ``.npz`` artifact (with or without the extension),
    a directory to :meth:`~ArtifactRegistry.discover`, or a manifest JSON
    (recognised by a ``manifest_version`` key).
    """
    registry = ArtifactRegistry(capacity=capacity)
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            registry.discover(path)
            continue
        if path.name.endswith(META_SUFFIX):
            # An artifact's own sidecar: register its payload.
            registry.register(
                path.with_name(path.name[: -len(META_SUFFIX)] + ".npz"))
            continue
        if path.suffix == ".json" and path.is_file():
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise RegistryError(
                    f"unparseable manifest {path}: {exc}") from exc
            if not isinstance(payload, dict) or "manifest_version" not in payload:
                raise ArtifactError(
                    f"{path} is JSON but not a registry manifest (no "
                    f"manifest_version key); pass the artifact's .npz or "
                    f"{META_SUFFIX} path to register a single artifact"
                )
            loaded = ArtifactRegistry.load_manifest(path, capacity=capacity)
            for entry in loaded.entries():
                registry.register(entry.path, name=entry.name)
            continue
        registry.register(path)
    if not len(registry):
        raise ArtifactError("no oracle artifacts found in the given paths")
    return registry
