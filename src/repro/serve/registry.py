"""Multi-artifact discovery and lazy engine loading for the serving layer.

A serving process rarely holds one oracle: it serves several graphs, or
several epsilon levels of one graph, each persisted as an
:class:`~repro.oracle.artifact.OracleArtifact` on disk.
:class:`ArtifactRegistry` is the catalogue of those artifacts:

* **Registration is cheap.**  ``register``/``discover`` read only the JSON
  metadata sidecar — never the (potentially large) ``.npz`` payload — and
  derive an :class:`ArtifactEntry` with everything routing needs: the
  stretch guarantee, the graph size, and a deterministic serving-cost
  estimate.
* **Engines load lazily.**  ``engine(name)`` materialises a
  :class:`~repro.oracle.engine.QueryEngine` (payload read, checksum
  verified, balls indexed) on first use and keeps at most ``capacity``
  engines resident, evicting the least recently used — dense artifacts are
  O(n²) floats, so a registry over many graphs must not hold them all.
* **Manifests make a fleet reproducible.**  ``write_manifest`` pins the
  current catalogue to a JSON file (relative paths, greppable stretch
  summaries); ``load_manifest`` rebuilds the registry from it on another
  host or after a restart.

The serving-cost model used by :class:`~repro.serve.router.StretchRouter`
is intentionally simple and fully determined by the sidecar metadata:
``resident_floats`` estimates the *actually resident* working-set size and
``query_cost`` the per-query work (1 lookup for dense strategies, a
min over the ``|A|`` landmarks otherwise).  For monolithic artifacts the
whole payload is resident once loaded (``n²`` for the dense strategies,
``2nk + n·|A|`` for ``landmark-mssp``); for sharded artifacts
(:mod:`repro.oracle.sharding`) only the hot-row block caches and the small
common arrays are resident — the payload stays memory-mapped and is
charged to ``mapped_floats`` instead.  Cheapness is compared
lexicographically — resident footprint first, then per-query work, then
payload bytes, then name — so the order is total and reproducible, and a
sharded copy of an artifact routinely beats its monolithic twin.

Sharded artifacts register **from the manifest alone**: the row ranges,
byte sizes, and stretch metadata routing needs are all in the
``.shards.json``, so registration never touches a shard file.
"""

from __future__ import annotations

import dataclasses
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.oracle.artifact import (
    FORMAT_VERSION,
    ArtifactError,
    META_SUFFIX,
    artifact_paths,
)
from repro.oracle.engine import QueryEngine
from repro.oracle.sharding import (
    SHARD_MANIFEST_SUFFIX,
    SHARD_MANIFEST_VERSION,
    load_artifact,
    shard_manifest_path,
)
from repro.oracle.strategies import StretchGuarantee, get_strategy

PathLike = str | Path

#: Manifest schema version; bump on incompatible changes.
MANIFEST_VERSION = 1


class RegistryError(RuntimeError):
    """Raised for unknown names, duplicate registrations, or bad manifests."""


@dataclasses.dataclass(frozen=True)
class ArtifactEntry:
    """One registered artifact: identity, guarantee, and serving cost."""

    name: str
    path: Path  # payload (.npz) path, or the .shards.json manifest
    strategy: str
    n: int
    epsilon: float
    stretch: StretchGuarantee
    payload_bytes: int
    #: Estimated floats actually resident once loaded: the full payload for
    #: monolithic artifacts, the hot-row block caches + common arrays for
    #: sharded (memory-mapped) ones.
    resident_floats: float
    #: Estimated per-query work units (1 = one table lookup).
    query_cost: float
    #: Whether the artifact is served from memory-mapped shards.
    sharded: bool = False
    num_shards: int = 1
    #: Payload floats addressable through the shard maps (0 for monolithic
    #: artifacts — everything they have is resident).
    mapped_floats: float = 0.0
    #: Per-shard node ranges, for shard-aware routing (None for monolithic).
    row_ranges: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def cost(self) -> Tuple[float, float, int, str]:
        """Total serving-cost order: footprint, per-query work, bytes, name."""
        return (self.resident_floats, self.query_cost, self.payload_bytes, self.name)

    def describe(self) -> str:
        stretch = f"{self.stretch.multiplicative:g}x"
        if self.stretch.additive:
            stretch += f"+{self.stretch.additive:g}"
        cost = (f"cost=({self.resident_floats:.0f} resident floats, "
                f"{self.query_cost:g}/query")
        if self.sharded:
            cost += (f", {self.mapped_floats:.0f} mapped across "
                     f"{self.num_shards} shards")
        return (f"{self.name}: {self.strategy} n={self.n} stretch={stretch} "
                f"{cost})")


def _serving_costs(strategy: str, n: int, build: dict,
                   sharded: bool) -> Tuple[float, float, float]:
    """``(resident_floats, query_cost, mapped_floats)`` for one artifact.

    Delegates to the registered :class:`~repro.oracle.strategies.
    StrategySpec`'s declarative cost model (``spec.serving_costs``) so the
    registry charges third-party strategies correctly without this module
    knowing their payload shapes.  The model charges only what a loaded
    engine actually keeps in RAM: a monolithic engine holds the full
    payload, while a sharded engine holds at most its hot-row block caches
    plus the small common arrays — the payload itself is mapped, not
    resident.
    """
    return get_strategy(strategy).serving_costs(n, build, sharded)


def _required_metadata(metadata: dict, source: Path):
    version = metadata.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {source} has format_version={version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    try:
        return (str(metadata["strategy"]), int(metadata["n"]),
                float(metadata["epsilon"]),
                StretchGuarantee.from_dict(metadata["stretch"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"metadata for {source} is missing or "
                            f"malformed required fields: {exc}") from exc


def _entry_from_sidecar(name: str, payload: Path, metadata: dict) -> ArtifactEntry:
    strategy, n, epsilon, stretch = _required_metadata(metadata, payload)
    resident, query_cost, mapped = _serving_costs(
        strategy, n, metadata.get("build", {}), sharded=False)
    return ArtifactEntry(
        name=name,
        path=payload,
        strategy=strategy,
        n=n,
        epsilon=epsilon,
        stretch=stretch,
        payload_bytes=payload.stat().st_size,
        resident_floats=resident,
        query_cost=query_cost,
    )


def _entry_from_shard_manifest(name: str, manifest_path: Path,
                               manifest: dict) -> ArtifactEntry:
    """Build a sharded entry from manifest content alone (no shard I/O)."""
    version = manifest.get("shard_manifest_version")
    if version != SHARD_MANIFEST_VERSION:
        raise ArtifactError(
            f"shard manifest {manifest_path} has shard_manifest_version="
            f"{version!r}; this build reads version {SHARD_MANIFEST_VERSION}"
        )
    metadata = manifest.get("metadata", {})
    strategy, n, epsilon, stretch = _required_metadata(metadata, manifest_path)
    shards = sorted(manifest.get("shards", []), key=lambda item: int(item["index"]))
    if not shards:
        raise ArtifactError(f"shard manifest {manifest_path} lists no shards")
    resident, query_cost, mapped = _serving_costs(
        strategy, n, metadata.get("build", {}), sharded=True)
    return ArtifactEntry(
        name=name,
        path=manifest_path,
        strategy=strategy,
        n=n,
        epsilon=epsilon,
        stretch=stretch,
        payload_bytes=sum(int(item["bytes"]) for item in shards),
        resident_floats=resident,
        query_cost=query_cost,
        sharded=True,
        num_shards=len(shards),
        mapped_floats=mapped,
        row_ranges=tuple((int(item["row_start"]), int(item["row_stop"]))
                         for item in shards),
    )


class ArtifactRegistry:
    """Catalogue of oracle artifacts with lazily loaded, LRU-evicted engines.

    Parameters
    ----------
    capacity:
        Maximum number of :class:`QueryEngine` instances resident at once.
        Must be at least 1; eviction drops the least recently *used*
        engine (every ``engine()`` call refreshes recency).
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError(f"registry capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: Dict[str, ArtifactEntry] = {}
        self._engines: "OrderedDict[str, QueryEngine]" = OrderedDict()
        self.loads = 0
        self.evictions = 0
        #: Entries dropped because their payload failed to load — the
        #: artifact directory vanished or rotted while registered.
        self.load_failures = 0
        #: Bumped on any catalogue or resident-set change; lets routers
        #: memoize per-budget decisions and invalidate them cheaply.
        self.epoch = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror registry state onto the obs registry (weakref callbacks)."""
        from repro.obs.metrics import get_registry
        registry = get_registry()
        registry.counter(
            "repro_registry_loads_total",
            "QueryEngine loads performed by artifact registries",
        ).set_function(lambda r: r.loads, self)
        registry.counter(
            "repro_registry_evictions_total",
            "Resident engines evicted by artifact registries",
        ).set_function(lambda r: r.evictions, self)
        registry.counter(
            "repro_registry_load_failures_total",
            "Registry entries dropped after their payload failed to load",
        ).set_function(lambda r: r.load_failures, self)
        registry.gauge(
            "repro_registry_epoch",
            "Catalogue/resident-set change epoch",
        ).set_function(lambda r: r.epoch, self)
        registry.gauge(
            "repro_registry_entries",
            "Registered artifacts (resident or not)",
        ).set_function(lambda r: len(r._entries), self)
        registry.gauge(
            "repro_registry_resident_engines",
            "QueryEngine instances currently resident",
        ).set_function(lambda r: len(r._engines), self)

    # ------------------------------------------------------------------
    # registration and discovery
    # ------------------------------------------------------------------
    def register(self, path: PathLike, name: Optional[str] = None) -> ArtifactEntry:
        """Register one artifact from its metadata (payloads are not read).

        ``path`` may be a monolithic payload (with or without ``.npz``) or
        a sharded artifact's ``.shards.json`` manifest; a bare path whose
        payload is missing falls back to the shard manifest next to it.
        Sharded artifacts register from the manifest alone — no shard file
        is touched.  ``name`` defaults to the artifact stem;
        auto-generated names are suffixed (``oracle-2``, ``oracle-3``, …)
        on collision, while an explicit duplicate ``name`` raises
        :class:`RegistryError`.
        """
        path = Path(path)
        if path.name.endswith(SHARD_MANIFEST_SUFFIX):
            return self._register_sharded(path, name)
        payload, sidecar = artifact_paths(path)
        if not payload.exists():
            manifest = shard_manifest_path(payload)
            if manifest.exists():
                return self._register_sharded(manifest, name)
            raise ArtifactError(
                f"oracle artifact not found: {payload} (no payload and no "
                f"{manifest.name} shard manifest)"
            )
        if not sidecar.exists():
            raise ArtifactError(f"metadata sidecar not found: {sidecar}")
        try:
            metadata = json.loads(sidecar.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"unparseable metadata sidecar {sidecar}: {exc}") from exc

        chosen = self._claim_name(name, payload.name[: -len(".npz")])
        entry = _entry_from_sidecar(chosen, payload, metadata)
        self._entries[chosen] = entry
        self.epoch += 1
        return entry

    def _register_sharded(self, manifest_path: Path,
                          name: Optional[str]) -> ArtifactEntry:
        if not manifest_path.exists():
            raise ArtifactError(f"shard manifest not found: {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"unparseable shard manifest {manifest_path}: {exc}") from exc
        chosen = self._claim_name(
            name, manifest_path.name[: -len(SHARD_MANIFEST_SUFFIX)])
        entry = _entry_from_shard_manifest(chosen, manifest_path, manifest)
        self._entries[chosen] = entry
        self.epoch += 1
        return entry

    def _claim_name(self, name: Optional[str], default: str) -> str:
        explicit = name is not None
        chosen = name if name is not None else default
        if chosen in self._entries:
            if explicit:
                raise RegistryError(
                    f"artifact name {chosen!r} is already registered "
                    f"(for {self._entries[chosen].path})"
                )
            suffix = 2
            while f"{chosen}-{suffix}" in self._entries:
                suffix += 1
            chosen = f"{chosen}-{suffix}"
        return chosen

    def discover(self, root: PathLike) -> List[ArtifactEntry]:
        """Register every artifact below ``root``.

        Monolithic artifacts are found by their ``.meta.json`` sidecar,
        sharded ones by their ``.shards.json`` manifest.  Returns the newly
        registered entries, sorted by name.  Sidecars whose payload is
        missing raise; an empty directory returns ``[]``.
        """
        root = Path(root)
        if not root.is_dir():
            raise ArtifactError(f"not a directory: {root}")
        found = []
        for sidecar in sorted(root.rglob(f"*{META_SUFFIX}")):
            payload = sidecar.with_name(
                sidecar.name[: -len(META_SUFFIX)] + ".npz")
            found.append(self.register(payload))
        for manifest in sorted(root.rglob(f"*{SHARD_MANIFEST_SUFFIX}")):
            found.append(self.register(manifest))
        return sorted(found, key=lambda entry: entry.name)

    # ------------------------------------------------------------------
    # lookup and lazy engines
    # ------------------------------------------------------------------
    def entries(self) -> List[ArtifactEntry]:
        """All registered entries, sorted by name."""
        return sorted(self._entries.values(), key=lambda entry: entry.name)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> ArtifactEntry:
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(f"unknown artifact {name!r}; registered: {known}")
        return entry

    def is_loaded(self, name: str) -> bool:
        """Whether ``name`` currently has a resident engine (no side effects)."""
        return name in self._engines

    def loaded(self) -> List[str]:
        """Names with resident engines, least recently used first."""
        return list(self._engines)

    def engine(self, name: str) -> QueryEngine:
        """The engine for ``name``, loading the payload on first use.

        Loading verifies the payload checksum and may evict the least
        recently used engine once more than ``capacity`` are resident.

        An artifact that fails to load — files deleted from under a
        running server, sidecar unreadable, checksum rot — raises a
        typed :class:`RegistryError` AND drops the entry from the
        catalogue, so the router immediately stops offering the dead
        artifact and subsequent requests re-route to the survivors
        instead of re-tripping on the same corpse.  Nothing is cached
        on the failure path: a later re-``register`` of a repaired
        artifact starts clean.
        """
        entry = self.get(name)
        engine = self._engines.get(name)
        if engine is None:
            # load_artifact dispatches on the entry path: monolithic
            # payloads are read and checksummed whole, sharded manifests
            # open lazily and verify each shard on first fault.
            try:
                engine = QueryEngine(load_artifact(entry.path))
            except (ArtifactError, OSError) as exc:
                self._entries.pop(name, None)
                self._engines.pop(name, None)
                self.load_failures += 1
                self.epoch += 1
                raise RegistryError(
                    f"artifact {name!r} failed to load from {entry.path} "
                    f"and was evicted from the registry: {exc}") from exc
            self.loads += 1
            self._engines[name] = engine
            while len(self._engines) > self.capacity:
                self._engines.popitem(last=False)
                self.evictions += 1
            self.epoch += 1
        else:
            self._engines.move_to_end(name)
        return engine

    def loaded_engines(self) -> Dict[str, QueryEngine]:
        """Resident engines by name (no loading; recency untouched)."""
        return dict(self._engines)

    def evict(self, name: Optional[str] = None) -> None:
        """Drop one resident engine (or all of them when ``name`` is None)."""
        if name is None:
            self.evictions += len(self._engines)
            self._engines.clear()
            self.epoch += 1
        elif name in self._engines:
            del self._engines[name]
            self.evictions += 1
            self.epoch += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def stats(self) -> Dict[str, object]:
        loaded_entries = [self._entries[name] for name in self._engines
                          if name in self._entries]
        return {
            "artifacts": len(self._entries),
            "capacity": self.capacity,
            "loaded": self.loaded(),
            "loads": self.loads,
            "evictions": self.evictions,
            "load_failures": self.load_failures,
            # Resident vs mapped split over the currently loaded engines:
            # mapped floats live in the page cache and cost no RAM budget.
            "resident_floats": sum(entry.resident_floats
                                   for entry in loaded_entries),
            "mapped_floats": sum(entry.mapped_floats
                                 for entry in loaded_entries),
        }

    # ------------------------------------------------------------------
    # manifests
    # ------------------------------------------------------------------
    def write_manifest(self, path: PathLike) -> Path:
        """Pin the catalogue to a JSON manifest next to the artifacts.

        Paths are stored relative to the manifest's directory when
        possible, so a directory of artifacts plus its manifest can be
        moved or shipped as a unit.
        """
        path = Path(path)
        base = path.resolve().parent
        artifacts = []
        for entry in self.entries():
            resolved = entry.path.resolve()
            try:
                stored = str(resolved.relative_to(base))
            except ValueError:
                stored = str(resolved)
            artifacts.append({
                "name": entry.name,
                "path": stored,
                "strategy": entry.strategy,
                "n": entry.n,
                "epsilon": entry.epsilon,
                "stretch": entry.stretch.as_dict(),
                "sharded": entry.sharded,
            })
        payload = {"manifest_version": MANIFEST_VERSION, "artifacts": artifacts}
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load_manifest(cls, path: PathLike, capacity: int = 4) -> "ArtifactRegistry":
        """Rebuild a registry from :meth:`write_manifest` output.

        Entries are re-derived from the artifact sidecars on disk (the
        manifest pins *which* artifacts, the sidecars stay the source of
        truth for *what* they guarantee).
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise RegistryError(f"cannot read manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise RegistryError(f"unparseable manifest {path}: {exc}") from exc
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise RegistryError(
                f"manifest {path} has manifest_version={version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        registry = cls(capacity=capacity)
        base = path.resolve().parent
        for item in payload.get("artifacts", []):
            artifact_path = Path(item["path"])
            if not artifact_path.is_absolute():
                artifact_path = base / artifact_path
            registry.register(artifact_path, name=item.get("name"))
        return registry


def build_registry(paths: Iterable[PathLike], capacity: int = 4) -> ArtifactRegistry:
    """Registry from a mixed list of artifact files, directories, manifests.

    The shared front end behind ``repro serve`` and ``repro loadgen``:
    each path may be a ``.npz`` artifact (with or without the extension),
    a directory to :meth:`~ArtifactRegistry.discover`, or a manifest JSON
    (recognised by a ``manifest_version`` key).
    """
    registry = ArtifactRegistry(capacity=capacity)
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            registry.discover(path)
            continue
        if path.name.endswith(META_SUFFIX):
            # An artifact's own sidecar: register its payload.
            registry.register(
                path.with_name(path.name[: -len(META_SUFFIX)] + ".npz"))
            continue
        if path.name.endswith(SHARD_MANIFEST_SUFFIX):
            # A sharded artifact's own manifest.
            registry.register(path)
            continue
        if path.suffix == ".json" and path.is_file():
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise RegistryError(
                    f"unparseable manifest {path}: {exc}") from exc
            if not isinstance(payload, dict) or "manifest_version" not in payload:
                raise ArtifactError(
                    f"{path} is JSON but not a registry manifest (no "
                    f"manifest_version key); pass the artifact's .npz or "
                    f"{META_SUFFIX} path to register a single artifact"
                )
            loaded = ArtifactRegistry.load_manifest(path, capacity=capacity)
            for entry in loaded.entries():
                registry.register(entry.path, name=entry.name)
            continue
        registry.register(path)
    if not len(registry):
        raise ArtifactError("no oracle artifacts found in the given paths")
    return registry
