"""Stretch-budget routing across a registry of oracle artifacts.

Spanner theory (Parter–Yogev and the Section 6 oracles of the source
paper) makes the stretch/size trade-off explicit: looser stretch buys a
smaller structure.  :class:`StretchRouter` operationalises that trade-off
at serving time.  A fleet keeps several artifacts — e.g. an exact
``exact-fallback`` matrix, a ``dense-apsp`` (2+ε, (1+ε)W) matrix, and a
compact ``landmark-mssp`` 3(1+ε) oracle — and every request carries a
*stretch budget*: the loosest guarantee the caller will accept.  The
router then serves the request from the **cheapest admissible artifact**:

1. admissible = every registered artifact whose advertised guarantee is
   at least as tight as the budget (multiplicative AND additive);
2. among admissible artifacts with a resident engine, pick the cheapest
   by the registry's total cost order (``prefer_loaded=True``, the
   default — routing never forces a load while a loaded artifact
   qualifies);
3. if none is loaded, pick the cheapest admissible artifact overall and
   let the registry load it lazily;
4. if *nothing* is admissible, call the ``on_miss`` hook — a chance to
   build and register a tighter artifact on the fly — and re-route to
   whatever it returns, else raise :class:`RoutingError`.

With ``prefer_loaded=False`` step 2 is skipped, giving the pure
"cheapest admissible artifact" policy the unit tests pin down.

Sharded artifacts (:mod:`repro.oracle.sharding`) make routing
*shard-aware*: :meth:`StretchRouter.route_pairs` resolves a whole batch to
one artifact and, from the manifest row ranges already held by the
registry entry, computes exactly which shards hold the batch's rows —
without loading an engine or touching a shard file.  The batch gather
path faults in exactly those shards (point queries may prefetch a few
neighbouring rows through the engine's bounded block cache), so the
decision's ``shards`` tuple bounds how much of the payload the batch
needs.
"""

from __future__ import annotations

import dataclasses
import math
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.oracle.engine import QueryEngine
from repro.oracle.strategies import StretchGuarantee
from repro.serve.registry import ArtifactEntry, ArtifactRegistry

#: Tolerance for float comparisons of stretch factors.
_EPS = 1e-12


class RoutingError(LookupError):
    """No registered artifact satisfies the request's stretch budget."""


def budget_admits(guarantee: StretchGuarantee, multiplicative: float,
                  additive: float) -> bool:
    """Whether ``guarantee`` is at least as tight as the budget.

    The single definition of admissibility — :class:`StretchBudget` and
    the server's single-engine adapter both defer here, so tolerance and
    comparison semantics cannot drift between them.
    """
    return (guarantee.multiplicative <= multiplicative + _EPS
            and guarantee.additive <= additive + _EPS)


@dataclasses.dataclass(frozen=True)
class StretchBudget:
    """The loosest guarantee a request accepts.

    An artifact with guarantee ``g`` is admissible iff
    ``g.multiplicative <= multiplicative`` and ``g.additive <= additive``.
    The default budget admits everything.
    """

    multiplicative: float = math.inf
    additive: float = math.inf

    def admits(self, guarantee: StretchGuarantee) -> bool:
        return budget_admits(guarantee, self.multiplicative, self.additive)


def shards_for_nodes(entry: ArtifactEntry,
                     nodes: Iterable[int]) -> Tuple[int, ...]:
    """Shard indices of ``entry`` whose node ranges contain any of ``nodes``.

    Computed purely from the manifest row ranges carried by the registry
    entry — no engine load, no shard I/O.  Monolithic entries (no row
    ranges) return the empty tuple.  Out-of-range nodes raise
    ``ValueError`` — a shard promise for a node the artifact does not
    hold would silently point at the wrong shard.
    """
    if not entry.sharded or not entry.row_ranges:
        return ()
    starts = [start for start, _stop in entry.row_ranges]
    shards = set()
    for node in nodes:
        node = int(node)
        if not 0 <= node < entry.n:
            raise ValueError(f"node {node} out of range [0, {entry.n})")
        shards.add(bisect_right(starts, node) - 1)
    return tuple(sorted(shards))


@dataclasses.dataclass(frozen=True)
class RouteDecision:
    """Where one request was routed and why."""

    name: str
    entry: ArtifactEntry
    #: Whether the chosen artifact already had a resident engine.
    loaded: bool
    #: True when the artifact came from the ``on_miss`` hook.
    from_miss_hook: bool = False
    #: For sharded artifacts routed via ``route_pairs``: the shard indices
    #: holding the request's rows.  The batch gather path faults exactly
    #: these; point queries may additionally prefetch a bounded number of
    #: neighbouring rows through the engine's block cache.
    shards: Tuple[int, ...] = ()

    @property
    def n(self) -> int:
        return self.entry.n

    @property
    def stretch(self) -> StretchGuarantee:
        return self.entry.stretch


class StretchRouter:
    """Pick the cheapest admissible artifact for each request.

    Parameters
    ----------
    registry:
        The artifact catalogue routed over.
    on_miss:
        Optional hook ``(budget) -> Optional[str]`` invoked when no
        registered artifact is admissible.  The hook may build and
        :meth:`~repro.serve.registry.ArtifactRegistry.register` a new
        artifact and return its name; returning ``None`` (or a name whose
        guarantee still misses the budget) raises :class:`RoutingError`.
    prefer_loaded:
        When True (default), restrict the choice to artifacts with
        resident engines whenever at least one admissible artifact is
        loaded; cheapest-overall otherwise.
    """

    def __init__(self, registry: ArtifactRegistry,
                 on_miss: Optional[Callable[[StretchBudget], Optional[str]]] = None,
                 prefer_loaded: bool = True):
        self.registry = registry
        self.on_miss = on_miss
        self.prefer_loaded = prefer_loaded
        self._route_counts: Dict[str, int] = {}
        self._miss_hook_routes = 0
        self._sharded_routes = 0
        self._rejected = 0
        # Per-budget decision memo, invalidated whenever the registry's
        # catalogue or resident-engine set changes (its epoch moves) —
        # routing on the server's hot path must not re-sort per request.
        self._memo: Dict[tuple, RouteDecision] = {}
        self._memo_epoch = registry.epoch

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def admissible(self, budget: StretchBudget) -> List[ArtifactEntry]:
        """Admissible entries for ``budget``, cheapest first."""
        entries = [entry for entry in self.registry.entries()
                   if budget.admits(entry.stretch)]
        return sorted(entries, key=lambda entry: entry.cost)

    def route(self, multiplicative: float = math.inf,
              additive: float = math.inf) -> RouteDecision:
        """Route one request; raises :class:`RoutingError` on no match."""
        if self._memo_epoch != self.registry.epoch:
            self._memo.clear()
            self._memo_epoch = self.registry.epoch
        memo_key = (multiplicative, additive)
        memoized = self._memo.get(memo_key)
        if memoized is not None:
            self._route_counts[memoized.name] += 1
            return memoized
        budget = StretchBudget(multiplicative, additive)
        candidates = self.admissible(budget)
        if not candidates:
            decision = self._route_via_miss_hook(budget)
            if decision is not None:
                return decision
            self._rejected += 1
            guarantees = ", ".join(
                f"{entry.name}={entry.stretch.multiplicative:g}x"
                + (f"+{entry.stretch.additive:g}" if entry.stretch.additive else "")
                for entry in self.registry.entries()
            ) or "<empty registry>"
            raise RoutingError(
                f"no artifact satisfies stretch budget "
                f"{multiplicative:g}x+{additive:g}; available: {guarantees}"
            )
        chosen = candidates[0]
        if self.prefer_loaded:
            loaded = [entry for entry in candidates
                      if self.registry.is_loaded(entry.name)]
            if loaded:
                chosen = loaded[0]
        self._route_counts[chosen.name] = self._route_counts.get(chosen.name, 0) + 1
        decision = RouteDecision(name=chosen.name, entry=chosen,
                                 loaded=self.registry.is_loaded(chosen.name))
        self._memo[memo_key] = decision
        return decision

    def route_pairs(self, pairs: Sequence[Tuple[int, int]],
                    multiplicative: float = math.inf,
                    additive: float = math.inf) -> RouteDecision:
        """Route a whole batch, annotated with the shards it can touch.

        Same artifact choice as :meth:`route` (the budget fixes the
        artifact, not the keys), but for sharded artifacts the returned
        decision carries the shard indices covering every endpoint in
        ``pairs`` — computed from the manifest row ranges alone, so a
        router can predict (and a scheduler can pre-fault) exactly the
        payload slice a batch needs before any engine exists.
        """
        decision = self.route(multiplicative=multiplicative, additive=additive)
        if not decision.entry.sharded:
            return decision
        nodes = set()
        for u, v in pairs:
            nodes.add(u)
            nodes.add(v)
        self._sharded_routes += 1
        return dataclasses.replace(
            decision, shards=shards_for_nodes(decision.entry, nodes))

    def _route_via_miss_hook(self, budget: StretchBudget) -> Optional[RouteDecision]:
        if self.on_miss is None:
            return None
        name = self.on_miss(budget)
        if name is None:
            return None
        entry = self.registry.get(name)
        if not budget.admits(entry.stretch):
            return None
        self._miss_hook_routes += 1
        self._route_counts[name] = self._route_counts.get(name, 0) + 1
        return RouteDecision(name=name, entry=entry,
                             loaded=self.registry.is_loaded(name),
                             from_miss_hook=True)

    # ------------------------------------------------------------------
    # engine access and stats (the server's view of the registry)
    # ------------------------------------------------------------------
    def engine(self, name: str) -> QueryEngine:
        return self.registry.engine(name)

    def entry(self, name: str) -> ArtifactEntry:
        """Registry entry for ``name`` (raises ``RegistryError`` if unknown)."""
        return self.registry.get(name)

    def loaded_engines(self) -> Dict[str, QueryEngine]:
        return self.registry.loaded_engines()

    def stats(self) -> Dict[str, object]:
        return {
            "routes": dict(sorted(self._route_counts.items())),
            "miss_hook_routes": self._miss_hook_routes,
            "sharded_routes": self._sharded_routes,
            "rejected": self._rejected,
            "registry": self.registry.stats(),
        }
