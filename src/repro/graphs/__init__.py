"""Graph substrate: graph data structure, generators, and sequential reference algorithms.

The Congested Clique algorithms in :mod:`repro` operate on instances of
:class:`~repro.graphs.graph.Graph`.  The :mod:`~repro.graphs.generators`
module provides the synthetic workloads used by tests, examples, and the
benchmark harness, and :mod:`~repro.graphs.reference` provides the exact
sequential algorithms (Dijkstra, BFS, Bellman-Ford, hop-bounded distances)
used as ground truth when validating approximation guarantees.
"""

from repro.graphs.graph import Graph, INF
from repro.graphs.generators import (
    erdos_renyi,
    random_weighted_graph,
    path_graph,
    cycle_graph,
    grid_graph,
    star_graph,
    complete_graph,
    barbell_graph,
    caterpillar_graph,
    power_law_graph,
    random_tree,
    disjoint_cliques,
)
from repro.graphs.io import load_edge_list, save_edge_list
from repro.graphs.reference import (
    dijkstra,
    bfs_distances,
    bellman_ford,
    all_pairs_dijkstra,
    exact_diameter,
    hop_bounded_distances,
    shortest_path_diameter,
)

__all__ = [
    "Graph",
    "INF",
    "load_edge_list",
    "save_edge_list",
    "erdos_renyi",
    "random_weighted_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "barbell_graph",
    "caterpillar_graph",
    "power_law_graph",
    "random_tree",
    "disjoint_cliques",
    "dijkstra",
    "bfs_distances",
    "bellman_ford",
    "all_pairs_dijkstra",
    "exact_diameter",
    "hop_bounded_distances",
    "shortest_path_diameter",
]
