"""Synthetic graph generators used by tests, examples, and benchmarks.

All generators are deterministic given a ``seed`` so that every benchmark
table in EXPERIMENTS.md is exactly regenerable.  Weights are non-negative
integers, matching the paper's assumption that weights are integers bounded
by a polynomial in ``n`` (Section 1.5).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graphs.graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _apply_weights(
    graph: Graph, rng: random.Random, max_weight: int
) -> Graph:
    """Re-weight every edge of ``graph`` uniformly in ``1 .. max_weight``."""
    if max_weight <= 1:
        return graph
    weighted = Graph(graph.n, directed=graph.directed)
    for u, v, _ in graph.edges():
        weighted.add_edge(u, v, rng.randint(1, max_weight))
    return weighted


def erdos_renyi(
    n: int,
    p: float,
    seed: Optional[int] = None,
    max_weight: int = 1,
    ensure_connected: bool = True,
) -> Graph:
    """Erdős–Rényi ``G(n, p)`` graph, optionally weighted and connected.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Edge probability.
    seed:
        Random seed; the same seed always yields the same graph.
    max_weight:
        If > 1, edge weights are uniform integers in ``1 .. max_weight``.
    ensure_connected:
        If ``True`` a random spanning path is added first so that distances
        are finite everywhere (convenient for approximation-ratio studies).
    """
    rng = _rng(seed)
    graph = Graph(n)
    if ensure_connected:
        order = list(range(n))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            graph.add_edge(a, b, 1 if max_weight <= 1 else rng.randint(1, max_weight))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
                graph.add_edge(u, v, w)
    return graph


def random_weighted_graph(
    n: int,
    average_degree: float = 8.0,
    max_weight: int = 32,
    seed: Optional[int] = None,
) -> Graph:
    """Connected weighted graph with the given expected average degree."""
    p = min(1.0, average_degree / max(n - 1, 1))
    return erdos_renyi(n, p, seed=seed, max_weight=max_weight, ensure_connected=True)


def path_graph(n: int, max_weight: int = 1, seed: Optional[int] = None) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``; the extreme-diameter workload."""
    rng = _rng(seed)
    graph = Graph(n)
    for u in range(n - 1):
        w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
        graph.add_edge(u, u + 1, w)
    return graph


def cycle_graph(n: int, max_weight: int = 1, seed: Optional[int] = None) -> Graph:
    """Cycle on ``n`` nodes."""
    graph = path_graph(n, max_weight=max_weight, seed=seed)
    if n > 2:
        rng = _rng(None if seed is None else seed + 1)
        w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
        graph.add_edge(n - 1, 0, w)
    return graph


def grid_graph(
    rows: int, cols: int, max_weight: int = 1, seed: Optional[int] = None
) -> Graph:
    """``rows x cols`` grid; a road-network-like workload with large diameter."""
    rng = _rng(seed)
    graph = Graph(rows * cols)

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
                graph.add_edge(node(r, c), node(r, c + 1), w)
            if r + 1 < rows:
                w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
                graph.add_edge(node(r, c), node(r + 1, c), w)
    return graph


def star_graph(n: int, max_weight: int = 1, seed: Optional[int] = None) -> Graph:
    """Star with center 0.

    This is the paper's Section 1.3 motivating example: the adjacency matrix
    is very sparse but its square is dense, which is why naive iterated
    squaring of sparse matrices is not output-sensitive.
    """
    rng = _rng(seed)
    graph = Graph(n)
    for leaf in range(1, n):
        w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
        graph.add_edge(0, leaf, w)
    return graph


def complete_graph(n: int, max_weight: int = 1, seed: Optional[int] = None) -> Graph:
    """Complete graph; the densest workload."""
    rng = _rng(seed)
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
            graph.add_edge(u, v, w)
    return graph


def barbell_graph(clique_size: int, path_length: int, max_weight: int = 1) -> Graph:
    """Two cliques joined by a path; exercises diameter estimation."""
    n = 2 * clique_size + path_length
    graph = Graph(n)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v, 1)
    offset = clique_size + path_length
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(offset + u, offset + v, 1)
    chain = [clique_size - 1] + list(range(clique_size, clique_size + path_length)) + [offset]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b, max_weight if max_weight > 1 else 1)
    return graph


def caterpillar_graph(spine: int, legs_per_node: int) -> Graph:
    """Caterpillar tree: a spine path with pendant leaves.

    Mixes high-degree and low-degree nodes, which exercises the two phases of
    the unweighted APSP algorithm (Section 6.3).
    """
    n = spine + spine * legs_per_node
    graph = Graph(n)
    for u in range(spine - 1):
        graph.add_edge(u, u + 1, 1)
    leaf = spine
    for u in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(u, leaf, 1)
            leaf += 1
    return graph


def power_law_graph(
    n: int,
    attachment: int = 2,
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """Barabási–Albert-style preferential attachment graph.

    Produces the skewed degree distributions typical of social/overlay
    networks — the setting that motivates landmark (multi-source) distance
    estimation in the introduction.
    """
    rng = _rng(seed)
    attachment = max(1, min(attachment, n - 1))
    graph = Graph(n)
    targets: List[int] = list(range(attachment))
    repeated: List[int] = []
    for u in range(attachment, n):
        chosen = set()
        pool = repeated if repeated else list(range(u))
        while len(chosen) < min(attachment, u):
            chosen.add(rng.choice(pool))
        for v in chosen:
            w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
            graph.add_edge(u, v, w)
            repeated.append(v)
            repeated.append(u)
    # Connect the initial seed nodes so the graph is connected.
    for a, b in zip(targets, targets[1:]):
        graph.add_edge(a, b, 1)
    return graph


def random_tree(n: int, seed: Optional[int] = None, max_weight: int = 1) -> Graph:
    """Uniform-ish random tree (random attachment)."""
    rng = _rng(seed)
    graph = Graph(n)
    for u in range(1, n):
        parent = rng.randrange(u)
        w = 1 if max_weight <= 1 else rng.randint(1, max_weight)
        graph.add_edge(u, parent, w)
    return graph


def disjoint_cliques(num_cliques: int, clique_size: int) -> Graph:
    """Several disconnected cliques; exercises INF handling everywhere."""
    n = num_cliques * clique_size
    graph = Graph(n)
    for c in range(num_cliques):
        base = c * clique_size
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                graph.add_edge(base + u, base + v, 1)
    return graph
