"""Sequential reference algorithms (ground truth).

Every approximation guarantee in the paper is validated against the exact
distances computed here: Dijkstra / BFS for single sources, repeated Dijkstra
for APSP, Bellman-Ford-style dynamic programming for hop-bounded distances
(needed to check the hopset property ``d_G <= d^β_{G∪H} <= (1+ε)·d_G``), and
the exact diameter / shortest-path-diameter used by the diameter and SSSP
experiments.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph, INF


def dijkstra(graph: Graph, source: int) -> List[float]:
    """Exact single-source distances from ``source`` (non-negative weights)."""
    dist = [INF] * graph.n
    dist[source] = 0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u).items():
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def bfs_distances(graph: Graph, source: int) -> List[float]:
    """Exact hop distances from ``source`` in an unweighted sense."""
    dist = [INF] * graph.n
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                if dist[v] is INF or dist[v] > level:
                    if dist[v] == INF:
                        dist[v] = level
                        next_frontier.append(v)
        frontier = next_frontier
    return dist


def bellman_ford(
    graph: Graph, source: int, max_hops: Optional[int] = None
) -> Tuple[List[float], int]:
    """Bellman-Ford from ``source``.

    Returns ``(distances, iterations_until_convergence)``.  When ``max_hops``
    is given the relaxation stops after that many iterations, yielding
    hop-bounded distances.  The iteration count is what the Congested Clique
    Bellman-Ford baseline pays in rounds (one relaxation per round).
    """
    dist = [INF] * graph.n
    dist[source] = 0
    limit = graph.n - 1 if max_hops is None else max_hops
    iterations = 0
    for _ in range(limit):
        changed = False
        new_dist = list(dist)
        for u in range(graph.n):
            du = dist[u]
            if du == INF:
                continue
            for v, w in graph.neighbors(u).items():
                nd = du + w
                if nd < new_dist[v]:
                    new_dist[v] = nd
                    changed = True
        dist = new_dist
        iterations += 1
        if not changed:
            break
    return dist, iterations


def all_pairs_dijkstra(graph: Graph) -> List[List[float]]:
    """Exact all-pairs distances via repeated Dijkstra."""
    return [dijkstra(graph, source) for source in range(graph.n)]


def exact_diameter(graph: Graph) -> float:
    """Exact (finite) diameter: the maximum finite pairwise distance."""
    best = 0.0
    for source in range(graph.n):
        dist = dijkstra(graph, source)
        for d in dist:
            if d != INF and d > best:
                best = d
    return best


def hop_bounded_distances(
    graph: Graph, source: int, max_hops: int
) -> List[float]:
    """``d^β_G(source, ·)``: shortest distances using at most ``max_hops`` edges."""
    dist, _ = bellman_ford(graph, source, max_hops=max_hops)
    return dist


def hop_bounded_pairwise(
    graph: Graph, pairs: Sequence[Tuple[int, int]], max_hops: int
) -> Dict[Tuple[int, int], float]:
    """Hop-bounded distances for a set of pairs (grouped by source)."""
    by_source: Dict[int, List[int]] = {}
    for u, v in pairs:
        by_source.setdefault(u, []).append(v)
    out: Dict[Tuple[int, int], float] = {}
    for u, targets in by_source.items():
        dist = hop_bounded_distances(graph, u, max_hops)
        for v in targets:
            out[(u, v)] = dist[v]
    return out


def shortest_path_diameter(graph: Graph) -> int:
    """Shortest-path diameter: the maximum, over connected pairs, of the
    minimum hop count among shortest (by weight) paths.

    This is the quantity that bounds the number of Bellman-Ford iterations
    needed for exact convergence (used by the SSSP experiment, Lemma 32).
    """
    spd = 0
    for source in range(graph.n):
        exact = dijkstra(graph, source)
        # Hop-count of a shortest path: dynamic program over increasing hops.
        dist = [INF] * graph.n
        dist[source] = 0
        hops_needed = [0 if i == source else -1 for i in range(graph.n)]
        for hop in range(1, graph.n):
            improved = False
            new_dist = list(dist)
            for u in range(graph.n):
                if dist[u] == INF:
                    continue
                for v, w in graph.neighbors(u).items():
                    nd = dist[u] + w
                    if nd < new_dist[v]:
                        new_dist[v] = nd
                        improved = True
            dist = new_dist
            for v in range(graph.n):
                if hops_needed[v] == -1 and dist[v] == exact[v] and dist[v] != INF:
                    hops_needed[v] = hop
            if not improved:
                break
        spd = max(spd, max((h for h in hops_needed if h >= 0), default=0))
    return spd


def approximation_ratio(
    estimate: Dict[Tuple[int, int], float] | List[List[float]],
    exact: List[List[float]],
    skip_infinite: bool = True,
) -> Tuple[float, float]:
    """Return ``(max_ratio, mean_ratio)`` of estimate/exact over finite pairs.

    ``estimate`` may be a dense matrix (list of rows) or a dict keyed by
    ``(u, v)``.  Pairs with zero or infinite exact distance are skipped.
    """
    ratios: List[float] = []
    n = len(exact)
    for u in range(n):
        for v in range(n):
            true = exact[u][v]
            if u == v or true == 0:
                continue
            if true == INF:
                if skip_infinite:
                    continue
                true = INF
            if isinstance(estimate, dict):
                est = estimate.get((u, v), INF)
            else:
                est = estimate[u][v]
            if true == INF and est == INF:
                continue
            ratios.append(est / true)
    if not ratios:
        return 1.0, 1.0
    return max(ratios), sum(ratios) / len(ratios)
