"""The :class:`Graph` data structure used throughout the library.

The paper (Section 1.5, Preliminaries) assumes undirected graphs with
non-negative integer edge weights bounded by ``O(n^c)`` for a constant ``c``.
The matrix-multiplication based distance tools also work for directed graphs,
so :class:`Graph` supports both; the headline shortest-path algorithms
require undirected inputs and validate this.

Nodes are always the integers ``0 .. n-1``; in the Congested Clique model
node ``v`` of the graph is identified with machine ``v`` of the clique.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

#: Infinite distance sentinel.  Using ``math.inf`` keeps arithmetic natural
#: (``INF + w == INF``) and comparisons obvious.
INF = math.inf

Edge = Tuple[int, int, float]


class Graph:
    """A simple weighted graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    directed:
        If ``True`` edges are directed; otherwise each added edge is stored
        in both directions.

    Notes
    -----
    The adjacency structure is a list of dictionaries: ``adj[u][v]`` is the
    weight of the edge ``(u, v)``.  Parallel edges are collapsed keeping the
    minimum weight, matching the shortest-path semantics used everywhere in
    the paper.
    """

    __slots__ = ("n", "directed", "adj")

    def __init__(self, n: int, directed: bool = False):
        if n <= 0:
            raise ValueError(f"graph must have at least one node, got n={n}")
        self.n = int(n)
        self.directed = bool(directed)
        self.adj: List[Dict[int, float]] = [dict() for _ in range(self.n)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1) -> None:
        """Add edge ``(u, v)`` with the given non-negative weight.

        If the edge already exists the minimum of the old and new weight is
        kept.  Self-loops are ignored (they never affect shortest paths with
        non-negative weights).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return
        if weight < 0:
            raise ValueError(f"edge weights must be non-negative, got {weight}")
        current = self.adj[u].get(v, INF)
        if weight < current:
            self.adj[u][v] = weight
            if not self.directed:
                self.adj[v][u] = weight

    def add_edges(self, edges: Iterable[Tuple[int, int] | Edge]) -> None:
        """Add many edges; each item is ``(u, v)`` (weight 1) or ``(u, v, w)``."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v, 1)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, w)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)`` if present."""
        self._check_node(u)
        self._check_node(v)
        self.adj[u].pop(v, None)
        if not self.directed:
            self.adj[v].pop(u, None)

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int] | Edge], directed: bool = False
    ) -> "Graph":
        """Build a graph from an edge iterable."""
        graph = cls(n, directed=directed)
        graph.add_edges(edges)
        return graph

    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        other = Graph(self.n, directed=self.directed)
        for u in range(self.n):
            other.adj[u] = dict(self.adj[u])
        return other

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self.adj[u]

    def weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``(u, v)``, or ``INF`` if absent."""
        self._check_node(u)
        self._check_node(v)
        return self.adj[u].get(v, INF)

    def neighbors(self, u: int) -> Dict[int, float]:
        """Return the adjacency dictionary of ``u`` (neighbor -> weight)."""
        self._check_node(u)
        return self.adj[u]

    def degree(self, u: int) -> int:
        """Return the (out-)degree of ``u``."""
        self._check_node(u)
        return len(self.adj[u])

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v, w)``.

        For undirected graphs each edge is reported once with ``u < v``.
        """
        for u in range(self.n):
            for v, w in self.adj[u].items():
                if self.directed or u < v:
                    yield (u, v, w)

    def num_edges(self) -> int:
        """Return the number of edges (undirected edges counted once)."""
        total = sum(len(self.adj[u]) for u in range(self.n))
        return total if self.directed else total // 2

    def max_weight(self) -> float:
        """Return the maximum edge weight (0 for an empty graph)."""
        best = 0.0
        for _, _, w in self.edges():
            if w > best:
                best = w
        return best

    def is_unweighted(self) -> bool:
        """Return ``True`` if every edge has weight exactly 1."""
        return all(w == 1 for _, _, w in self.edges())

    def nodes(self) -> range:
        """Return the node range ``0 .. n-1``."""
        return range(self.n)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Sequence[int]) -> Tuple["Graph", List[int]]:
        """Return the induced subgraph on ``keep`` plus the node relabelling.

        Returns
        -------
        (subgraph, original_ids):
            ``subgraph`` has ``len(keep)`` nodes, and ``original_ids[i]`` is
            the original id of subgraph node ``i``.
        """
        keep_list = sorted(set(keep))
        index = {node: i for i, node in enumerate(keep_list)}
        sub = Graph(max(len(keep_list), 1), directed=self.directed)
        for u in keep_list:
            for v, w in self.adj[u].items():
                if v in index:
                    sub.add_edge(index[u], index[v], w)
        return sub, keep_list

    def union_with_edges(self, extra_edges: Iterable[Edge]) -> "Graph":
        """Return ``G ∪ H`` where ``H`` is given as an edge list.

        This is how the hopset-augmented graphs ``G ∪ H^ℓ`` of Section 4 are
        materialised; weights of coinciding edges keep the minimum.
        """
        merged = self.copy()
        for u, v, w in extra_edges:
            merged.add_edge(u, v, w)
        return merged

    def restrict_to_low_degree(self, threshold: int) -> Tuple["Graph", List[int]]:
        """Return the subgraph induced on nodes of degree < ``threshold``.

        Used by the unweighted APSP algorithm (Section 6.3), which handles
        paths through high-degree nodes separately.
        """
        low = [u for u in range(self.n) if self.degree(u) < threshold]
        if not low:
            return Graph(1, directed=self.directed), []
        return self.subgraph(low)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise ValueError(f"node {u} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return f"Graph(n={self.n}, m={self.num_edges()}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.directed == other.directed
            and self.adj == other.adj
        )

    def __hash__(self) -> int:  # Graphs are mutable; identity hash.
        return id(self)
