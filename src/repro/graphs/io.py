"""Reading and writing graphs as edge-list files.

A minimal, dependency-free interchange format so that real workloads (road
networks, overlay topologies, SNAP-style edge lists) can be fed to the
algorithms:

* one edge per line: ``u v`` or ``u v weight``;
* blank lines and lines starting with ``#`` are ignored;
* node ids may be arbitrary non-negative integers — they are compacted to
  ``0 .. n-1`` on load (the mapping is returned so results can be reported
  in the original ids).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def load_edge_list(
    path: PathLike, directed: bool = False
) -> Tuple[Graph, Dict[int, int]]:
    """Load a graph from an edge-list file.

    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the node
    id in the file corresponding to graph node ``i``.
    """
    edges: List[Tuple[int, int, float]] = []
    seen: Dict[int, None] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{line_number}: expected 'u v [weight]', got {line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            if weight < 0:
                raise ValueError(f"{path}:{line_number}: negative weight {weight}")
            edges.append((u, v, weight))
            seen.setdefault(u)
            seen.setdefault(v)

    if not seen:
        raise ValueError(f"{path}: no edges found")
    ordered_ids = sorted(seen)
    index = {original: i for i, original in enumerate(ordered_ids)}
    graph = Graph(len(ordered_ids), directed=directed)
    for u, v, weight in edges:
        graph.add_edge(index[u], index[v], weight)
    return graph, {i: original for original, i in index.items()}


def save_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a graph as an edge-list file (one ``u v weight`` line per edge)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n} edges={graph.num_edges()} "
                     f"directed={graph.directed}\n")
        for u, v, w in graph.edges():
            if w == int(w):
                handle.write(f"{u} {v} {int(w)}\n")
            else:
                handle.write(f"{u} {v} {w}\n")
