"""Command-line interface.

A thin front end over the library for quick experimentation without writing
a script::

    python -m repro apsp      --n 96 --epsilon 0.5 --weighted
    python -m repro mssp      --n 96 --sources 8
    python -m repro sssp      --n 144 --grid
    python -m repro diameter  --n 64
    python -m repro hopset    --n 80 --epsilon 0.5
    python -m repro matmul    --n 128 --density 8

Each subcommand generates a seeded workload, runs the corresponding
algorithm, validates the guarantee against sequential ground truth, and
prints a short report including the simulated round count and (with
``--breakdown``) where the rounds were spent.

The ``oracle`` subcommand group is the build-once / query-many split::

    python -m repro oracle build out.npz --strategy landmark-mssp --n 96
    python -m repro oracle build big.npz --strategy dense-apsp --n 4096 --shards 16
    python -m repro oracle shard out.npz out-sharded --shards 8
    python -m repro oracle query out.npz --pairs 0:5,3:7 --stats
    python -m repro oracle bench out.npz --queries 20000

``--shards`` writes the memory-mapped sharded format (``.shard-K.npz``
files plus a ``.shards.json`` manifest); ``query``/``bench``/``serve``/
``loadgen`` accept either format transparently.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
from typing import List, Optional, Tuple

from repro import (
    apsp_unweighted,
    apsp_weighted,
    approximate_diameter,
    build_hopset,
    exact_sssp,
    mssp,
    output_sensitive_mm,
    sparse_mm_clt18,
    dense_mm,
)
from repro.baselines import apsp_dense_mm, sssp_bellman_ford
from repro.graphs import (
    all_pairs_dijkstra,
    dijkstra,
    erdos_renyi,
    exact_diameter,
    grid_graph,
    load_edge_list,
    random_weighted_graph,
)
from repro.graphs.reference import approximation_ratio
from repro.hopsets import verify_hopset_property
from repro.matmul import SemiringMatrix
from repro.matmul.kernels import KERNEL_NAMES
from repro.oracle import (
    STRATEGY_NAMES,
    ArtifactError,
    OracleBuilder,
    QueryEngine,
    load_artifact,
    measure_throughput,
    shard_artifact,
)
from repro.semiring import MIN_PLUS


def _build_graph(args: argparse.Namespace):
    if getattr(args, "grid", False):
        side = int(math.isqrt(args.n))
        return grid_graph(side, side, max_weight=args.max_weight, seed=args.seed)
    if getattr(args, "weighted", True):
        return random_weighted_graph(
            args.n, average_degree=args.degree, max_weight=args.max_weight, seed=args.seed
        )
    return erdos_renyi(args.n, args.degree / args.n, seed=args.seed)


def _print_common(result, breakdown: bool) -> None:
    print(f"simulated rounds : {result.rounds:.0f}")
    if breakdown:
        print(result.clique.report())


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_apsp(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    exact = all_pairs_dijkstra(graph)
    if args.weighted:
        result = apsp_weighted(graph, epsilon=args.epsilon)
        guarantee = f"(2+{args.epsilon}, (1+{args.epsilon})W)"
    else:
        result = apsp_unweighted(graph, epsilon=args.epsilon)
        guarantee = f"(2+{args.epsilon})"
    worst, mean = approximation_ratio([list(r) for r in result.estimates], exact)
    print(f"APSP approximation on n={graph.n}, m={graph.num_edges()}")
    print(f"guarantee        : {guarantee}")
    print(f"max stretch      : {worst:.3f}")
    print(f"mean stretch     : {mean:.3f}")
    _print_common(result, args.breakdown)
    if args.compare_baseline:
        baseline = apsp_dense_mm(graph)
        print(f"baseline (exact dense-MM APSP) rounds: {baseline.rounds:.0f}")
    return 0


def cmd_mssp(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    step = max(1, graph.n // args.sources)
    sources = list(range(0, graph.n, step))[: args.sources]
    result = mssp(graph, sources, epsilon=args.epsilon)
    worst = 1.0
    for s in result.sources:
        exact = dijkstra(graph, s)
        for v in range(graph.n):
            if exact[v] not in (0, math.inf):
                worst = max(worst, result.distance(v, s) / exact[v])
    print(f"MSSP from {len(result.sources)} sources on n={graph.n}")
    print(f"guarantee        : 1+{args.epsilon}")
    print(f"max stretch      : {worst:.3f}")
    _print_common(result, args.breakdown)
    return 0


def cmd_sssp(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    result = exact_sssp(graph, args.source)
    expected = dijkstra(graph, args.source)
    exact = all(
        (math.isinf(result.distances[v]) and expected[v] == math.inf)
        or abs(result.distances[v] - expected[v]) < 1e-9
        for v in range(graph.n)
    )
    print(f"exact SSSP from node {args.source} on n={graph.n}")
    print(f"exact            : {exact}")
    print(f"BF iterations    : {result.details['bellman_ford_iterations']}")
    _print_common(result, args.breakdown)
    if args.compare_baseline:
        baseline = sssp_bellman_ford(graph, args.source)
        print(f"baseline (plain Bellman-Ford) rounds: {baseline.rounds:.0f}")
    return 0


def cmd_diameter(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    result = approximate_diameter(graph, epsilon=args.epsilon)
    true_diameter = exact_diameter(graph)
    print(f"diameter approximation on n={graph.n}")
    print(f"true diameter    : {true_diameter:.0f}")
    print(f"estimate         : {result.estimate:.0f}")
    print(f"window           : [{2 * true_diameter / 3 - graph.max_weight():.1f}, "
          f"{(1 + args.epsilon) * true_diameter:.1f}]")
    _print_common(result, args.breakdown)
    return 0


def cmd_hopset(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    result = build_hopset(graph, epsilon=args.epsilon)
    report = verify_hopset_property(
        graph, result.edges, result.beta, args.epsilon,
        sources=range(0, graph.n, max(1, graph.n // 16)),
    )
    print(f"hopset on n={graph.n}: {result.size()} edges, beta={result.beta}")
    print(f"measured beta-hop stretch : {report['max_hop_stretch']:.3f} "
          f"(guarantee {1 + args.epsilon})")
    print(f"violations                : {int(report['violations'])}")
    print(f"simulated rounds          : {result.rounds:.0f}")
    if args.breakdown:
        print(result.clique.report())
    return 0


def cmd_matmul(args: argparse.Namespace) -> int:
    import random as _random

    rng = _random.Random(args.seed)
    S = SemiringMatrix(args.n, MIN_PLUS)
    T = SemiringMatrix(args.n, MIN_PLUS)
    for matrix in (S, T):
        for i in range(args.n):
            for _ in range(args.density):
                matrix.set(i, rng.randrange(args.n), float(rng.randint(1, 99)))
    clt = sparse_mm_clt18(S, T)
    # the paper's applications always know the output density in advance;
    # reuse the density of the (already computed) reference product here.
    ours = output_sensitive_mm(S, T, rho_hat=clt.product.density())
    dense = dense_mm(S, T)
    print(f"sparse matrix product, n={args.n}, per-row density {args.density}")
    print(f"rho_S={S.density()} rho_T={T.density()} rho_P={ours.product.density()}")
    print(f"Theorem 8 rounds : {ours.rounds:.0f}")
    print(f"CLT18 rounds     : {clt.rounds:.0f}")
    print(f"dense 3D rounds  : {dense.rounds:.0f}")
    print(f"products agree   : {ours.product.equals(clt.product) and ours.product.equals(dense.product)}")
    return 0


# ----------------------------------------------------------------------
# oracle subcommands
# ----------------------------------------------------------------------
def _parse_pairs(text: str) -> List[Tuple[int, int]]:
    """Parse ``"0:5,3:7"`` into ``[(0, 5), (3, 7)]``."""
    pairs: List[Tuple[int, int]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 2:
            raise ValueError(f"expected 'u:v', got {chunk!r}")
        pairs.append((int(parts[0]), int(parts[1])))
    if not pairs:
        raise ValueError("no query pairs given")
    return pairs


def _load_engine(path: str) -> QueryEngine:
    # load_artifact dispatches on what lives at the path: a monolithic
    # payload is read whole, a sharded artifact opens memory-mapped.
    return QueryEngine(load_artifact(path))


def _node_translation(engine: QueryEngine):
    """Original-id <-> internal-id mapping for artifacts built from files.

    Returns ``(to_original, to_internal)``; both are ``None`` for artifacts
    built from generated workloads (internal ids are the public ids).
    """
    ids = engine.artifact.metadata.get("node_ids")
    if ids is None:
        return None, None
    return list(ids), {original: i for i, original in enumerate(ids)}


def cmd_oracle_build(args: argparse.Namespace) -> int:
    original_ids = None
    if args.graph:
        try:
            graph, original_ids = load_edge_list(args.graph)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load graph {args.graph}: {exc}", file=sys.stderr)
            return 1
    else:
        graph = _build_graph(args)
    kernel = None if args.kernel in (None, "auto") else args.kernel
    extra_metadata = None
    if original_ids is not None:
        # Node ids in the file may be arbitrary; persist the mapping so
        # queries speak the file's ids, not the compacted internal ones.
        extra_metadata = {
            "node_ids": [original_ids[i] for i in range(graph.n)]}
    try:
        builder = OracleBuilder(strategy=args.strategy, epsilon=args.epsilon,
                                k=args.k, kernel=kernel, jobs=args.jobs)
        if args.shards:
            # Sharded builds go through the builder so --jobs workers can
            # write their shard files directly.
            artifact, manifest_path, shard_paths = builder.build_sharded(
                graph, args.artifact, args.shards,
                extra_metadata=extra_metadata)
        else:
            artifact = builder.build(graph)
            if extra_metadata:
                artifact.metadata.update(extra_metadata)
    except (ArtifactError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"oracle build: {args.strategy} on n={graph.n}, m={graph.num_edges()}")
    print(builder.report(artifact).summary(verbose=args.verbose))
    if args.shards:
        print(f"manifest         : {manifest_path}")
        print(f"shards           : {len(shard_paths)} memory-mappable files "
              f"({shard_paths[0].name} .. {shard_paths[-1].name})")
    else:
        payload_path, sidecar_path = artifact.save(args.artifact)
        print(f"payload          : {payload_path}")
        print(f"metadata         : {sidecar_path}")
    return 0


def cmd_oracle_strategies(args: argparse.Namespace) -> int:
    """List every registered strategy straight from the registry.

    The listing is registry-derived — a strategy registered by a plugin
    or a test shows up here with its guarantee and size estimates, no
    CLI change needed.
    """
    from repro.oracle.strategies import REGISTRY

    n = args.n
    m = int(round(args.n * args.degree / 2.0))
    print(f"registered oracle strategies ({len(REGISTRY)}); estimates at "
          f"n={n} m={m} epsilon={args.epsilon:g} max_weight={args.max_weight:g}:")
    for spec in REGISTRY.specs():
        guarantee = spec.guarantee(args.epsilon, args.max_weight)
        stretch = f"{guarantee.multiplicative:g}x"
        if guarantee.additive:
            stretch += f"+{guarantee.additive:g}"
        estimate = spec.estimate(n, m, args.epsilon)
        print(f"\n  {spec.name}  (query_kind={spec.query_kind}, "
              f"{'epsilon-sensitive' if spec.uses_epsilon else 'epsilon-free'})")
        print(f"    {spec.summary}")
        print(f"    guarantee    : {stretch}")
        print(f"    est. payload : {estimate.payload_bytes / 1e6:.2f} MB "
              f"({estimate.payload_floats:,.0f} floats)")
        print(f"    est. query   : {estimate.query_cost:g} lookups; "
              f"build cost ~{estimate.build_cost:.3g}")
        print(f"    arrays       : {', '.join(spec.required_arrays)}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Plan (and optionally build) a stretch-budget artifact fleet."""
    from repro.oracle.planner import (
        PlanError,
        execute_plan,
        parse_budget,
        plan_fleet,
    )

    if args.graph:
        try:
            graph, _original_ids = load_edge_list(args.graph)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load graph {args.graph}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        graph = _build_graph(args)

    budget_texts = args.budget or ["3", "4.5", "inf"]
    try:
        budgets = [parse_budget(text) for text in budget_texts]
        max_resident = (math.inf if math.isinf(args.max_resident_mb)
                        else args.max_resident_mb * 1e6 / 8.0)
        plan = plan_fleet(
            graph,
            budgets=budgets,
            epsilon=args.epsilon,
            max_query_cost=args.max_query_cost,
            max_resident_floats=max_resident,
            shard_target_bytes=args.shard_target_mb * 1024 * 1024,
        )
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(plan.summary())
    if not args.out:
        print("\n(dry run; pass --out DIR to build the fleet)")
        return 0
    try:
        execution = execute_plan(plan, graph, args.out, jobs=args.jobs)
    except (ArtifactError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"\nbuilt {len(plan.builds())} artifact(s) into {args.out}")
    for choice in plan.choices:
        print(f"  budget {choice.budget.multiplicative:g}x -> "
              f"{execution.artifact_for(choice)}")
    print(f"manifest         : {execution.manifest_path}")
    print(f"boot it with     : python -m repro net serve "
          f"{execution.manifest_path}")
    return 0


def cmd_oracle_shard(args: argparse.Namespace) -> int:
    """Re-shard an existing artifact (monolithic or sharded) on disk."""
    if args.shards < 1:
        print(f"error: --shards must be positive, got {args.shards}",
              file=sys.stderr)
        return 2
    try:
        manifest_path, shard_paths = shard_artifact(
            args.source, args.artifact, args.shards)
    except (ArtifactError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"oracle shard: {args.source} -> {len(shard_paths)} shards")
    print(f"manifest         : {manifest_path}")
    for shard in shard_paths:
        print(f"shard            : {shard.name} ({shard.stat().st_size} bytes)")
    return 0


def cmd_oracle_query(args: argparse.Namespace) -> int:
    try:
        engine = _load_engine(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    to_original, to_internal = _node_translation(engine)

    def internal(node: int) -> int:
        if to_internal is None:
            return node
        try:
            return to_internal[node]
        except KeyError:
            raise ValueError(f"node {node} is not in the graph the oracle "
                             "was built from") from None

    did_something = False
    if args.pairs is not None:
        try:
            pairs = _parse_pairs(args.pairs)
            internal_pairs = [(internal(u), internal(v)) for u, v in pairs]
        except ValueError as exc:
            print(f"error: bad --pairs value: {exc}", file=sys.stderr)
            return 2
        # Deduplicate (symmetric) repeats before hitting the engine, then
        # fan the answers back out in input order — repeated pairs on the
        # command line cost one query, not one per occurrence.
        unique: List[Tuple[int, int]] = []
        position: dict = {}
        order = []
        for iu, iv in internal_pairs:
            key = (iu, iv) if iu <= iv else (iv, iu)
            if key not in position:
                position[key] = len(unique)
                unique.append(key)
            order.append(position[key])
        try:
            values = engine.batch(unique)
        except ValueError as exc:
            print(f"error: bad --pairs value: {exc}", file=sys.stderr)
            return 2
        except ArtifactError as exc:
            # Sharded artifacts verify checksums on first fault, so
            # corruption can surface at query time, not just load time.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for (u, v), index in zip(pairs, order):
            print(f"dist({u}, {v}) = {values[index]:g}")
        did_something = True
    if args.k_nearest is not None:
        try:
            u, k = (int(part) for part in args.k_nearest.split(":"))
            nearest = engine.k_nearest(internal(u), k)
        except ValueError as exc:
            print(f"error: bad --k-nearest value {args.k_nearest!r}: {exc}",
                  file=sys.stderr)
            return 2
        except ArtifactError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for node, value in nearest:
            shown = node if to_original is None else to_original[node]
            print(f"nearest({u}): node {shown} at {value:g}")
        did_something = True
    if args.stats or not did_something:
        stats = engine.stats()
        latency = stats["latency"]
        print(f"strategy         : {stats['strategy']} (n={stats['n']})")
        print(f"queries          : {stats['queries']}")
        print(f"cache hit rate   : {stats['cache_hit_rate']:.3f}")
        if latency["count"]:
            print(f"latency P50/P95/P99 (us): {latency['p50_us']:.1f} / "
                  f"{latency['p95_us']:.1f} / {latency['p99_us']:.1f}")
    return 0


def cmd_oracle_bench(args: argparse.Namespace) -> int:
    if args.queries <= 0:
        print(f"error: --queries must be positive, got {args.queries}",
              file=sys.stderr)
        return 2
    try:
        engine = _load_engine(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    n = engine.n
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(args.queries)]
    try:
        throughput = measure_throughput(engine, pairs)
    except ArtifactError as exc:
        # Lazy shard verification can flag corruption on first fault.
        print(f"error: {exc}", file=sys.stderr)
        return 1

    stats = engine.stats()
    latency = stats["latency"]
    print(f"oracle bench: {stats['strategy']} on n={n}, {args.queries} queries")
    print(f"cold queries/sec : {throughput['cold_qps']:,.0f}")
    print(f"cached queries/sec: {throughput['cached_qps']:,.0f}")
    print(f"cache hit rate   : {stats['cache_hit_rate']:.3f}")
    if latency["count"]:
        print(f"latency P50/P95/P99 (us): {latency['p50_us']:.1f} / "
              f"{latency['p95_us']:.1f} / {latency['p99_us']:.1f}")
    return 0


# ----------------------------------------------------------------------
# serving subcommands
# ----------------------------------------------------------------------
def _serve_config(args: argparse.Namespace):
    from repro.serve import ServerConfig

    if args.window_ms == "auto":
        window = "auto"
    else:
        window = float(args.window_ms) / 1000.0
    return ServerConfig(
        coalesce_window=window,
        max_batch=args.max_batch,
        queue_capacity=args.queue_capacity,
        overload_policy=args.policy,
    )


def _serve_registry(args: argparse.Namespace):
    from repro.serve import build_registry

    return build_registry(args.artifacts, capacity=args.capacity)


def _route_for_workload(router, args: argparse.Namespace):
    """The decision every sampled request will route to (fixed budget).

    The workload's node range must come from the *routed* artifact, not
    the largest registered one — with several graphs behind one registry
    the cheapest admissible artifact may be the smallest.
    """
    from repro.serve import RoutingError

    try:
        return router.route(multiplicative=args.stretch,
                            additive=args.additive)
    except RoutingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a registry of artifacts and drive a self-test workload."""
    import asyncio

    from repro.oracle import ArtifactError
    from repro.serve import (
        DistanceServer,
        RegistryError,
        StretchRouter,
        run_closed_loop,
        zipf_pairs,
    )

    try:
        registry = _serve_registry(args)
    except (ArtifactError, RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    router = StretchRouter(registry)
    print(f"serving {len(registry)} artifact(s) "
          f"(engine capacity {registry.capacity}):")
    for entry in registry.entries():
        print(f"  {entry.describe()}")

    decision = _route_for_workload(router, args)
    if decision is None:
        return 1
    pairs = zipf_pairs(decision.entry.n, args.queries, skew=args.zipf,
                       seed=args.seed)

    async def drive():
        async with DistanceServer(router, _serve_config(args)) as server:
            report = await run_closed_loop(
                server, pairs, concurrency=args.concurrency,
                multiplicative=args.stretch, additive=args.additive)
            return report, server.stats()

    try:
        report, stats = asyncio.run(drive())
    except Exception as exc:  # RoutingError with a strict budget, etc.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("\n-- self-test workload --")
    print(report.summary())
    print("\n-- server stats --")
    print(f"engine batches   : {stats['engine_batches']} "
          f"({stats['coalesced_keys']} coalesced keys)")
    coalescing = stats["coalescing"]
    configured = coalescing["configured"]
    configured_str = (configured if isinstance(configured, str)
                      else f"{configured * 1e3:g}ms")
    # Configured vs effective matter independently: under --window-ms
    # auto the EWMA re-sizes the window every flush, so the knob alone
    # says nothing about what the server actually did.
    print(f"coalescing       : mode={coalescing['mode']} "
          f"configured={configured_str} "
          f"effective={coalescing['window_s'] * 1e3:.3f}ms "
          f"(ewma arrival {coalescing['ewma_arrival_rate']:,.0f}/s)")
    print(f"routes           : {stats['router']['routes']}")
    for name, engine_stats in stats["engines"].items():
        print(f"engine[{name}]: queries={engine_stats['queries_total']} "
              f"hit_rate={engine_stats['cache_hit_rate']:.3f}")
    return 0


def _parse_stretch_mix(text: str):
    """Parse ``"mult[+add]:weight,..."`` into ``[(StretchBudget, weight)]``.

    A missing ``:weight`` defaults to 1; e.g. ``"3:1,4.5:2,inf"`` sends a
    quarter of requests with a 3x budget, half with 4.5x, a quarter
    unconstrained.
    """
    from repro.oracle.planner import parse_budget

    entries = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        budget_text, sep, weight_text = chunk.rpartition(":")
        if not sep:
            budget_text, weight_text = chunk, "1"
        budget = parse_budget(budget_text)
        try:
            weight = float(weight_text)
        except ValueError:
            raise ValueError(f"bad weight {weight_text!r} in stretch-mix "
                             f"entry {chunk!r}") from None
        if weight <= 0:
            raise ValueError(f"stretch-mix weight must be positive in {chunk!r}")
        entries.append((budget, weight))
    if not entries:
        raise ValueError("empty --stretch-mix")
    return entries


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Run the load generator against an in-process server; emit JSON."""
    import asyncio
    import json

    from repro.serve import (
        DistanceServer,
        RegistryError,
        RoutingError,
        StretchRouter,
        count_mismatches,
        residency_from_stats,
        run_closed_loop,
        run_open_loop,
        zipf_pairs,
    )

    if args.queries <= 0:
        print(f"error: --queries must be positive, got {args.queries}",
              file=sys.stderr)
        return 2
    mix = None
    if args.stretch_mix:
        try:
            mix = _parse_stretch_mix(args.stretch_mix)
        except ValueError as exc:
            print(f"error: bad --stretch-mix value: {exc}", file=sys.stderr)
            return 2
    try:
        registry = _serve_registry(args)
    except (ArtifactError, RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    router = StretchRouter(registry)
    budgets = None
    if mix is not None:
        # Resolve every budget in the mix up front: each must be
        # routable, and the sampled node range must fit the *smallest*
        # artifact any request can land on.
        decisions = []
        try:
            for budget, _weight in mix:
                decisions.append(router.route(
                    multiplicative=budget.multiplicative,
                    additive=budget.additive))
        except RoutingError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        nodes = min(routed.entry.n for routed in decisions)
        pairs = zipf_pairs(nodes, args.queries, skew=args.zipf,
                           seed=args.seed)
        chooser = random.Random(args.seed + 1)
        chosen = chooser.choices(range(len(mix)),
                                 weights=[weight for _, weight in mix],
                                 k=args.queries)
        budgets = [(mix[i][0].multiplicative, mix[i][0].additive)
                   for i in chosen]
        print("stretch mix      : " + ", ".join(
            f"{budget.multiplicative:g}x->{routed.name} "
            f"(w={weight:g})"
            for (budget, weight), routed in zip(mix, decisions)))
    else:
        decision = _route_for_workload(router, args)
        if decision is None:
            return 1
        pairs = zipf_pairs(decision.entry.n, args.queries, skew=args.zipf,
                           seed=args.seed)

    collect_samples = bool(args.raw_jsonl)

    async def drive():
        async with DistanceServer(router, _serve_config(args)) as server:
            if args.mode == "open":
                report = await run_open_loop(
                    server, pairs, qps=args.qps,
                    multiplicative=args.stretch, additive=args.additive,
                    collect_samples=collect_samples, budgets=budgets)
            else:
                report = await run_closed_loop(
                    server, pairs, concurrency=args.concurrency,
                    multiplicative=args.stretch, additive=args.additive,
                    collect_samples=collect_samples, budgets=budgets)
            return report, server.stats()

    try:
        report, server_stats = asyncio.run(drive())
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.report_residency:
        report.residency = residency_from_stats(server_stats)
    if args.verify:
        if mix is not None:
            # Each budget in the mix routed independently; replay every
            # answered pair against the engine its budget routed to.
            mismatches = 0
            for index_in_mix, routed in enumerate(decisions):
                group = [i for i, choice in enumerate(chosen)
                         if choice == index_in_mix]
                if not group:
                    continue
                reference = _load_engine(str(routed.entry.path))
                mismatches += count_mismatches(
                    [pairs[i] for i in group],
                    [report.answers[i] for i in group], reference)
            report.mismatches = mismatches
        else:
            # The budget is fixed for the whole run, so every request
            # routed to the artifact resolved up front: replay it through
            # a fresh direct engine (monolithic or sharded, per the
            # routed entry).
            reference = _load_engine(str(decision.entry.path))
            report.mismatches = count_mismatches(pairs, report.answers,
                                                 reference)

    print(report.summary())
    if args.raw_jsonl:
        written = report.write_samples_jsonl(args.raw_jsonl)
        print(f"appended {written} raw samples to {args.raw_jsonl}")
    payload = {"schema": "repro-loadgen/v1", "report": report.as_dict(),
               "artifacts": [entry.name for entry in registry.entries()]}
    if args.json_out:
        from pathlib import Path

        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json_out}")
    if args.verify and report.mismatches:
        return 1
    return 0


def cmd_net_serve(args: argparse.Namespace) -> int:
    """Spawn a worker fleet + front tier; serve until interrupted.

    ``--self-test N`` instead drives N verified queries through the
    whole stack (client -> frontend -> workers -> engines) and exits —
    the one-command proof that the fleet answers correctly over TCP.
    """
    import asyncio
    import dataclasses
    import os
    import signal

    if args.trace_sample is not None:
        # Before the Cluster spawns: worker processes inherit the
        # environment, so the whole fleet samples at the same rate.
        from repro.obs.tracing import SAMPLE_ENV_VAR, set_sample_rate

        os.environ[SAMPLE_ENV_VAR] = str(args.trace_sample)
        set_sample_rate(args.trace_sample)

    from repro.net.bench import NET_ERROR_TYPES
    from repro.net.cluster import Cluster
    from repro.net.frontend import Frontend, NetClient
    from repro.net.protocol import NetError
    from repro.oracle import ArtifactError
    from repro.serve import (
        RegistryError,
        StretchRouter,
        count_mismatches,
        run_closed_loop,
        zipf_pairs,
    )

    try:
        config_kwargs = dataclasses.asdict(_serve_config(args))
        cluster = Cluster(args.artifacts, num_workers=args.workers,
                          host=args.host, base_port=args.worker_base_port,
                          config_kwargs=config_kwargs,
                          capacity=args.capacity)
        frontend = Frontend(args.artifacts, cluster.addresses,
                            host=args.host, port=args.port,
                            capacity=args.capacity)
    except (ArtifactError, RegistryError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    async def drive() -> int:
        await frontend.start()
        try:
            print(f"workers  : {args.workers} on ports "
                  f"{[port for _, port in cluster.addresses]}")
            print(f"frontend : {frontend.host}:{frontend.port} "
                  f"(binary frames + HTTP /healthz /statsz /query)")
            if args.self_test:
                registry = _serve_registry(args)
                decision = _route_for_workload(StretchRouter(registry), args)
                if decision is None:
                    return 1
                pairs = zipf_pairs(decision.entry.n, args.self_test,
                                   skew=args.zipf, seed=args.seed)
                async with NetClient(frontend.host, frontend.port,
                                     client="self-test") as client:
                    report = await run_closed_loop(
                        client, pairs, concurrency=args.concurrency,
                        multiplicative=args.stretch, additive=args.additive,
                        error_types=NET_ERROR_TYPES)
                reference = _load_engine(str(decision.entry.path))
                report.mismatches = count_mismatches(pairs, report.answers,
                                                     reference)
                print("\n-- self-test over TCP --")
                print(report.summary())
                return 1 if (report.mismatches or report.errors) else 0
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
            print("serving; Ctrl-C to drain and exit")
            await stop.wait()
            return 0
        finally:
            await frontend.stop()

    try:
        with cluster:
            return asyncio.run(drive())
    except (NetError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_chaos_plan(args: argparse.Namespace) -> int:
    """Print (``--example``) or validate-and-normalise a fault plan."""
    from repro.chaos.plan import FaultPlan, PlanError, example_plan

    if args.example:
        print(example_plan().to_json())
        return 0
    if not args.plan:
        print("error: pass a plan (JSON or @path) or --example",
              file=sys.stderr)
        return 1
    try:
        plan = FaultPlan.from_env_value(args.plan)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if plan is None:
        print("error: empty plan", file=sys.stderr)
        return 1
    print(plan.to_json())
    return 0


def cmd_chaos_corrupt(args: argparse.Namespace) -> int:
    """Apply (or ``--restore``) a plan's on-disk shard corruption."""
    import json

    from repro.chaos.disk import apply_disk_faults, restore_shard_file
    from repro.chaos.plan import FaultPlan, PlanError
    from repro.oracle import ArtifactError
    from repro.oracle.sharding import (
        ShardedOracleArtifact,
        shard_manifest_path,
    )

    try:
        if args.restore:
            artifact = ShardedOracleArtifact.load(
                shard_manifest_path(args.artifact), verify="none")
            restored = [index for index in range(artifact.num_shards)
                        if restore_shard_file(artifact.shard_file(index))]
            print(json.dumps({"restored_shards": restored}))
            return 0
        if not args.plan:
            print("error: pass a plan (JSON or @path) or --restore",
                  file=sys.stderr)
            return 1
        plan = FaultPlan.from_env_value(args.plan)
        if plan is None or not plan.disk_faults:
            print("error: plan has no corrupt_shard faults", file=sys.stderr)
            return 1
        reports = apply_disk_faults(plan, args.artifact,
                                    backup=not args.no_backup)
        print(json.dumps({"corrupted": reports}))
        return 0
    except (PlanError, ArtifactError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_chaos_run(args: argparse.Namespace) -> int:
    """``net serve`` under a fault plan: the one-command chaos drill.

    Exports the plan through ``REPRO_CHAOS`` *before* the Cluster
    spawns (workers inherit the environment), applies any
    ``corrupt_shard`` faults to the artifact files, then delegates to
    :func:`cmd_net_serve` — so ``--self-test N`` under a plan is the
    availability + zero-wrong-answers drill from the benchmark, sized
    to taste.
    """
    import os

    from repro.chaos.disk import apply_disk_faults
    from repro.chaos.plan import CHAOS_ENV_VAR, FaultPlan, PlanError
    from repro.oracle import ArtifactError

    try:
        plan = FaultPlan.from_env_value(args.plan)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if plan is None:
        print("error: empty plan", file=sys.stderr)
        return 1
    os.environ[CHAOS_ENV_VAR] = plan.to_json()
    try:
        if plan.disk_faults:
            for artifact in args.artifacts:
                reports = apply_disk_faults(plan, artifact)
                for report in reports:
                    print(f"corrupted: {report['path']} "
                          f"(+{report['flips']}B @ {report['offset']})")
    except (PlanError, ArtifactError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        return cmd_net_serve(args)
    finally:
        os.environ.pop(CHAOS_ENV_VAR, None)


def cmd_obs(args: argparse.Namespace) -> int:
    """Scrape a live worker or frontend ``/metricsz`` and summarise it.

    Pointed at a frontend the snapshot is already the merged fleet view
    (the frontend scrapes its workers before answering); pointed at one
    worker it is that process's registry alone.
    """
    import json

    from repro.obs.export import (
        fetch_snapshot,
        fetch_text,
        render_snapshot,
        render_top,
    )

    try:
        if args.obs_command == "top":
            snapshot = fetch_snapshot(args.host, args.port,
                                      timeout=args.timeout)
            print(render_top(snapshot, limit=args.limit))
        elif args.obs_command == "snapshot":
            snapshot = fetch_snapshot(args.host, args.port,
                                      timeout=args.timeout)
            fleet = snapshot.get("fleet")
            if isinstance(fleet, dict):
                print(f"fleet: {fleet.get('workers_scraped', '?')}/"
                      f"{fleet.get('workers', '?')} workers scraped")
            print(render_snapshot(snapshot))
        else:  # export
            if args.format == "prom":
                text = fetch_text(args.host, args.port,
                                  timeout=args.timeout)
            else:
                snapshot = fetch_snapshot(args.host, args.port,
                                          timeout=args.timeout)
                text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            if args.out:
                from pathlib import Path

                Path(args.out).write_text(text)
                print(f"wrote {args.out}")
            else:
                sys.stdout.write(text)
    except BrokenPipeError:
        return 0  # downstream pager/head closed the pipe; not an error
    except (OSError, ConnectionError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_net_bench(args: argparse.Namespace) -> int:
    """Run the cold/warm + ladder + failover campaign (see repro.net.bench)."""
    from repro.net import bench

    argv = ["--workers", str(args.workers), "--n", str(args.n),
            "--shards", str(args.shards), "--batch", str(args.batch),
            "--seed", str(args.seed)]
    if args.smoke:
        argv.append("--smoke")
    if args.queries is not None:
        argv += ["--queries", str(args.queries)]
    if args.failover_queries is not None:
        argv += ["--failover-queries", str(args.failover_queries)]
    if args.out is not None:
        argv += ["--out", str(args.out)]
    if args.raw_dir is not None:
        argv += ["--raw-dir", str(args.raw_dir)]
    return bench.main(argv)


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=96, help="number of nodes")
    parser.add_argument("--degree", type=float, default=8.0, help="average degree")
    parser.add_argument("--max-weight", type=int, default=16, dest="max_weight")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--grid", action="store_true", help="use a grid workload")
    parser.add_argument("--breakdown", action="store_true", help="print round breakdown")
    parser.add_argument(
        "--compare-baseline", action="store_true", help="also run the prior-work baseline"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast approximate shortest paths in the Congested Clique (PODC 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    apsp = sub.add_parser("apsp", help="approximate all-pairs shortest paths")
    _add_common(apsp)
    apsp.add_argument("--weighted", action="store_true", help="weighted (2+eps,(1+eps)W) variant")
    apsp.set_defaults(func=cmd_apsp)

    mssp_parser = sub.add_parser("mssp", help="multi-source shortest paths")
    _add_common(mssp_parser)
    mssp_parser.add_argument("--sources", type=int, default=8)
    mssp_parser.set_defaults(func=cmd_mssp, weighted=True)

    sssp = sub.add_parser("sssp", help="exact single-source shortest paths")
    _add_common(sssp)
    sssp.add_argument("--source", type=int, default=0)
    sssp.set_defaults(func=cmd_sssp, weighted=True)

    diameter = sub.add_parser("diameter", help="diameter approximation")
    _add_common(diameter)
    diameter.set_defaults(func=cmd_diameter, weighted=True)

    hopset = sub.add_parser("hopset", help="hopset construction")
    _add_common(hopset)
    hopset.set_defaults(func=cmd_hopset, weighted=True)

    matmul = sub.add_parser("matmul", help="sparse matrix multiplication comparison")
    matmul.add_argument("--n", type=int, default=128)
    matmul.add_argument("--density", type=int, default=8, help="non-zeros per row")
    matmul.add_argument("--seed", type=int, default=0)
    matmul.set_defaults(func=cmd_matmul)

    oracle = sub.add_parser(
        "oracle", help="build, query, and benchmark persistent distance oracles"
    )
    oracle_sub = oracle.add_subparsers(dest="oracle_command", required=True)

    build = oracle_sub.add_parser("build", help="build and save an oracle artifact")
    build.add_argument("artifact", help="output path (.npz; a .meta.json sidecar is added)")
    build.add_argument(
        "--strategy", choices=STRATEGY_NAMES, default="landmark-mssp",
        help="oracle construction strategy",
    )
    build.add_argument("--graph", help="edge-list file to build from (instead of --n)")
    build.add_argument("--k", type=int, default=None, help="ball size for landmark-mssp")
    # Workload options mirror _add_common minus the flags build has no use
    # for (--breakdown / --compare-baseline are report-time options).
    build.add_argument("--n", type=int, default=96, help="number of nodes")
    build.add_argument("--degree", type=float, default=8.0, help="average degree")
    build.add_argument("--max-weight", type=int, default=16, dest="max_weight")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--epsilon", type=float, default=0.5)
    build.add_argument("--grid", action="store_true", help="use a grid workload")
    build.add_argument(
        "--shards", type=int, default=0,
        help="write this many memory-mappable row shards plus a manifest "
             "instead of one monolithic .npz (0 = monolithic)",
    )
    build.add_argument(
        "--jobs", type=int, default=None,
        help="build with this many worker processes (row-slab parallel, "
             "exact distances, bit-identical at any job count); default: "
             "classic single-process simulated-clique build",
    )
    build.add_argument(
        "--kernel", choices=KERNEL_NAMES, default="auto",
        help="pin the min-plus kernel tier for the classic build's matrix "
             "products (default: cost-model auto-selection)",
    )
    build.add_argument(
        "--verbose", action="store_true",
        help="also print per-phase wall-clock timings and worker count",
    )
    build.set_defaults(func=cmd_oracle_build, weighted=True)

    strategies = oracle_sub.add_parser(
        "strategies",
        help="list registered oracle strategies with guarantees and "
             "size estimates",
    )
    strategies.add_argument("--n", type=int, default=1024,
                            help="graph size the size estimates assume")
    strategies.add_argument("--degree", type=float, default=8.0,
                            help="average degree the size estimates assume")
    strategies.add_argument("--epsilon", type=float, default=0.5)
    strategies.add_argument("--max-weight", type=float, default=16,
                            dest="max_weight")
    strategies.set_defaults(func=cmd_oracle_strategies)

    shard = oracle_sub.add_parser(
        "shard", help="re-shard an existing artifact into memory-mappable "
                      "row shards",
    )
    shard.add_argument("source",
                       help="existing artifact (.npz payload, base path, or "
                            ".shards.json manifest)")
    shard.add_argument("artifact", help="output base path for the sharded copy")
    shard.add_argument("--shards", type=int, default=8,
                       help="number of row shards to write")
    shard.set_defaults(func=cmd_oracle_shard)

    query = oracle_sub.add_parser("query", help="answer queries from a saved artifact")
    query.add_argument("artifact", help="artifact path written by 'oracle build'")
    query.add_argument("--pairs", help="comma-separated u:v pairs, e.g. 0:5,3:7")
    query.add_argument("--k-nearest", dest="k_nearest", help="node:k, e.g. 0:5")
    query.add_argument("--stats", action="store_true", help="print engine statistics")
    query.set_defaults(func=cmd_oracle_query)

    bench = oracle_sub.add_parser("bench", help="measure query throughput and latency")
    bench.add_argument("artifact", help="artifact path written by 'oracle build'")
    bench.add_argument("--queries", type=int, default=20000)
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=cmd_oracle_bench)

    def _add_serving_options(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "artifacts", nargs="+",
            help="artifact files, directories to scan, or manifest JSONs",
        )
        sub_parser.add_argument(
            "--capacity", type=int, default=4,
            help="max engines resident at once (LRU-evicted beyond)",
        )
        sub_parser.add_argument(
            "--window-ms", type=str, default="1.0", dest="window_ms",
            help="coalescing window in milliseconds (0 disables coalescing; "
                 "'auto' sizes it from the observed arrival rate)",
        )
        sub_parser.add_argument("--max-batch", type=int, default=1024,
                                dest="max_batch", help="max keys per engine gather")
        sub_parser.add_argument("--queue-capacity", type=int, default=8192,
                                dest="queue_capacity",
                                help="max requests in flight before backpressure")
        sub_parser.add_argument("--policy", choices=("shed", "wait"),
                                default="shed", help="overload policy")
        sub_parser.add_argument(
            "--stretch", type=float, default=math.inf,
            help="multiplicative stretch budget each request carries",
        )
        sub_parser.add_argument(
            "--additive", type=float, default=math.inf,
            help="additive stretch budget each request carries",
        )
        sub_parser.add_argument("--zipf", type=float, default=1.0,
                                help="Zipf skew of the sampled query pairs")
        sub_parser.add_argument("--seed", type=int, default=0)

    plan = sub.add_parser(
        "plan",
        help="plan a stretch-budget artifact fleet from the strategy "
             "registry; --out builds it into a bootable manifest",
    )
    plan.add_argument(
        "--budget", action="append", default=None,
        help="repeatable stretch budget 'mult' or 'mult+add' "
             "(default: 3, 4.5, inf)",
    )
    plan.add_argument("--graph", help="edge-list file to plan for (instead of --n)")
    plan.add_argument("--n", type=int, default=96, help="number of nodes")
    plan.add_argument("--degree", type=float, default=8.0, help="average degree")
    plan.add_argument("--max-weight", type=int, default=16, dest="max_weight")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--epsilon", type=float, default=0.5)
    plan.add_argument("--grid", action="store_true", help="use a grid workload")
    plan.add_argument(
        "--max-query-cost", type=float, default=math.inf,
        dest="max_query_cost",
        help="reject strategies whose per-query work (in table-lookup "
             "units) exceeds this",
    )
    plan.add_argument(
        "--max-resident-mb", type=float, default=math.inf,
        dest="max_resident_mb",
        help="reject strategies whose estimated serving resident set "
             "exceeds this many MB",
    )
    plan.add_argument(
        "--shard-target-mb", type=float, default=4.0,
        dest="shard_target_mb",
        help="artifacts above this estimated size are built sharded, "
             "about this many MB per shard",
    )
    plan.add_argument("--out", help="build the planned fleet into this "
                                    "directory and pin fleet.json")
    plan.add_argument(
        "--jobs", type=int, default=None,
        help="build with this many worker processes (as in oracle build)",
    )
    plan.set_defaults(func=cmd_plan, weighted=True)

    serve = sub.add_parser(
        "serve",
        help="serve one or more oracle artifacts with coalescing and routing",
    )
    _add_serving_options(serve)
    serve.add_argument("--queries", type=int, default=2000,
                       help="self-test queries driven through the server")
    serve.add_argument("--concurrency", type=int, default=64)
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="closed/open-loop load generation against an in-process server",
    )
    _add_serving_options(loadgen)
    loadgen.add_argument("--mode", choices=("closed", "open"), default="closed")
    loadgen.add_argument("--queries", type=int, default=10000)
    loadgen.add_argument("--concurrency", type=int, default=64,
                         help="workers for --mode closed")
    loadgen.add_argument("--qps", type=float, default=5000.0,
                         help="target arrival rate for --mode open")
    loadgen.add_argument("--verify", action="store_true",
                         help="replay answered pairs through a direct engine "
                              "and count mismatches (non-zero exit on any)")
    loadgen.add_argument("--report-residency", action="store_true",
                         dest="report_residency",
                         help="include shard-fault counts and mapped-vs-"
                              "resident bytes in the report")
    loadgen.add_argument("--json-out", dest="json_out",
                         help="write the JSON report to this path")
    loadgen.add_argument("--raw-jsonl", dest="raw_jsonl",
                         help="append per-request raw samples (timestamp, "
                              "client, latency, status) to this JSONL file; "
                              "merge files back with LoadReport.from_jsonl")
    loadgen.add_argument(
        "--stretch-mix", dest="stretch_mix",
        help="mixed-fidelity workload: comma list of 'mult[+add]:weight' "
             "request budgets, e.g. '3:1,4.5:2,inf:1'; each request "
             "carries a budget sampled by weight (overrides --stretch/"
             "--additive)",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    net = sub.add_parser(
        "net",
        help="network serving tier: worker fleet, front tier, benchmark",
    )
    net_sub = net.add_subparsers(dest="net_command", required=True)

    net_serve = net_sub.add_parser(
        "serve",
        help="spawn N worker processes + a front tier on one address",
    )
    _add_serving_options(net_serve)
    net_serve.add_argument("--workers", type=int, default=2,
                           help="worker processes to spawn")
    net_serve.add_argument("--port", type=int, default=0,
                           help="frontend port (0 picks an ephemeral port)")
    net_serve.add_argument("--host", default="127.0.0.1")
    net_serve.add_argument("--worker-base-port", type=int, default=0,
                           dest="worker_base_port",
                           help="first worker port (0 = ephemeral per worker)")
    net_serve.add_argument("--self-test", type=int, default=0,
                           dest="self_test", metavar="N",
                           help="drive N verified queries through the fleet "
                                "over TCP, then exit")
    net_serve.add_argument("--concurrency", type=int, default=32,
                           help="closed-loop clients for --self-test")
    net_serve.add_argument("--trace-sample", type=float, default=None,
                           dest="trace_sample", metavar="RATE",
                           help="sample this fraction of requests for "
                                "cross-tier tracing (fleet-wide; workers "
                                "inherit the rate through the environment)")
    net_serve.set_defaults(func=cmd_net_serve)

    net_bench = net_sub.add_parser(
        "bench",
        help="cold/warm + concurrency-ladder + failover campaign",
    )
    net_bench.add_argument("--smoke", action="store_true",
                           help="reduced grid; gates only (CI mode)")
    net_bench.add_argument("--workers", type=int, default=2)
    net_bench.add_argument("--n", type=int, default=1024)
    net_bench.add_argument("--shards", type=int, default=8)
    net_bench.add_argument("--queries", type=int, default=None)
    net_bench.add_argument("--failover-queries", type=int, default=None,
                           dest="failover_queries")
    net_bench.add_argument("--batch", type=int, default=256)
    net_bench.add_argument("--seed", type=int, default=0)
    net_bench.add_argument("--out", default=None,
                           help="summary JSON path (default BENCH_PR6.json "
                                "on full runs)")
    net_bench.add_argument("--raw-dir", default=None, dest="raw_dir",
                           help="keep raw JSONL samples in this directory")
    net_bench.set_defaults(func=cmd_net_bench)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault injection: plan, corrupt, run",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_plan = chaos_sub.add_parser(
        "plan", help="print an example plan or validate one")
    chaos_plan.add_argument("plan", nargs="?", default=None,
                            help="plan JSON, a path, or @path")
    chaos_plan.add_argument("--example", action="store_true",
                            help="print the documented example plan")
    chaos_plan.set_defaults(func=cmd_chaos_plan)

    chaos_corrupt = chaos_sub.add_parser(
        "corrupt", help="apply a plan's corrupt_shard faults to an artifact")
    chaos_corrupt.add_argument("artifact",
                               help="sharded artifact (base path, .npz, or "
                                    ".shards.json)")
    chaos_corrupt.add_argument("plan", nargs="?", default=None,
                               help="plan JSON, a path, or @path")
    chaos_corrupt.add_argument("--restore", action="store_true",
                               help="restore every shard from its "
                                    ".chaos-bak sidecar instead")
    chaos_corrupt.add_argument("--no-backup", action="store_true",
                               dest="no_backup",
                               help="corrupt without writing backup "
                                    "sidecars")
    chaos_corrupt.set_defaults(func=cmd_chaos_corrupt)

    chaos_run = chaos_sub.add_parser(
        "run", help="net serve with a fault plan active fleet-wide")
    chaos_run.add_argument("--plan", required=True,
                           help="plan JSON, a path, or @path")
    _add_serving_options(chaos_run)
    chaos_run.add_argument("--workers", type=int, default=2)
    chaos_run.add_argument("--port", type=int, default=0)
    chaos_run.add_argument("--host", default="127.0.0.1")
    chaos_run.add_argument("--worker-base-port", type=int, default=0,
                           dest="worker_base_port")
    chaos_run.add_argument("--self-test", type=int, default=0,
                           dest="self_test", metavar="N",
                           help="drive N verified queries through the "
                                "faulted fleet, then exit")
    chaos_run.add_argument("--concurrency", type=int, default=32)
    chaos_run.add_argument("--trace-sample", type=float, default=None,
                           dest="trace_sample", metavar="RATE")
    chaos_run.set_defaults(func=cmd_chaos_run)

    obs = sub.add_parser(
        "obs",
        help="scrape and summarise a live /metricsz endpoint",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _add_obs_target(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--port", type=int, required=True,
                                help="worker or frontend port (a frontend "
                                     "answers with the merged fleet view)")
        sub_parser.add_argument("--timeout", type=float, default=5.0)
        sub_parser.set_defaults(func=cmd_obs)

    obs_snapshot = obs_sub.add_parser(
        "snapshot", help="full metric catalogue, grouped by kind")
    _add_obs_target(obs_snapshot)

    obs_top = obs_sub.add_parser(
        "top", help="largest counter/gauge series, value-descending")
    _add_obs_target(obs_top)
    obs_top.add_argument("--limit", type=int, default=20)

    obs_export = obs_sub.add_parser(
        "export", help="write the snapshot to a file (JSON or Prometheus "
                       "text)")
    _add_obs_target(obs_export)
    obs_export.add_argument("--format", choices=("json", "prom"),
                            default="json")
    obs_export.add_argument("--out", default=None,
                            help="output path (default: stdout)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
