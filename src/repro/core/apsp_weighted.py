"""Weighted APSP approximations (Sections 6.1 and 6.2, Theorem 28).

Two variants are provided through one entry point:

* ``variant="three_plus_eps"`` — the simple (3 + ε)-approximation of
  Section 6.1: exact distances inside each node's √n-nearest ball, a
  hitting set ``A`` of those balls, (1 + ε)-approximate MSSP from ``A``, and
  the estimate ``d(u, p(u)) + d(p(u), v)`` for far pairs.
* ``variant="two_plus_eps"`` (default) — the refined
  (2 + ε, (1 + ε)W)-approximation of Section 6.2 (Theorem 28), which adds
  the distance-through-sets step over ``N_k(u) ∩ N_k(v)`` and uses the
  better of the two pivot routes, so the multiplicative stretch drops to
  2 + ε at the cost of an additive (1 + ε)·W term, ``W`` being the heaviest
  edge on the shortest path.

Both run in ``O(log² n / ε)`` rounds.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.mssp import mssp
from repro.core.results import APSPResult
from repro.distance.hitting_set import greedy_hitting_set
from repro.distance.k_nearest import k_nearest
from repro.distance.through_sets import distance_through_sets
from repro.graphs.graph import Graph
from repro.hopsets.construction import build_hopset


def apsp_weighted(
    graph: Graph,
    epsilon: float = 0.5,
    variant: str = "two_plus_eps",
    k: Optional[int] = None,
    clique: Optional[Clique] = None,
    execution: str = "fast",
    early_stop: bool = True,
    label: str = "apsp-weighted",
) -> APSPResult:
    """Approximate weighted APSP (Theorem 28 / Section 6.1).

    Parameters
    ----------
    graph:
        Undirected graph with non-negative integer weights.
    epsilon:
        Stretch parameter ε.
    variant:
        ``"two_plus_eps"`` (Theorem 28) or ``"three_plus_eps"``
        (Section 6.1).
    k:
        Ball size for the k-nearest step; defaults to ``ceil(sqrt(n))``.
    """
    if graph.directed:
        raise ValueError("APSP approximation requires an undirected graph")
    if variant not in ("two_plus_eps", "three_plus_eps"):
        raise ValueError(f"unknown variant: {variant!r}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    n = graph.n
    clique = clique or Clique(n)
    if k is None:
        k = max(2, min(n, math.ceil(math.sqrt(n))))
    start_rounds = clique.rounds

    estimates = np.full((n, n), np.inf)
    np.fill_diagonal(estimates, 0.0)

    with clique.phase(label):
        # Line (1): edge weights are the initial estimates.
        for u, v, w in graph.edges():
            if w < estimates[u, v]:
                estimates[u, v] = w
                estimates[v, u] = w

        # Line (2): exact distances to the k nearest nodes.
        knn = k_nearest(graph, k, clique=clique, execution=execution, label="k-nearest")
        for v in range(n):
            for u, (dist, _hops) in knn.neighbors[v].items():
                if dist < estimates[v, u]:
                    estimates[v, u] = dist
                    estimates[u, v] = dist

        # Line (3): distances through N_k(u) ∩ N_k(v) (Theorem 20), only in
        # the refined variant.
        if variant == "two_plus_eps":
            node_sets = [
                {u: (dist, dist) for u, (dist, _hops) in knn.neighbors[v].items()}
                for v in range(n)
            ]
            through = distance_through_sets(
                n, node_sets, clique=clique, execution=execution, label="through-balls"
            )
            for v in range(n):
                for u, value in through.estimates[v].items():
                    if value < estimates[v, u]:
                        estimates[v, u] = value
                        estimates[u, v] = min(estimates[u, v], value)

        # Line (4): hitting set A of the k-nearest balls.
        ball_sets = [knn.nearest_set(v) for v in range(n)]
        hitting_set = greedy_hitting_set(ball_sets, n, clique=clique, label="hitting-set")
        clique.charge_broadcast(label="hitting-set-announce")

        # Line (5): (1 + ε)-approximate MSSP from A.
        hopset = build_hopset(
            graph,
            epsilon=epsilon,
            clique=clique,
            execution=execution,
            early_stop=early_stop,
            label="hopset",
        )
        landmarks = mssp(
            graph,
            hitting_set,
            epsilon=epsilon,
            clique=clique,
            hopset=hopset,
            execution=execution,
            early_stop=early_stop,
            label="mssp-from-A",
        )
        landmark_index = {s: i for i, s in enumerate(landmarks.sources)}
        for v in range(n):
            for s in landmarks.sources:
                value = landmarks.distances[v, landmark_index[s]]
                if value < estimates[v, s]:
                    estimates[v, s] = value
                    estimates[s, v] = min(estimates[s, v], value)

        # Line (6): pivots p(v) = closest A-node inside N_k(v); exact
        # distances to them are known from the k-nearest step.
        hitting = set(hitting_set)
        pivots, pivot_dist = _pivots_from_balls(knn, hitting, n)
        clique.charge_broadcast(label="pivot-announce")

        # Line (7): route far pairs through the better of the two pivots.
        pivot_to_all = np.full((n, n), np.inf)
        for v in range(n):
            p = pivots[v]
            if p < 0:
                continue
            index = landmark_index.get(p)
            if index is None:
                continue
            # d(v, p(v)) exactly, plus the (1+ε)-approximate d(p(v), u).
            pivot_to_all[v, :] = pivot_dist[v] + landmarks.distances[:, index]
        # Exchanging the two candidate values is one routed message per pair,
        # i.e. per-node load n: one routing step.
        clique.charge_routing(n, n, 2, label="pivot-exchange")
        combined = np.minimum(pivot_to_all, pivot_to_all.T)
        estimates = np.minimum(estimates, combined)

    estimates = np.minimum(estimates, estimates.T)
    np.fill_diagonal(estimates, 0.0)

    approx = "2+eps,(1+eps)W" if variant == "two_plus_eps" else "3+eps"
    return APSPResult(
        estimates=estimates,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        approximation_label=approx,
        details={
            "epsilon": epsilon,
            "k": k,
            "hitting_set_size": len(hitting_set),
            "variant": variant,
            "predicted_rounds": math.log2(max(2, n)) ** 2 / epsilon,
        },
    )


def _pivots_from_balls(knn, hitting, n) -> Tuple[list, list]:
    """Closest hitting-set node within each node's k-nearest ball."""
    pivots = [-1] * n
    pivot_dist = [math.inf] * n
    for v in range(n):
        if v in hitting:
            pivots[v] = v
            pivot_dist[v] = 0.0
            continue
        best_key = None
        for u, (dist, hops) in knn.neighbors[v].items():
            if u not in hitting:
                continue
            key = (dist, hops, u)
            if best_key is None or key < best_key:
                best_key = key
                pivots[v] = u
                pivot_dist[v] = dist
    return pivots, pivot_dist
