"""Theorem 3: (1 + ε)-approximate multi-source shortest paths.

Given a source set ``S``, every node learns a (1 + ε)-approximation of its
distance to every source in

    O((|S|^{2/3} / n^{1/3} + log n) · log n / ε)   rounds,

which is polylogarithmic whenever ``|S| = Õ(√n)``.  The algorithm is a
direct composition of the paper's two main tools: build a (β, ε)-hopset
``H`` (Theorem 25), then run (S, β, |S|)-source detection on ``G ∪ H``
(Theorem 19).  β-hop distances in ``G ∪ H`` are within (1 + ε) of the true
distances, and the source-detection step computes them exactly.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.results import MSSPResult
from repro.distance.products import matrix_from_edges
from repro.distance.source_detection import source_detection
from repro.graphs.graph import Graph
from repro.hopsets.construction import HopsetResult, build_hopset
from repro.semiring.augmented import augmented_semiring_for


def mssp(
    graph: Graph,
    sources: Sequence[int],
    epsilon: float = 0.5,
    clique: Optional[Clique] = None,
    hopset: Optional[HopsetResult] = None,
    execution: str = "fast",
    early_stop: bool = True,
    label: str = "mssp",
    kernel: Optional[str] = None,
) -> MSSPResult:
    """(1 + ε)-approximate distances from every node to every source.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    sources:
        The source set ``S``; the round bound is polylogarithmic for
        ``|S| = Õ(√n)`` but the algorithm works for any size.
    epsilon:
        Stretch parameter.
    hopset:
        A previously built hopset to reuse (its ε must be at most
        ``epsilon``); if omitted one is built and its rounds are charged.
    early_stop:
        Stop hop iterations once the distance tables stabilise (see
        :func:`repro.distance.source_detection.source_detection`).
    kernel:
        Pin the local-product kernel for the source-detection products;
        ``None`` lets the cost model choose.
    """
    if graph.directed:
        raise ValueError("MSSP requires an undirected graph")
    if not sources:
        raise ValueError("source set must be non-empty")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    n = graph.n
    clique = clique or Clique(n)
    source_list = sorted(set(sources))
    start_rounds = clique.rounds

    with clique.phase(label):
        if hopset is None:
            hopset = build_hopset(
                graph,
                epsilon=epsilon,
                clique=clique,
                execution=execution,
                early_stop=early_stop,
                label="hopset",
            )
        elif hopset.epsilon > epsilon + 1e-12:
            raise ValueError(
                f"supplied hopset has epsilon={hopset.epsilon}, larger than "
                f"the requested {epsilon}"
            )

        # Build the augmented weight matrix of G ∪ H and run source detection
        # with hop bound β.
        union_edges = {}
        for u, v, w in graph.edges():
            union_edges[(u, v)] = min(union_edges.get((u, v), math.inf), float(w))
            union_edges[(v, u)] = min(union_edges.get((v, u), math.inf), float(w))
        for u, v, w in hopset.edges:
            union_edges[(u, v)] = min(union_edges.get((u, v), math.inf), float(w))
            union_edges[(v, u)] = min(union_edges.get((v, u), math.inf), float(w))

        semiring = augmented_semiring_for(n, max(1.0, graph.max_weight()) * n)
        W_union = matrix_from_edges(n, union_edges, semiring)

        detection = source_detection(
            W_union,
            sources=source_list,
            d=hopset.beta,
            k=None,
            clique=clique,
            semiring=semiring,
            execution=execution,
            early_stop=early_stop,
            label="source-detection",
            kernel=kernel,
        )

    distances = np.full((n, len(source_list)), np.inf)
    for v in range(n):
        for index, s in enumerate(source_list):
            entry = detection.distances[v].get(s)
            if entry is not None:
                distances[v, index] = entry[0]

    return MSSPResult(
        sources=source_list,
        distances=distances,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        details={
            "epsilon": epsilon,
            "beta": hopset.beta,
            "hopset_edges": hopset.size(),
            "predicted_rounds": (
                len(source_list) ** (2 / 3) / max(1.0, n ** (1 / 3))
                + math.log2(max(2, n))
            )
            * math.log2(max(2, n))
            / epsilon,
        },
    )
