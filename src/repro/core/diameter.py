"""Near-3/2 diameter approximation (Section 7.2, Claim 35).

The algorithm is the Roditty–Vassilevska Williams / Aingworth et al. scheme
implemented with the paper's distance tools:

1. every node learns exact distances to its ``k ≈ √n`` nearest nodes;
2. a hitting set ``S`` of those balls is computed;
3. (1 + ε)-approximate distances from ``S`` to everyone (MSSP);
4. ``w`` is the node whose ball pivot is farthest (``d(w, p(w))`` maximal);
5. (1 + ε)-approximate distances from ``N_k(w)`` to everyone (MSSP);
6. the estimate is the largest distance seen in steps 3 and 5.

For a graph of diameter ``D = 3h + z`` (``z ∈ {0, 1, 2}``) the estimate
``D'`` satisfies ``2h + z <= D' <= (1 + ε) D`` (``2h + 1`` for ``z = 2``);
for weighted graphs the lower bound weakens by the maximum edge weight
(remark after Claim 35).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.mssp import mssp
from repro.core.results import DiameterResult
from repro.distance.hitting_set import greedy_hitting_set
from repro.distance.k_nearest import k_nearest
from repro.graphs.graph import Graph
from repro.hopsets.construction import build_hopset


def approximate_diameter(
    graph: Graph,
    epsilon: float = 0.5,
    k: Optional[int] = None,
    clique: Optional[Clique] = None,
    execution: str = "fast",
    early_stop: bool = True,
    label: str = "diameter",
) -> DiameterResult:
    """Estimate the diameter within (roughly) a 3/2 factor (Claim 35)."""
    if graph.directed:
        raise ValueError("diameter approximation requires an undirected graph")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    n = graph.n
    clique = clique or Clique(n)
    if k is None:
        k = max(2, min(n, math.ceil(math.sqrt(n) * max(1.0, math.log2(max(2, n))))))
    start_rounds = clique.rounds

    with clique.phase(label):
        # Step 1: k-nearest balls.
        knn = k_nearest(graph, k, clique=clique, execution=execution, label="k-nearest")

        # Step 2: hitting set S of the balls.
        ball_sets = [knn.nearest_set(v) for v in range(n)]
        hitting_set = greedy_hitting_set(ball_sets, n, clique=clique, label="hitting-set")
        clique.charge_broadcast(label="hitting-set-announce")

        # Step 3: MSSP from S.  The hopset is built once and reused by the
        # second MSSP call.
        hopset = build_hopset(
            graph,
            epsilon=epsilon,
            clique=clique,
            execution=execution,
            early_stop=early_stop,
            label="hopset",
        )
        from_hitting = mssp(
            graph,
            hitting_set,
            epsilon=epsilon,
            clique=clique,
            hopset=hopset,
            execution=execution,
            early_stop=early_stop,
            label="mssp-from-S",
        )

        # Step 4: the node w with the farthest ball pivot.
        hitting = set(hitting_set)
        farthest_pivot_distance = np.zeros(n)
        for v in range(n):
            if v in hitting:
                continue
            best = math.inf
            for u, (dist, _hops) in knn.neighbors[v].items():
                if u in hitting and dist < best:
                    best = dist
            if best != math.inf:
                farthest_pivot_distance[v] = best
        clique.charge_broadcast(label="pivot-distance-announce")
        w = int(np.argmax(farthest_pivot_distance))

        # Step 5: MSSP from N_k(w) ∪ {w}.
        ball_of_w = sorted(set(knn.nearest_set(w)) | {w})
        from_ball = mssp(
            graph,
            ball_of_w,
            epsilon=epsilon,
            clique=clique,
            hopset=hopset,
            execution=execution,
            early_stop=early_stop,
            label="mssp-from-ball",
        )

        # Step 6: the estimate is the maximum finite distance seen.
        candidates = []
        finite_hitting = from_hitting.distances[np.isfinite(from_hitting.distances)]
        finite_ball = from_ball.distances[np.isfinite(from_ball.distances)]
        if finite_hitting.size:
            candidates.append(float(finite_hitting.max()))
        if finite_ball.size:
            candidates.append(float(finite_ball.max()))
        clique.charge_broadcast(label="estimate-aggregation")
        estimate = max(candidates) if candidates else 0.0

    return DiameterResult(
        estimate=estimate,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        details={
            "epsilon": epsilon,
            "k": k,
            "hitting_set_size": len(hitting_set),
            "witness_node": w,
            "predicted_rounds": math.log2(max(2, n)) ** 2 / epsilon,
        },
    )
