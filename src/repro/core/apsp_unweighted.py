"""(2 + ε)-approximate unweighted APSP (Section 6.3, Theorems 2 and 31).

The algorithm treats two kinds of shortest paths separately:

* **Paths through a high-degree node** (degree ≥ k ≈ √n).  A hitting set
  ``A`` of the high-degree neighbourhoods is computed; any such path passes
  within one hop of ``A``, so (1 + ε)-approximate MSSP from ``A`` plus a
  distance-through-``A`` combination step already gives a
  (2 + ε)-approximation for these pairs.

* **Paths containing only low-degree nodes.**  These live in the induced
  subgraph ``G'`` whose maximum degree is < k, i.e. ``G'`` is sparse.  On
  ``G'`` the algorithm repeats the weighted-APSP recipe with a *smaller*
  ball size k' ≈ n^{1/4} (made affordable by the sparsity), and closes the
  one remaining gap — a shortest path of the form
  ``u ⇝ u' − v' ⇝ v`` with ``u' ∈ N_{k'}(u)``, ``v' ∈ N_{k'}(v)`` and
  ``{u', v'}`` an edge of ``G'`` — with a product of three sparse matrices
  (Line 11).

The final estimate for every pair is the minimum over all phases, which
Lemma 30 shows is at most ``(2 + ε) · d_G(u, v)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.mssp import mssp
from repro.core.results import APSPResult
from repro.distance.hitting_set import greedy_hitting_set
from repro.distance.k_nearest import k_nearest
from repro.distance.through_sets import distance_through_sets
from repro.graphs.graph import Graph
from repro.hopsets.construction import build_hopset
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.output_sensitive import output_sensitive_mm
from repro.semiring.minplus import MIN_PLUS


def apsp_unweighted(
    graph: Graph,
    epsilon: float = 0.5,
    k: Optional[int] = None,
    k_prime: Optional[int] = None,
    clique: Optional[Clique] = None,
    execution: str = "fast",
    early_stop: bool = True,
    label: str = "apsp-unweighted",
) -> APSPResult:
    """(2 + ε)-approximate APSP for unweighted undirected graphs.

    Parameters
    ----------
    graph:
        Unweighted undirected graph (every edge weight must be 1).
    epsilon:
        Stretch parameter ε.
    k:
        High-degree threshold (default ``ceil(sqrt(n))``).
    k_prime:
        Ball size in the low-degree phase (default ``ceil(n^{1/4})``).
    """
    if graph.directed:
        raise ValueError("APSP approximation requires an undirected graph")
    if not graph.is_unweighted():
        raise ValueError("apsp_unweighted requires an unweighted graph")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    n = graph.n
    clique = clique or Clique(n)
    if k is None:
        k = max(2, min(n, math.ceil(math.sqrt(n))))
    if k_prime is None:
        k_prime = max(2, min(n, math.ceil(n ** 0.25)))
    start_rounds = clique.rounds

    estimates = np.full((n, n), np.inf)
    np.fill_diagonal(estimates, 0.0)

    with clique.phase(label):
        # Line (1): edges.
        for u, v, _w in graph.edges():
            estimates[u, v] = 1.0
            estimates[v, u] = 1.0

        # ------------------------------------------------------------------
        # First phase: shortest paths containing a high-degree node.
        # ------------------------------------------------------------------
        high_degree = [v for v in range(n) if graph.degree(v) + 1 >= k]
        hitting_a: List[int] = []
        if high_degree:
            neighbourhoods = [
                sorted(set(graph.neighbors(v)) | {v}) if v in set(high_degree) else []
                for v in range(n)
            ]
            hitting_a = greedy_hitting_set(
                neighbourhoods, n, clique=clique, label="high-degree-hitting-set"
            )
            clique.charge_broadcast(label="hitting-set-announce")

            hopset = build_hopset(
                graph,
                epsilon=epsilon,
                clique=clique,
                execution=execution,
                early_stop=early_stop,
                label="hopset-G",
            )
            landmarks = mssp(
                graph,
                hitting_a,
                epsilon=epsilon,
                clique=clique,
                hopset=hopset,
                execution=execution,
                early_stop=early_stop,
                label="mssp-from-A",
            )
            # Line (4): distances through A for every pair.
            index_of = {s: i for i, s in enumerate(landmarks.sources)}
            node_sets = []
            for v in range(n):
                members = {}
                for s in landmarks.sources:
                    value = landmarks.distances[v, index_of[s]]
                    if np.isfinite(value):
                        members[s] = (float(value), float(value))
                node_sets.append(members)
            through_a = distance_through_sets(
                n, node_sets, clique=clique, execution=execution, label="through-A"
            )
            for v in range(n):
                for u, value in through_a.estimates[v].items():
                    if value < estimates[v, u]:
                        estimates[v, u] = value
                        estimates[u, v] = min(estimates[u, v], value)
            for v in range(n):
                for i, s in enumerate(landmarks.sources):
                    value = landmarks.distances[v, i]
                    if value < estimates[v, s]:
                        estimates[v, s] = value
                        estimates[s, v] = min(estimates[s, v], value)

        # ------------------------------------------------------------------
        # Second phase: shortest paths with only low-degree nodes.
        # ------------------------------------------------------------------
        low_graph, low_ids = graph.restrict_to_low_degree(k)
        details_low: Dict[str, float] = {"low_degree_nodes": float(len(low_ids))}
        if len(low_ids) >= 2 and low_graph.num_edges() > 0:
            _low_degree_phase(
                low_graph,
                low_ids,
                estimates,
                epsilon,
                k_prime,
                clique,
                execution,
                early_stop,
            )

    estimates = np.minimum(estimates, estimates.T)
    np.fill_diagonal(estimates, 0.0)

    return APSPResult(
        estimates=estimates,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        approximation_label="2+eps",
        details={
            "epsilon": epsilon,
            "k": k,
            "k_prime": k_prime,
            "high_degree_nodes": len(high_degree),
            "hitting_set_size": len(hitting_a),
            **details_low,
            "predicted_rounds": math.log2(max(2, n)) ** 2 / epsilon,
        },
    )


def _low_degree_phase(
    low_graph: Graph,
    low_ids: List[int],
    estimates: np.ndarray,
    epsilon: float,
    k_prime: int,
    clique: Clique,
    execution: str,
    early_stop: bool,
) -> None:
    """Lines (5)-(12): the low-degree subgraph phase.

    All distances computed here are distances in ``G'``, which upper-bound
    distances in ``G``; Lemma 30 shows that for pairs whose shortest path
    stays in ``G'`` they are within the (2 + ε) guarantee.  Estimates are
    written back into the global matrix through the ``low_ids`` relabelling.
    """
    m = low_graph.n

    def write(u_local: int, v_local: int, value: float) -> None:
        u, v = low_ids[u_local], low_ids[v_local]
        if value < estimates[u, v]:
            estimates[u, v] = value
            estimates[v, u] = min(estimates[v, u], value)

    # Line (5): k'-nearest balls in G'.
    knn = k_nearest(
        low_graph, k_prime, clique=clique, execution=execution, label="low/k-nearest"
    )
    for v in range(m):
        for u, (dist, _hops) in knn.neighbors[v].items():
            write(v, u, dist)

    # Line (6): distances through N_{k'}(u) ∩ N_{k'}(v).
    node_sets = [
        {u: (dist, dist) for u, (dist, _hops) in knn.neighbors[v].items()}
        for v in range(m)
    ]
    through = distance_through_sets(
        m, node_sets, clique=clique, execution=execution, label="low/through-balls"
    )
    for v in range(m):
        for u, value in through.estimates[v].items():
            write(v, u, value)

    # Line (7): hitting set A' of the k'-nearest balls.
    ball_sets = [knn.nearest_set(v) for v in range(m)]
    hitting_prime = greedy_hitting_set(
        ball_sets, m, clique=clique, label="low/hitting-set"
    )
    clique.charge_broadcast(label="low/hitting-set-announce")
    hitting_set = set(hitting_prime)

    # Line (8): (1 + ε)-approximate MSSP from A' inside G' (hopset on the
    # sparse graph + source detection).
    hopset = build_hopset(
        low_graph,
        epsilon=epsilon,
        clique=clique,
        execution=execution,
        early_stop=early_stop,
        label="low/hopset",
    )
    landmarks = mssp(
        low_graph,
        hitting_prime,
        epsilon=epsilon,
        clique=clique,
        hopset=hopset,
        execution=execution,
        early_stop=early_stop,
        label="low/mssp",
    )
    index_of = {s: i for i, s in enumerate(landmarks.sources)}
    for v in range(m):
        for s in landmarks.sources:
            value = landmarks.distances[v, index_of[s]]
            if np.isfinite(value):
                write(v, s, float(value))

    # Lines (9)-(10): pivots p'(v) and the two pivot routes.
    pivots = [-1] * m
    pivot_dist = [math.inf] * m
    for v in range(m):
        if v in hitting_set:
            pivots[v] = v
            pivot_dist[v] = 0.0
            continue
        best_key = None
        for u, (dist, hops) in knn.neighbors[v].items():
            if u not in hitting_set:
                continue
            key = (dist, hops, u)
            if best_key is None or key < best_key:
                best_key = key
                pivots[v] = u
                pivot_dist[v] = dist
    clique.charge_broadcast(label="low/pivot-announce")
    clique.charge_routing(m, m, 2, label="low/pivot-exchange")
    for v in range(m):
        p = pivots[v]
        if p < 0 or p not in index_of:
            continue
        for u in range(m):
            value = pivot_dist[v] + landmarks.distances[u, index_of[p]]
            if np.isfinite(value):
                write(v, u, float(value))

    # Lines (11)-(12): the three-matrix product M1 · M2 · M3 catching paths
    # u ⇝ u' − v' ⇝ v with u' ∈ N_{k'}(u), v' ∈ N_{k'}(v), {u', v'} ∈ E'.
    M1 = SemiringMatrix(m, MIN_PLUS)
    for v in range(m):
        for u, (dist, _hops) in knn.neighbors[v].items():
            M1.rows[v][u] = float(dist)
    M2 = SemiringMatrix(m, MIN_PLUS)
    for u in range(m):
        for v, w in low_graph.neighbors(u).items():
            M2.rows[u][v] = float(w)
    M3 = M1.transpose()

    first = output_sensitive_mm(
        M1, M2, rho_hat=m, clique=clique, label="low/triple-product-1", execution=execution
    )
    second = output_sensitive_mm(
        first.product, M3, rho_hat=m, clique=clique, label="low/triple-product-2", execution=execution
    )
    for v in range(m):
        for u, value in second.product.rows[v].items():
            write(v, u, float(value))
