"""Result containers for the headline algorithms."""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.cclique.accounting import Clique


@dataclasses.dataclass
class MSSPResult:
    """Multi-source shortest paths output.

    ``distances[v][i]`` is the estimated distance from node ``v`` to
    ``sources[i]``; ``np.inf`` marks unreachable-within-budget pairs.
    """

    sources: List[int]
    distances: np.ndarray
    rounds: float
    clique: Clique
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def distance(self, v: int, source: int) -> float:
        """Estimated distance from ``v`` to ``source``."""
        index = self.sources.index(source)
        return float(self.distances[v, index])


@dataclasses.dataclass
class APSPResult:
    """All-pairs shortest paths output (dense estimate matrix)."""

    estimates: np.ndarray
    rounds: float
    clique: Clique
    approximation_label: str = ""
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def distance(self, u: int, v: int) -> float:
        """Estimated distance between ``u`` and ``v``."""
        return float(self.estimates[u, v])

    def max_stretch(self, exact: Sequence[Sequence[float]]) -> float:
        """Maximum multiplicative stretch against an exact distance matrix."""
        worst = 1.0
        n = self.estimates.shape[0]
        for u in range(n):
            for v in range(n):
                true = exact[u][v]
                if u == v or true == 0 or true == math.inf:
                    continue
                worst = max(worst, float(self.estimates[u, v]) / true)
        return worst


@dataclasses.dataclass
class SSSPResult:
    """Single-source shortest paths output."""

    source: int
    distances: np.ndarray
    rounds: float
    clique: Clique
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def distance(self, v: int) -> float:
        return float(self.distances[v])


@dataclasses.dataclass
class DiameterResult:
    """Diameter approximation output."""

    estimate: float
    rounds: float
    clique: Clique
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)
