"""The paper's headline algorithms.

* :mod:`repro.core.mssp` — Theorem 3: (1 + ε)-approximate multi-source
  shortest paths from up to Õ(√n) sources in polylogarithmic rounds.
* :mod:`repro.core.apsp_weighted` — Section 6.1 / 6.2: (3 + ε)- and
  (2 + ε, (1 + ε)W)-approximate weighted APSP (Theorem 28).
* :mod:`repro.core.apsp_unweighted` — Section 6.3: (2 + ε)-approximate
  unweighted APSP (Theorems 2 and 31).
* :mod:`repro.core.sssp` — Section 7.1: exact weighted SSSP in Õ(n^{1/6})
  rounds (Theorem 33).
* :mod:`repro.core.diameter` — Section 7.2: near-3/2 diameter approximation
  (Claim 35).
"""

from repro.core.results import APSPResult, MSSPResult, SSSPResult, DiameterResult
from repro.core.mssp import mssp
from repro.core.apsp_weighted import apsp_weighted
from repro.core.apsp_unweighted import apsp_unweighted
from repro.core.sssp import exact_sssp
from repro.core.diameter import approximate_diameter

__all__ = [
    "APSPResult",
    "MSSPResult",
    "SSSPResult",
    "DiameterResult",
    "mssp",
    "apsp_weighted",
    "apsp_unweighted",
    "exact_sssp",
    "approximate_diameter",
]
