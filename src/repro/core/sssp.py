"""Exact single-source shortest paths in Õ(n^{1/6}) rounds (Section 7.1).

The algorithm combines the k-nearest tool with the k-shortcut graph of
Nanongkai / Elkin:

1. compute, for every node, exact distances to its k nearest nodes
   (Theorem 18), with ``k = n^{5/6}``;
2. add a shortcut edge ``{v, u}`` of weight ``d(v, u)`` for every such pair,
   producing the shortcut graph ``G'`` whose *shortest-path diameter* is at
   most ``4 n / k`` (Lemma 32, quoted as Theorem 3.10 of [48]);
3. run Bellman-Ford from the source in ``G'``; every iteration is a single
   Congested Clique round (each node broadcasts its current tentative
   distance), and at most ``O(n / k) = O(n^{1/6})`` iterations are needed.

The result is exact; the benchmark compares the measured rounds against the
Õ(n^{1/3}) dense-matrix baseline and the SPD-bounded plain Bellman-Ford.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.results import SSSPResult
from repro.distance.k_nearest import k_nearest
from repro.graphs.graph import Graph, INF


def exact_sssp(
    graph: Graph,
    source: int,
    k: Optional[int] = None,
    clique: Optional[Clique] = None,
    execution: str = "fast",
    label: str = "exact-sssp",
) -> SSSPResult:
    """Exact SSSP from ``source`` via the k-shortcut graph (Theorem 33).

    Parameters
    ----------
    graph:
        Undirected graph with non-negative weights.
    source:
        Source node.
    k:
        Shortcut ball size; defaults to the paper's ``ceil(n^{5/6})``.
    """
    if graph.directed:
        raise ValueError("exact_sssp requires an undirected graph")
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")

    n = graph.n
    clique = clique or Clique(n)
    if k is None:
        k = max(2, min(n, math.ceil(n ** (5 / 6))))
    start_rounds = clique.rounds

    with clique.phase(label):
        # Step 1: k-nearest balls with exact distances.
        knn = k_nearest(graph, k, clique=clique, execution=execution, label="k-nearest")

        # Step 2: the shortcut graph G' = G plus ball edges.  Announcing each
        # shortcut to its other endpoint is one routing step of load k.
        shortcut_graph = graph.copy()
        for v in range(n):
            for u, (dist, _hops) in knn.neighbors[v].items():
                if u != v and dist != INF:
                    shortcut_graph.add_edge(v, u, dist)
        clique.charge_routing(k, k, 2, label="shortcut-edges")

        # Step 3: Bellman-Ford in G'.  One iteration = one round (every node
        # broadcasts its tentative distance; each node relaxes locally).
        distances = np.full(n, np.inf)
        distances[source] = 0.0
        iterations = 0
        max_iterations = n  # safety bound; convergence is much earlier
        while iterations < max_iterations:
            iterations += 1
            clique.charge_broadcast(label="bellman-ford-round")
            updated = distances.copy()
            changed = False
            for u in range(n):
                du = distances[u]
                if not np.isfinite(du):
                    continue
                for v, w in shortcut_graph.neighbors(u).items():
                    nd = du + w
                    if nd < updated[v] - 1e-12:
                        updated[v] = nd
                        changed = True
            distances = updated
            if not changed:
                break

    return SSSPResult(
        source=source,
        distances=distances,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        details={
            "k": k,
            "bellman_ford_iterations": iterations,
            "shortcut_edges": shortcut_graph.num_edges() - graph.num_edges(),
            "predicted_rounds": n ** (1 / 6),
            "spd_bound": 4 * n / k,
        },
    )
