"""The Congested Clique hopset construction (Section 4.2, Theorem 25).

The construction follows Elkin–Neiman (via Thorup–Zwick emulators), with the
paper's two changes: the bunches of the non-A₁ nodes are computed directly
with the k-nearest tool, and the Bellman-Ford explorations of the original
construction are replaced by the (S, d, k)-source-detection tool, which is
what removes the dependence of the running time on the hopset size.

Outline (parameters as in Theorem 25, for a target 0 < ε < 1):

* ``k = Θ(√n log n)``; compute ``N_k(v)`` for every node (Theorem 18).
* ``A₁`` = deterministic hitting set of the ``N_k(v)`` (Lemma 4), of size
  Õ(√n).
* ``p(v)`` = the closest A₁-node in ``N_k(v)``;
  ``B(v) = {u : d(v, u) < d(v, p(v))} ∪ {p(v)}``;
  ``H₀ = {(v, u, d(v, u)) : v ∉ A₁, u ∈ B(v)}``.
* For ``ℓ = 1 .. log n``: run (A₁, 4β, |A₁|)-source detection on
  ``G ∪ H^{ℓ-1}`` and connect every pair of A₁ nodes discovered within 4β
  hops with an edge weighted by the detected distance;
  ``H^ℓ = H₀ ∪ (those A₁-A₁ edges)``.
* ``H = H^{log n}`` is a (β, ε)-hopset with ``β = O(log n / ε)``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cclique.accounting import Clique
from repro.distance.hitting_set import greedy_hitting_set
from repro.distance.k_nearest import KNearestResult, k_nearest
from repro.distance.products import matrix_from_edges
from repro.graphs.graph import Graph
from repro.semiring.augmented import augmented_semiring_for


@dataclasses.dataclass
class HopsetResult:
    """Output of the hopset construction.

    Attributes
    ----------
    edges:
        The hopset edges as ``(u, v, weight)`` (undirected; each pair once).
    beta:
        The hop bound β for which the (β, ε) guarantee holds.
    epsilon:
        The stretch parameter the construction targeted.
    hitting_set:
        The set A₁ of "landmark" nodes.
    pivots:
        ``pivots[v]`` = ``p(v)``, the closest A₁ node of ``v`` (A₁ nodes are
        their own pivot).
    pivot_distances:
        ``pivot_distances[v]`` = exact ``d(v, p(v))``.
    k:
        The k used for the k-nearest bunches.
    rounds:
        Rounds charged for the construction.
    clique:
        Accounting context used.
    levels:
        Number of bounded-hopset levels executed.
    """

    edges: List[Tuple[int, int, float]]
    beta: int
    epsilon: float
    hitting_set: List[int]
    pivots: List[int]
    pivot_distances: List[float]
    k: int
    rounds: float
    clique: Clique
    levels: int
    k_nearest_result: Optional[KNearestResult] = None

    def size(self) -> int:
        """Number of hopset edges."""
        return len(self.edges)


def build_hopset(
    graph: Graph,
    epsilon: float = 0.5,
    clique: Optional[Clique] = None,
    k: Optional[int] = None,
    beta: Optional[int] = None,
    levels: Optional[int] = None,
    execution: str = "fast",
    early_stop: bool = True,
    label: str = "hopset",
) -> HopsetResult:
    """Build a (β, ε)-hopset of ``graph`` (Theorem 25).

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    epsilon:
        Target stretch (0 < ε < 1 in the theorem; larger values are allowed
        and simply yield a smaller β).
    k:
        Bunch size; defaults to the paper's ``ceil(sqrt(n) · log2 n)``.
    beta:
        Hop bound; defaults to the paper's ``ceil(12 · log2 n / ε)``
        (δ = ε_level / 4 with ε_level = ε / log n and β = 3 / δ).
    levels:
        Number of bounded-hopset iterations; defaults to ``ceil(log2 n)``.
    execution:
        Execution mode for the underlying matrix multiplications.
    early_stop:
        Stop a level's source-detection hop iterations once the distance
        table stops changing (detecting stabilisation costs one broadcast
        per hop and never changes the result, only the measured rounds,
        which can only become smaller than the worst-case bound).
    """
    if graph.directed:
        raise ValueError("hopset construction requires an undirected graph")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    n = graph.n
    clique = clique or Clique(n)
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    if k is None:
        k = min(n, max(2, math.ceil(math.sqrt(n) * log_n)))
    if beta is None:
        beta = max(3, math.ceil(12 * log_n / epsilon))
    if levels is None:
        levels = log_n

    start_rounds = clique.rounds
    with clique.phase(label):
        # ------------------------------------------------------------------
        # Step 1: k-nearest balls (exact distances) -- Theorem 18.
        # ------------------------------------------------------------------
        knn = k_nearest(graph, k, clique=clique, execution=execution, label="k-nearest")

        # ------------------------------------------------------------------
        # Step 2: hitting set A1 of the k-nearest balls -- Lemma 4.
        # ------------------------------------------------------------------
        ball_sets = [knn.nearest_set(v) for v in range(n)]
        hitting_set = greedy_hitting_set(ball_sets, n, clique=clique, label="hitting-set")
        hitting = set(hitting_set)
        clique.charge_broadcast(label="hitting-set-announce")

        # ------------------------------------------------------------------
        # Step 3: pivots and bunches; H0 edges.
        # ------------------------------------------------------------------
        pivots, pivot_distances = _compute_pivots(knn, hitting, n)
        hopset_edges: Dict[Tuple[int, int], float] = {}
        for v in range(n):
            if v in hitting:
                continue
            pivot_dist = pivot_distances[v]
            for u, (dist, _hops) in knn.neighbors[v].items():
                if u == v:
                    continue
                if dist < pivot_dist or u == pivots[v]:
                    _add_edge(hopset_edges, v, u, dist)
        # Announcing the bunch edges to both endpoints is one routing step
        # with per-node load at most k.
        clique.charge_routing(k, k, 2, label="bunch-edges")

        # ------------------------------------------------------------------
        # Step 4: levelled construction of the A1-A1 edges.
        # ------------------------------------------------------------------
        semiring = augmented_semiring_for(n, max(1.0, graph.max_weight()) * n)
        executed_levels = 0
        a1_edges: Dict[Tuple[int, int], float] = {}
        for _ in range(levels):
            executed_levels += 1
            union_edges = _union_edge_dict(graph, hopset_edges, a1_edges)
            W_union = matrix_from_edges(n, union_edges, semiring)
            detection = _bounded_source_detection(
                W_union,
                semiring,
                hitting_set,
                4 * beta,
                clique,
                execution=execution,
                early_stop=early_stop,
            )
            new_a1_edges: Dict[Tuple[int, int], float] = {}
            for v in hitting_set:
                for u, (dist, _hops) in detection[v].items():
                    if u == v or u not in hitting:
                        continue
                    _add_edge(new_a1_edges, v, u, dist)
            a1_edges = new_a1_edges
            # Each A1 node tells the other endpoint about the edge (1 round).
            clique.charge_broadcast(label="level-edge-announce")

        for (u, v), w in a1_edges.items():
            _add_edge(hopset_edges, u, v, w)

    edges = [(u, v, w) for (u, v), w in sorted(hopset_edges.items())]
    return HopsetResult(
        edges=edges,
        beta=beta,
        epsilon=epsilon,
        hitting_set=hitting_set,
        pivots=pivots,
        pivot_distances=pivot_distances,
        k=k,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        levels=executed_levels,
        k_nearest_result=knn,
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _compute_pivots(
    knn: KNearestResult, hitting: Set[int], n: int
) -> Tuple[List[int], List[float]]:
    """For every node, the closest hitting-set node in its k-nearest ball."""
    pivots: List[int] = [-1] * n
    pivot_distances: List[float] = [math.inf] * n
    for v in range(n):
        if v in hitting:
            pivots[v] = v
            pivot_distances[v] = 0.0
            continue
        best_node = -1
        best_key: Optional[Tuple[float, int, int]] = None
        for u, (dist, hops) in knn.neighbors[v].items():
            if u not in hitting:
                continue
            key = (dist, hops, u)
            if best_key is None or key < best_key:
                best_key = key
                best_node = u
        if best_node >= 0:
            pivots[v] = best_node
            pivot_distances[v] = best_key[0]
    return pivots, pivot_distances


def _add_edge(edges: Dict[Tuple[int, int], float], u: int, v: int, w: float) -> None:
    """Insert an undirected edge keeping the minimum weight."""
    key = (u, v) if u < v else (v, u)
    current = edges.get(key)
    if current is None or w < current:
        edges[key] = w


def _union_edge_dict(
    graph: Graph,
    hopset_edges: Dict[Tuple[int, int], float],
    extra_edges: Dict[Tuple[int, int], float],
) -> Dict[Tuple[int, int], float]:
    """Edge dictionary of ``G ∪ H`` (both directions, minimum weights)."""
    union: Dict[Tuple[int, int], float] = {}
    for u, v, w in graph.edges():
        union[(u, v)] = min(union.get((u, v), math.inf), float(w))
        union[(v, u)] = min(union.get((v, u), math.inf), float(w))
    for source in (hopset_edges, extra_edges):
        for (u, v), w in source.items():
            union[(u, v)] = min(union.get((u, v), math.inf), float(w))
            union[(v, u)] = min(union.get((v, u), math.inf), float(w))
    return union


def _bounded_source_detection(
    W_union,
    semiring,
    sources: Sequence[int],
    hop_bound: int,
    clique: Clique,
    execution: str,
    early_stop: bool,
) -> List[Dict[int, Tuple[float, int]]]:
    """(S, d, |S|)-source detection with optional early stabilisation stop."""
    from repro.matmul.output_sensitive import output_sensitive_mm

    n = W_union.n
    source_list = sorted(set(sources))
    current = W_union.restrict_columns(source_list)
    for _ in range(hop_bound):
        result = output_sensitive_mm(
            W_union,
            current,
            rho_hat=max(1, len(source_list)),
            clique=clique,
            label="hopset-source-detection",
            execution=execution,
        )
        updated = result.product.restrict_columns(source_list)
        if early_stop:
            clique.charge_broadcast(label="hopset-source-detection/stability-check")
            if updated.equals(current):
                current = updated
                break
        current = updated

    out: List[Dict[int, Tuple[float, int]]] = []
    for v in range(n):
        out.append({u: (entry[0], int(entry[1])) for u, entry in current.rows[v].items()})
    return out
