"""Hopset validation helpers.

A (β, ε)-hopset must satisfy, for every pair ``u, v``::

    d_G(u, v) <= d_{G∪H}(u, v)            (no shortcuts below true distance)
    d^β_{G∪H}(u, v) <= (1 + ε) d_G(u, v)  (β hops suffice up to 1 + ε)

These helpers build ``G ∪ H`` and check both properties exactly with the
sequential reference algorithms (hop-bounded Bellman-Ford), either for all
pairs or for a deterministic sample of pairs on larger graphs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph, INF
from repro.graphs.reference import dijkstra, hop_bounded_distances


def union_graph(graph: Graph, hopset_edges: Iterable[Tuple[int, int, float]]) -> Graph:
    """Return ``G ∪ H`` as a new graph (minimum weights on clashes)."""
    return graph.union_with_edges(hopset_edges)


def hop_bounded_distance_in_union(
    graph: Graph,
    hopset_edges: Iterable[Tuple[int, int, float]],
    source: int,
    beta: int,
) -> List[float]:
    """``d^β_{G∪H}(source, ·)`` computed exactly."""
    merged = union_graph(graph, hopset_edges)
    return hop_bounded_distances(merged, source, beta)


def verify_hopset_property(
    graph: Graph,
    hopset_edges: Sequence[Tuple[int, int, float]],
    beta: int,
    epsilon: float,
    sources: Optional[Sequence[int]] = None,
) -> Dict[str, float]:
    """Check the (β, ε)-hopset property and report the worst stretches.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    hopset_edges:
        The hopset ``H``.
    beta, epsilon:
        The claimed parameters.
    sources:
        Sources to check from (all nodes by default).

    Returns
    -------
    A dictionary with:
        ``max_hop_stretch``  — max over checked pairs of
        ``d^β_{G∪H}(u, v) / d_G(u, v)``;
        ``max_underestimate`` — max of ``d_G(u, v) / d_{G∪H}(u, v)``
        (should be exactly 1.0: the union never shortcuts);
        ``violations`` — number of pairs exceeding ``1 + epsilon``;
        ``pairs_checked`` — how many pairs were compared.
    """
    merged = union_graph(graph, hopset_edges)
    check_sources = list(sources) if sources is not None else list(range(graph.n))

    max_hop_stretch = 1.0
    max_underestimate = 1.0
    violations = 0
    pairs_checked = 0

    for source in check_sources:
        exact = dijkstra(graph, source)
        union_exact = dijkstra(merged, source)
        bounded = hop_bounded_distances(merged, source, beta)
        for v in range(graph.n):
            if v == source or exact[v] == INF or exact[v] == 0:
                continue
            pairs_checked += 1
            if union_exact[v] < exact[v] - 1e-9:
                max_underestimate = max(max_underestimate, exact[v] / union_exact[v])
            if bounded[v] == INF:
                violations += 1
                max_hop_stretch = math.inf
                continue
            stretch = bounded[v] / exact[v]
            max_hop_stretch = max(max_hop_stretch, stretch)
            if stretch > 1 + epsilon + 1e-9:
                violations += 1

    return {
        "max_hop_stretch": max_hop_stretch,
        "max_underestimate": max_underestimate,
        "violations": float(violations),
        "pairs_checked": float(pairs_checked),
    }
