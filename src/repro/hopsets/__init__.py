"""Hopset construction (Section 4, Theorem 25).

A (β, ε)-hopset ``H`` of a weighted undirected graph ``G`` is a set of
weighted edges such that β-hop-bounded distances in ``G ∪ H`` are
(1 + ε)-approximations of the true distances in ``G``.  The paper builds a
hopset of Õ(n^{3/2}) edges with β = O(log n / ε) in O(log² n / ε) rounds by
implementing the Elkin–Neiman construction with the new distance tools so
that the running time does not depend on the hopset size.
"""

from repro.hopsets.construction import build_hopset, HopsetResult
from repro.hopsets.bounded import (
    verify_hopset_property,
    hop_bounded_distance_in_union,
)

__all__ = [
    "build_hopset",
    "HopsetResult",
    "verify_hopset_property",
    "hop_bounded_distance_in_union",
]
