"""Exposition and scraping for :mod:`repro.obs.metrics` snapshots.

Three consumers share this module:

* the worker's ``GET /metricsz`` route renders its process registry as
  Prometheus text exposition (``text/plain; version=0.0.4``) — or as the
  JSON snapshot when asked with ``?format=json``, which is the mergeable
  form the fleet aggregator consumes;
* the frontend's ``/metricsz`` scrapes every worker's JSON snapshot,
  merges them with :func:`repro.obs.metrics.merge_snapshots`, and renders
  the fleet view with the same renderer;
* the ``repro obs snapshot|top|export`` CLI fetches either form over
  plain HTTP for one-shot human-readable summaries.

Only stdlib is used; the scraper speaks minimal HTTP/1.1 because every
``repro.net`` endpoint already serves an HTTP dialect on its binary port.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Tuple

from .metrics import LatencyRecorder

__all__ = [
    "fetch_snapshot",
    "fetch_text",
    "render_snapshot",
    "render_top",
    "to_prometheus_text",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render without the '.0'."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _join_labels(label_body: str, extra: str = "") -> str:
    parts = [part for part in (label_body, extra) if part]
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot (or a merged fleet snapshot) as
    Prometheus text exposition format 0.0.4."""
    lines: List[str] = []

    for name, family in sorted((snapshot.get("counters") or {}).items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} counter")
        for label, value in sorted(family.get("values", {}).items()):
            lines.append(f"{name}{_join_labels(label)} {_fmt(value)}")

    for name, family in sorted((snapshot.get("gauges") or {}).items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} gauge")
        for label, value in sorted(family.get("values", {}).items()):
            lines.append(f"{name}{_join_labels(label)} {_fmt(value)}")

    for name, family in sorted((snapshot.get("histograms") or {}).items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} histogram")
        edges = list(family.get("buckets", []))
        for label, cell in sorted(family.get("values", {}).items()):
            cumulative = 0
            for edge, count in zip(edges, cell["counts"]):
                cumulative += count
                le = 'le="' + _fmt(edge) + '"'
                lines.append(
                    f"{name}_bucket{_join_labels(label, le)} {cumulative}")
            cumulative += cell["counts"][-1] if len(cell["counts"]) > len(edges) else 0
            inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_join_labels(label, inf)} {cumulative}")
            lines.append(f"{name}_sum{_join_labels(label)} {_fmt(cell['sum'])}")
            lines.append(f"{name}_count{_join_labels(label)} {cell['count']}")

    # Recorders render as Prometheus summaries: the quantiles are computed
    # over the merged sample window at scrape time.
    for name, family in sorted((snapshot.get("recorders") or {}).items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} summary")
        for label, cell in sorted(family.get("values", {}).items()):
            samples = [int(value * 1000.0) for value in cell.get("samples_us", [])]
            recorder = LatencyRecorder(max(1, len(samples)))
            for sample in samples:
                recorder.record(sample)
            for quantile, p in (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)):
                value = recorder.percentile(p)
                if value is None:
                    continue
                q = 'quantile="' + quantile + '"'
                lines.append(
                    f"{name}{_join_labels(label, q)} {_fmt(value)}")
            lines.append(
                f"{name}_count{_join_labels(label)} {int(cell.get('count', 0))}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# scraping
# ----------------------------------------------------------------------
def fetch_text(host: str, port: int, path: str = "/metricsz",
               timeout: float = 5.0) -> str:
    """GET an endpoint's raw body over HTTP (Prometheus text by default)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise ConnectionError(
                f"GET {path} from {host}:{port} returned {response.status}")
        return body.decode("utf-8")
    finally:
        conn.close()


def fetch_snapshot(host: str, port: int, timeout: float = 5.0
                   ) -> Dict[str, Any]:
    """GET the mergeable JSON snapshot from a worker or frontend."""
    return json.loads(
        fetch_text(host, port, "/metricsz?format=json", timeout=timeout))


# ----------------------------------------------------------------------
# human-readable summaries (the `repro obs` CLI)
# ----------------------------------------------------------------------
def _flatten(snapshot: Dict[str, Any]) -> List[Tuple[str, str, float]]:
    rows: List[Tuple[str, str, float]] = []
    for kind in ("counters", "gauges"):
        for name, family in (snapshot.get(kind) or {}).items():
            for label, value in family.get("values", {}).items():
                rows.append((name, label, float(value)))
    return rows


def render_top(snapshot: Dict[str, Any], limit: int = 20) -> str:
    """The largest counter/gauge series, one per line, value-descending."""
    rows = sorted(_flatten(snapshot), key=lambda row: -abs(row[2]))[:limit]
    if not rows:
        return "(no series)"
    width = max(len(f"{name}{_join_labels(label)}") for name, label, _ in rows)
    return "\n".join(
        f"{(name + _join_labels(label)).ljust(width)}  {_fmt(value)}"
        for name, label, value in rows)


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Full catalogue: every series grouped by kind, plus recorder
    percentiles — the `repro obs snapshot` view."""
    sections: List[str] = []
    counters = _flatten({"counters": snapshot.get("counters") or {}})
    gauges = _flatten({"gauges": snapshot.get("gauges") or {}})
    if counters:
        sections.append("counters:")
        sections += [f"  {name}{_join_labels(label)} = {_fmt(value)}"
                     for name, label, value in sorted(counters)]
    if gauges:
        sections.append("gauges:")
        sections += [f"  {name}{_join_labels(label)} = {_fmt(value)}"
                     for name, label, value in sorted(gauges)]
    histograms = snapshot.get("histograms") or {}
    if histograms:
        sections.append("histograms:")
        for name, family in sorted(histograms.items()):
            for label, cell in sorted(family.get("values", {}).items()):
                count = cell.get("count", 0)
                mean = (cell["sum"] / count) if count else 0.0
                sections.append(
                    f"  {name}{_join_labels(label)}: count={count} "
                    f"mean={mean:.1f}")
    recorders = snapshot.get("recorders") or {}
    if recorders:
        sections.append("recorders:")
        for name, family in sorted(recorders.items()):
            for label, cell in sorted(family.get("values", {}).items()):
                samples = [int(v * 1000.0) for v in cell.get("samples_us", [])]
                recorder = LatencyRecorder(max(1, len(samples)))
                for sample in samples:
                    recorder.record(sample)
                stats = recorder.snapshot()
                p50 = stats["p50_us"]
                p99 = stats["p99_us"]
                sections.append(
                    f"  {name}{_join_labels(label)}: count={cell.get('count', 0)}"
                    + (f" p50_us={p50:.1f} p99_us={p99:.1f}"
                       if p50 is not None and p99 is not None else ""))
    return "\n".join(sections) if sections else "(empty registry)"


def scrape_worker_addresses(addresses: List[Tuple[str, int]],
                            timeout: float = 5.0,
                            ) -> Tuple[List[Dict[str, Any]], int]:
    """Fetch JSON snapshots from each address, skipping unreachable ones.

    Returns (snapshots, scraped_count); the synchronous path used by the
    CLI (the frontend aggregates asynchronously in-process instead).
    """
    snapshots: List[Dict[str, Any]] = []
    for host, port in addresses:
        try:
            snapshots.append(fetch_snapshot(host, port, timeout=timeout))
        except (OSError, ValueError, ConnectionError):
            continue
    return snapshots, len(snapshots)
