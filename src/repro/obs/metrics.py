"""Process-wide metrics registry: counters, gauges, histograms, recorders.

Every tier of the stack (kernel dispatch, oracle engine, serving layer,
net fleet) reports health through the same :class:`MetricsRegistry`, so
one ``/metricsz`` scrape explains a process and one merge explains a
fleet.  Four metric kinds:

* :class:`Counter` — monotone float/int totals (queries served, frames
  decoded, retries).  Supports *callback* backing: a tier that already
  keeps its own counter (``QueryEngine._queries``, ``LRUCache.hits``)
  registers a read function instead of paying an increment on its hot
  path — the registry reads the live value at snapshot time, so
  migrating existing stats onto the registry costs the hot path nothing.
* :class:`Gauge` — instantaneous values (queue depth, resident bytes,
  the adaptive coalescing window).  Same callback support.
* :class:`Histogram` — fixed-bucket distributions with Prometheus
  ``le`` (<=) bucket semantics; bucket counts merge associatively
  across processes.
* :class:`RecorderHandle` — the shared percentile path.  It wraps the
  bounded-ring :class:`LatencyRecorder` (the *single* implementation
  behind engine stats, per-client serving stats, the load generator,
  and ``repro net bench``) and can *attach* recorders owned by other
  objects, so their samples surface in ``/metricsz`` without double
  recording.

Label support (``labels={"kernel": "csr"}``) follows Prometheus: one
metric *family* per name, one child per label set.  Children are cheap
to hold — resolve them once at init time and call ``inc``/``observe``
on the child in the hot path.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts
and merge associatively via :func:`merge_snapshots`, which is how the
frontend aggregates worker-process registries into one fleet view.

Everything is stdlib-only and thread-safe: family/child creation takes
the registry lock, mutations take a per-child lock, and a disabled
registry (``REPRO_METRICS=0`` or :func:`set_enabled`) turns every
mutation into an early return — the overhead benchmark gates the
enabled-vs-disabled difference.
"""

from __future__ import annotations

import os
import threading
import weakref
from bisect import bisect_left
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_US",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "RecorderHandle",
    "get_registry",
    "inc",
    "merge_snapshots",
    "set_enabled",
]

#: Environment switch: any of these values disables the default registry
#: (worker processes inherit it through the spawn environment).
_DISABLED_VALUES = ("0", "false", "off", "no")

#: Default microsecond bucket edges for request-latency histograms.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    25_000.0, 50_000.0, 100_000.0, 250_000.0, 1_000_000.0,
)

LabelMap = Optional[Mapping[str, str]]


def _label_key(labels: LabelMap) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_string(key: Tuple[Tuple[str, str], ...]) -> str:
    """Prometheus label body (``kernel="csr",tier="worker"``; "" if none)."""
    return ",".join(f'{name}="{value}"' for name, value in key)


class LatencyRecorder:
    """Bounded reservoir of recent latencies (nanoseconds), mergeable.

    The single percentile implementation for the whole stack: the oracle
    engine, per-client serving stats, the load generator, and the net
    benchmark all record into this class (re-exported from
    :mod:`repro.oracle.cache` for backward compatibility), so P50/P95/P99
    are computed identically wherever they are printed.  ``merge``
    absorbs another recorder's window — the cross-worker aggregation
    primitive used by snapshot merging.
    """

    # __weakref__ so RecorderHandle.attach can hold owners' recorders
    # without pinning them alive.
    __slots__ = ("window", "count", "_ring", "_next", "__weakref__")

    def __init__(self, window: int = 65536):
        if window <= 0:
            raise ValueError(f"latency window must be positive, got {window}")
        self.window = int(window)
        self.count = 0
        self._ring: List[int] = []
        self._next = 0

    def record(self, nanoseconds: int) -> None:
        """Add one sample, overwriting the oldest once the window is full."""
        self.count += 1
        if len(self._ring) < self.window:
            self._ring.append(nanoseconds)
        else:
            self._ring[self._next] = nanoseconds
            self._next = (self._next + 1) % self.window

    def record_many(self, nanoseconds: int, count: int) -> None:
        """Add ``count`` identical samples with slice assignment, not a loop.

        Used by batch queries, whose per-query latency is the amortised
        share of the batch: the batch path genuinely smooths the tail, so
        equal samples are the honest representation of it.
        """
        if count <= 0:
            return
        self.count += count
        fill = min(count, self.window)
        capacity = self.window - len(self._ring)
        if capacity:
            take = min(fill, capacity)
            self._ring.extend([nanoseconds] * take)
            fill -= take
        if fill:
            end = self._next + fill
            if end <= self.window:
                self._ring[self._next:end] = [nanoseconds] * fill
                self._next = end % self.window
            else:
                wrap = end - self.window
                self._ring[self._next:] = [nanoseconds] * (self.window - self._next)
                self._ring[:wrap] = [nanoseconds] * wrap
                self._next = wrap

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Absorb ``other``'s current window into this recorder.

        Totals add; samples concatenate (bounded by this recorder's
        window, oldest evicted first).  Merging is how per-worker
        percentile state aggregates into a fleet view — when the union
        fits both windows the resulting sample multiset is exactly the
        union, so merge order cannot change any percentile.
        """
        self.count += other.count
        for sample in other.samples():
            # record() would double-count `count`, so feed the ring directly.
            if len(self._ring) < self.window:
                self._ring.append(sample)
            else:
                self._ring[self._next] = sample
                self._next = (self._next + 1) % self.window
        return self

    def samples(self) -> List[int]:
        """The current window's samples (nanoseconds, unordered)."""
        return list(self._ring)

    @staticmethod
    def _pick(ordered: List[int], p: float) -> float:
        """Nearest-rank percentile of pre-sorted samples, in microseconds."""
        rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank] / 1000.0

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile latency in microseconds (None if empty)."""
        if not self._ring:
            return None
        return self._pick(sorted(self._ring), p)

    def snapshot(self) -> Dict[str, Optional[float]]:
        """P50/P95/P99 and mean over the current window, in microseconds."""
        if not self._ring:
            return {"count": 0, "p50_us": None, "p95_us": None, "p99_us": None,
                    "mean_us": None}
        ordered = sorted(self._ring)
        return {
            "count": self.count,
            "p50_us": self._pick(ordered, 50.0),
            "p95_us": self._pick(ordered, 95.0),
            "p99_us": self._pick(ordered, 99.0),
            "mean_us": sum(ordered) / len(ordered) / 1000.0,
        }


class _Callbacks:
    """Weakly-bound read functions folded into a child's value.

    A callback registered with an ``owner`` holds only a weak reference:
    when the owner (an engine, a cache, a server) is garbage-collected
    its contribution silently disappears, so registries never pin dead
    tiers alive or report stale values.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[Optional[weakref.ref], Callable]] = []

    def add(self, fn: Callable, owner: Optional[object] = None) -> None:
        ref = weakref.ref(owner) if owner is not None else None
        self._entries.append((ref, fn))

    def total(self) -> float:
        value = 0.0
        live: List[Tuple[Optional[weakref.ref], Callable]] = []
        for ref, fn in self._entries:
            if ref is None:
                value += float(fn())
                live.append((ref, fn))
                continue
            owner = ref()
            if owner is None:
                continue  # dead owner: drop the callback
            value += float(fn(owner))
            live.append((ref, fn))
        if len(live) != len(self._entries):
            self._entries = live
        return value

    def __len__(self) -> int:
        return len(self._entries)


class Counter:
    """Monotone total; ``inc`` in hot paths or callback-backed reads."""

    __slots__ = ("_registry", "_lock", "_value", "_callbacks")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0
        self._callbacks = _Callbacks()

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def set_function(self, fn: Callable, owner: Optional[object] = None) -> None:
        """Fold ``fn()`` (or ``fn(owner)`` via weakref) into this counter.

        The function must read a *monotone* total the owner already
        maintains — that is what makes the migration free: the owner's
        hot path keeps its plain attribute increment and the registry
        reads it only when a snapshot is taken.
        """
        self._callbacks.add(fn, owner)

    @property
    def value(self) -> float:
        return self._value + self._callbacks.total()


class Gauge:
    """Instantaneous value; ``set``/``add`` or callback-backed reads."""

    __slots__ = ("_registry", "_lock", "_value", "_callbacks")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0
        self._callbacks = _Callbacks()

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def set_function(self, fn: Callable, owner: Optional[object] = None) -> None:
        self._callbacks.add(fn, owner)

    @property
    def value(self) -> float:
        return self._value + self._callbacks.total()


class Histogram:
    """Fixed-bucket distribution with Prometheus ``le`` (<=) semantics.

    ``buckets`` are the finite upper edges; one implicit overflow bucket
    (``+Inf``) catches everything beyond the last edge.  Per-bucket
    counts are stored non-cumulatively and merged elementwise, which is
    what makes fleet aggregation associative and exact.
    """

    __slots__ = ("_registry", "_lock", "buckets", "counts", "sum", "count")

    def __init__(self, registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US):
        edges = tuple(float(edge) for edge in buckets)
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ValueError(
                f"histogram buckets must be strictly increasing and "
                f"non-empty, got {buckets!r}")
        self._registry = registry
        self._lock = threading.Lock()
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # [+Inf overflow last]
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, value: float, count: int) -> None:
        if count <= 0 or not self._registry.enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += count
            self.sum += value * count
            self.count += count


class RecorderHandle:
    """A registry-managed :class:`LatencyRecorder`, plus attached peers.

    ``record``/``record_many`` feed the handle's own recorder (the net
    benchmark's path).  ``attach`` registers a recorder owned elsewhere
    (an engine's, a per-client stat's) under a weak reference — its live
    window is merged in at snapshot time, so existing ``stats()`` shapes
    keep their private recorders while ``/metricsz`` sees every sample.
    """

    __slots__ = ("_registry", "recorder", "_attached")

    #: Samples exported per child in registry snapshots (downsampled
    #: deterministically) so merged fleet snapshots stay small on the wire.
    EXPORT_SAMPLES = 2048

    def __init__(self, registry: "MetricsRegistry", window: int = 65536):
        self._registry = registry
        self.recorder = LatencyRecorder(window)
        self._attached: List[weakref.ref] = []

    def record(self, nanoseconds: int) -> None:
        if self._registry.enabled:
            self.recorder.record(nanoseconds)

    def record_many(self, nanoseconds: int, count: int) -> None:
        if self._registry.enabled:
            self.recorder.record_many(nanoseconds, count)

    def attach(self, recorder: LatencyRecorder) -> None:
        self._attached.append(weakref.ref(recorder))

    def merged(self) -> LatencyRecorder:
        """One recorder over the handle's own window plus attached peers."""
        out = LatencyRecorder(max(self.recorder.window, 65536))
        out.merge(self.recorder)
        live = []
        for ref in self._attached:
            peer = ref()
            if peer is None:
                continue
            out.merge(peer)
            live.append(ref)
        if len(live) != len(self._attached):
            self._attached = live
        return out

    def snapshot(self) -> Dict[str, Optional[float]]:
        return self.merged().snapshot()

    def export(self) -> Dict[str, object]:
        """Snapshot payload for registry snapshots: count + sample list."""
        merged = self.merged()
        samples = merged.samples()
        stride = max(1, len(samples) // self.EXPORT_SAMPLES)
        return {
            "count": merged.count,
            "samples_us": [round(s / 1000.0, 3) for s in samples[::stride]],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "recorder": RecorderHandle}


class _Family:
    __slots__ = ("kind", "help", "extra", "children")

    def __init__(self, kind: str, help_text: str, extra: Dict[str, Any]):
        self.kind = kind
        self.help = help_text
        self.extra = extra
        self.children: Dict[Tuple[Tuple[str, str], ...], Any] = {}


class MetricsRegistry:
    """Named metric families with label-set children and merge-safe snapshots."""

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get(
                "REPRO_METRICS", "on").strip().lower() not in _DISABLED_VALUES
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # metric accessors (create-or-return; hot paths hold the child)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",
                labels: LabelMap = None) -> Counter:
        return self._child("counter", name, help, labels, {})

    def gauge(self, name: str, help: str = "",
              labels: LabelMap = None) -> Gauge:
        return self._child("gauge", name, help, labels, {})

    def histogram(self, name: str, help: str = "", labels: LabelMap = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
                  ) -> Histogram:
        return self._child("histogram", name, help, labels,
                           {"buckets": tuple(float(b) for b in buckets)})

    def recorder(self, name: str, help: str = "", labels: LabelMap = None,
                 window: int = 65536) -> RecorderHandle:
        return self._child("recorder", name, help, labels, {"window": window})

    def _child(self, kind: str, name: str, help_text: str, labels: LabelMap,
               extra: Dict[str, Any]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(kind, help_text, extra)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{family.kind}, cannot re-register as a {kind}")
            child = family.children.get(key)
            if child is None:
                if kind == "histogram":
                    child = Histogram(self, buckets=extra["buckets"])
                elif kind == "recorder":
                    child = RecorderHandle(self, window=extra["window"])
                else:
                    child = _KINDS[kind](self)
                family.children[key] = child
        return child

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of every family; the unit of fleet aggregation."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "recorders": {}}
        with self._lock:
            families = list(self._families.items())
        for name, family in families:
            if family.kind == "counter":
                out["counters"][name] = {
                    "help": family.help,
                    "values": {_label_string(key): child.value
                               for key, child in family.children.items()},
                }
            elif family.kind == "gauge":
                out["gauges"][name] = {
                    "help": family.help,
                    "values": {_label_string(key): child.value
                               for key, child in family.children.items()},
                }
            elif family.kind == "histogram":
                out["histograms"][name] = {
                    "help": family.help,
                    "buckets": list(family.extra["buckets"]),
                    "values": {
                        _label_string(key): {"counts": list(child.counts),
                                             "sum": child.sum,
                                             "count": child.count}
                        for key, child in family.children.items()},
                }
            else:  # recorder
                out["recorders"][name] = {
                    "help": family.help,
                    "values": {_label_string(key): child.export()
                               for key, child in family.children.items()},
                }
        return out

    def reset(self) -> None:
        """Drop every family (tests; live code never resets)."""
        with self._lock:
            self._families.clear()


def merge_snapshots(snapshots: Iterable[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Fold registry snapshots into one: the fleet-aggregation primitive.

    Counters, gauges, and histogram bucket counts add; recorder sample
    lists concatenate.  The fold is associative and commutative for
    every exact kind (counters/gauges/histograms), so scraping workers
    in any order — or merging partial merges — yields the same fleet
    snapshot.
    """
    merged: Dict[str, Dict[str, object]] = {
        "counters": {}, "gauges": {}, "histograms": {}, "recorders": {}}
    for snapshot in snapshots:
        for kind in ("counters", "gauges"):
            for name, family in (snapshot.get(kind) or {}).items():
                target = merged[kind].setdefault(
                    name, {"help": family.get("help", ""), "values": {}})
                for label, value in family.get("values", {}).items():
                    target["values"][label] = (
                        target["values"].get(label, 0.0) + float(value))
        for name, family in (snapshot.get("histograms") or {}).items():
            target = merged["histograms"].setdefault(
                name, {"help": family.get("help", ""),
                       "buckets": list(family.get("buckets", [])),
                       "values": {}})
            if list(family.get("buckets", [])) != target["buckets"]:
                raise ValueError(
                    f"histogram {name!r} has mismatched bucket edges "
                    f"across snapshots; cannot merge")
            for label, cell in family.get("values", {}).items():
                slot = target["values"].get(label)
                if slot is None:
                    target["values"][label] = {
                        "counts": list(cell["counts"]),
                        "sum": float(cell["sum"]),
                        "count": int(cell["count"])}
                else:
                    slot["counts"] = [a + b for a, b in
                                      zip(slot["counts"], cell["counts"])]
                    slot["sum"] += float(cell["sum"])
                    slot["count"] += int(cell["count"])
        for name, family in (snapshot.get("recorders") or {}).items():
            target = merged["recorders"].setdefault(
                name, {"help": family.get("help", ""), "values": {}})
            for label, cell in family.get("values", {}).items():
                slot = target["values"].setdefault(
                    label, {"count": 0, "samples_us": []})
                slot["count"] += int(cell.get("count", 0))
                slot["samples_us"] = (list(slot["samples_us"])
                                      + list(cell.get("samples_us", [])))
    return merged


#: The process-wide default registry every tier instruments against.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (workers each have their own process's)."""
    return _REGISTRY


def set_enabled(enabled: bool) -> None:
    """Flip instrumentation on/off process-wide (the overhead baseline)."""
    _REGISTRY.enabled = bool(enabled)


def inc(name: str, help: str = "", labels: LabelMap = None,
        amount: float = 1.0) -> None:
    """Bump a counter on the default registry, creating it on first use.

    The one-liner for call sites (chaos injection, quarantine paths)
    that fire rarely enough that holding a Counter handle is not worth
    the plumbing::

        inc("repro_chaos_injections_total", labels={"site": "worker.recv"})
    """
    _REGISTRY.counter(name, help, labels=labels).inc(amount)
