"""Sampled cross-tier request tracing for the oracle/serving/net stack.

A sampled ``dist()`` call carries a 16-hex-digit trace id across the
wire (see ``repro.net.protocol``: traced frames use protocol version 2
with the ``FLAG_TRACE`` bit, negotiated down for old peers).  Each tier
appends named spans to the trace as the request passes through:

* ``client.coalesce`` — time a key waits in the client's coalescing
  buffer before its micro-batch is flushed,
* ``client.request``  — wire round-trip of the flushed batch,
* ``frontend.route``  — artifact resolution + shard-affinity planning,
* ``frontend.fanout`` — fan-out/fan-in across workers,
* ``worker.queue``    — admission/backpressure wait in the worker's
  ``DistanceServer``,
* ``worker.gather``   — the vectorized per-shard gather itself.

Downstream tiers return their spans in the *response* trace blob, so
the caller's tracer ends up holding the complete multi-tier trace —
no central collector, no worker-side persistence.

Traces export as JSONL whose records satisfy the ``loadgen``
raw-sample contract (``t``/``latency_us``/``status`` keys), so
``LoadReport.from_jsonl`` and every existing report tool can slice
span populations exactly like request populations.

Sampling is probabilistic per request (``REPRO_TRACE_SAMPLE`` env, or
:func:`set_sample_rate`); an *incoming* trace id always wins — if the
upstream tier sampled the request, every tier below traces it.
"""

from __future__ import annotations

import json
import os
import random
import struct
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "set_sample_rate",
    "trace_capable_blob",
    "unpack_trace_blob",
]

#: Environment variable read at process start (spawned worker processes
#: inherit it, so `repro net serve --trace-sample` needs no config plumbing).
SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"


def _env_sample_rate() -> float:
    raw = os.environ.get(SAMPLE_ENV_VAR, "").strip()
    if not raw:
        return 0.0
    try:
        return min(1.0, max(0.0, float(raw)))
    except ValueError:
        return 0.0


class Span:
    """One named, timed stage of a request within one tier."""

    __slots__ = ("name", "tier", "start", "duration_us")

    def __init__(self, name: str, tier: str, start: float, duration_us: float):
        self.name = name
        self.tier = tier
        self.start = start
        self.duration_us = duration_us

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "tier": self.tier,
                "start": self.start, "duration_us": self.duration_us}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(str(data.get("name", "?")), str(data.get("tier", "?")),
                   float(data.get("start", 0.0)),
                   float(data.get("duration_us", 0.0)))


class TraceContext:
    """One request's trace: an id plus the spans recorded so far.

    Spans from remote tiers arrive via :meth:`ingest` (parsed from a
    response frame's trace blob); local stages are timed with the
    :meth:`span` context manager or recorded explicitly with
    :meth:`add` when the stage's endpoints don't nest lexically
    (e.g. coalesce wait measured across an enqueue/flush pair).
    """

    __slots__ = ("trace_id", "tier", "spans")

    def __init__(self, trace_id: str, tier: str):
        self.trace_id = trace_id
        self.tier = tier
        self.spans: List[Span] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.time()
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed_us = (time.perf_counter_ns() - t0) / 1000.0
            self.spans.append(Span(name, self.tier, start, elapsed_us))

    def add(self, name: str, start: float, duration_us: float) -> None:
        self.spans.append(Span(name, self.tier, start, duration_us))

    def ingest(self, payload: Dict[str, Any]) -> None:
        """Fold spans from a remote tier's trace blob into this trace."""
        for item in payload.get("spans", ()):
            self.spans.append(Span.from_dict(item))

    # ------------------------------------------------------------------
    # wire form — the opaque blob the protocol layer carries
    # ------------------------------------------------------------------
    def to_blob(self, include_spans: bool = True) -> bytes:
        """Compact binary wire blob.  Requests send id-only (spans travel
        *back*).  Binary, not JSON: the blob is re-encoded on every
        traced response frame, and float serialization through the JSON
        encoder was the single largest line item in the traced-frame
        overhead budget (see ``benchmarks/bench_obs_overhead.py``)."""
        return _encode_blob(self.trace_id,
                            self.spans if include_spans else ())

    def stage_total_us(self) -> float:
        return sum(span.duration_us for span in self.spans)

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.trace_id, "tier": self.tier,
                "spans": [span.to_dict() for span in self.spans]}


#: Binary blob layout: magic byte, u8 id length + id bytes, u16 span
#: count, then per span u8-length-prefixed name and tier plus two f64s
#: (start, duration_us).  JSON blobs (first byte ``{``) are accepted on
#: decode so hand-rolled clients can still announce a trace readably.
_BLOB_MAGIC = 0x54  # 'T'
_BLOB_HEAD = struct.Struct("!BB")
_BLOB_COUNT = struct.Struct("!H")
_SPAN_TIMES = struct.Struct("!dd")


def _encode_blob(trace_id: str, spans) -> bytes:
    ident = trace_id.encode("utf-8")[:255]
    spans = list(spans)[:0xFFFF]
    parts = [_BLOB_HEAD.pack(_BLOB_MAGIC, len(ident)), ident,
             _BLOB_COUNT.pack(len(spans))]
    for span in spans:
        name = span.name.encode("utf-8")[:255]
        tier = span.tier.encode("utf-8")[:255]
        parts.append(bytes((len(name),)) + name)
        parts.append(bytes((len(tier),)) + tier)
        parts.append(_SPAN_TIMES.pack(span.start, span.duration_us))
    return b"".join(parts)


def _decode_binary_blob(blob: bytes) -> Optional[Dict[str, Any]]:
    try:
        magic, id_len = _BLOB_HEAD.unpack_from(blob, 0)
        if magic != _BLOB_MAGIC:
            return None
        offset = _BLOB_HEAD.size
        trace_id = blob[offset:offset + id_len].decode("utf-8")
        if len(trace_id.encode("utf-8")) != id_len:
            return None
        offset += id_len
        (count,) = _BLOB_COUNT.unpack_from(blob, offset)
        offset += _BLOB_COUNT.size
        spans = []
        for _ in range(count):
            name_len = blob[offset]
            name = blob[offset + 1:offset + 1 + name_len].decode("utf-8")
            offset += 1 + name_len
            tier_len = blob[offset]
            tier = blob[offset + 1:offset + 1 + tier_len].decode("utf-8")
            offset += 1 + tier_len
            start, duration_us = _SPAN_TIMES.unpack_from(blob, offset)
            offset += _SPAN_TIMES.size
            spans.append({"name": name, "tier": tier, "start": start,
                          "duration_us": duration_us})
        if offset > len(blob):
            return None
        return {"id": trace_id, "spans": spans}
    except (struct.error, IndexError, UnicodeDecodeError):
        return None


def unpack_trace_blob(blob: Optional[bytes]) -> Optional[Dict[str, Any]]:
    """Parse a wire trace blob; malformed blobs degrade to None, never raise.

    Tracing must never take down the serving path — a peer sending a
    corrupt trace blob loses its trace, not its answer.
    """
    if not blob:
        return None
    if blob[0] == _BLOB_MAGIC:
        return _decode_binary_blob(bytes(blob))
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or not isinstance(payload.get("id"), str):
        return None
    return payload


def trace_capable_blob(trace_id: str) -> bytes:
    """The id-only request blob announcing "trace this request"."""
    return _encode_blob(trace_id, ())


class Tracer:
    """Per-process trace sampler and bounded store of finished traces."""

    def __init__(self, sample_rate: Optional[float] = None,
                 capacity: int = 1024, tier: str = "client"):
        if sample_rate is None:
            sample_rate = _env_sample_rate()
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self.tier = tier
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=int(capacity))
        self._rng = random.Random()
        self.started = 0
        self.finished = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def maybe_start(self, trace_id: Optional[str] = None
                    ) -> Optional[TraceContext]:
        """Start a trace if sampled, or unconditionally when the request
        already carries an upstream trace id (the upstream tier decided)."""
        if trace_id is None:
            if self.sample_rate <= 0.0 or self._rng.random() >= self.sample_rate:
                return None
            trace_id = f"{self._rng.getrandbits(64):016x}"
        self.started += 1
        return TraceContext(trace_id, self.tier)

    def finish(self, ctx: Optional[TraceContext]) -> None:
        if ctx is None:
            return
        with self._lock:
            self._traces.append(ctx)
            self.finished += 1

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def traces(self) -> List[TraceContext]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def span_records(self) -> List[Dict[str, Any]]:
        """Flatten finished traces into loadgen-compatible raw samples.

        Each span becomes one record carrying the ``t`` / ``latency_us``
        / ``status`` keys ``LoadReport.from_jsonl`` requires, with the
        trace id, span name, and tier as extra keys (``from_jsonl``
        passes unknown keys through).  ``client`` is ``tier/span`` so
        per-stage populations separate with the existing per-client
        reporting machinery.
        """
        records = []
        for ctx in self.traces():
            for span in ctx.spans:
                records.append({
                    "t": span.start,
                    "client": f"{span.tier}/{span.name}",
                    "latency_us": span.duration_us,
                    "status": "ok",
                    "trace": ctx.trace_id,
                    "span": span.name,
                    "tier": span.tier,
                })
        return records

    def export_jsonl(self, path: str) -> int:
        """Append span records as JSONL; returns the record count."""
        records = self.span_records()
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        return len(records)


#: Per-process default tracer; worker processes build their own on import,
#: re-reading REPRO_TRACE_SAMPLE from the (inherited) environment.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_sample_rate(rate: float) -> None:
    """Adjust the process-wide sampling rate (1.0 = trace everything)."""
    _TRACER.sample_rate = min(1.0, max(0.0, float(rate)))
