"""`repro.obs` — dependency-free observability for the whole stack.

One :class:`MetricsRegistry` per process (counters, gauges, fixed-bucket
histograms, mergeable percentile recorders), sampled cross-tier request
tracing that rides the `repro.net` wire protocol, and Prometheus text
exposition served at every tier's ``/metricsz`` route with a fleet
aggregator at the frontend.  See the README's "Observability" section
for the metric catalogue and trace schema.
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_US,
    Gauge,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    RecorderHandle,
    get_registry,
    merge_snapshots,
    set_enabled,
)
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    get_tracer,
    set_sample_rate,
    unpack_trace_blob,
)
from .export import (
    fetch_snapshot,
    fetch_text,
    render_snapshot,
    render_top,
    to_prometheus_text,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_US",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "RecorderHandle",
    "Span",
    "TraceContext",
    "Tracer",
    "fetch_snapshot",
    "fetch_text",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "render_snapshot",
    "render_top",
    "set_enabled",
    "set_sample_rate",
    "to_prometheus_text",
    "unpack_trace_blob",
]
