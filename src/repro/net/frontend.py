"""Front tier: fan batched requests out to workers; survive worker death.

The front tier is the only address clients need.  It accepts the same
wire protocol the workers speak (binary frames + HTTP fallback on one
port), routes each request's stretch budget through its own
metadata-only :class:`~repro.serve.registry.ArtifactRegistry` (sidecars
and shard manifests are cheap to read; the frontend never loads an
engine), pins the decision into the artifact hint so every worker
answers from the same table, and partitions the pair batch across the
healthy workers:

* **sharded artifacts** — each pair's affinity is the shard holding its
  canonical row (``searchsorted`` over the manifest row ranges, the same
  math as :func:`repro.serve.router.shards_for_nodes`), and shards are
  striped across workers, so a worker's hot-row cache and faulted shard
  pages see a stable slice of the keyspace;
* **monolithic artifacts** — contiguous equal chunks.

Affinity is an optimisation, not a correctness constraint: every worker
maps the full manifest, so any worker can answer any sub-batch.  That is
what makes failover simple, in the spirit of the *Two for One, One for
All* robustness framing — when a worker dies mid-request the sub-batch
is retried on the next healthy worker (bounded retries, per-request
timeout), the dead worker's consecutive-failure count trips the ejection
threshold, and because assignment is computed over the *healthy* list,
its shard ranges re-route to the survivors automatically.

:class:`WorkerLink` is the persistent pipelined connection used for all
of it: request ids match responses out of order, a reader task settles
futures, and a broken link fails every in-flight request immediately
(so retries start now, not at the timeout).  :class:`NetClient` reuses
the same link machinery on the client side and adds optional request
coalescing, so per-pair ``await client.dist(u, v)`` callers get the
batch-native wire for free — the loadgen drives a network tier through
the exact seam it drives an in-process server.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.protocol import (
    ERR_BAD_NODES,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_ROUTING,
    ERR_SHUTTING_DOWN,
    ERR_UNSUPPORTED_VERSION,
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_REQUEST,
    MSG_RESPONSE,
    NetError,
    ProtocolError,
    Request,
    encode_frame,
    pack_request,
    read_frame,
    unpack_error,
    unpack_response,
)
from repro.net.worker import NetServiceBase
from repro.obs.metrics import get_registry, merge_snapshots
from repro.obs.tracing import (
    TraceContext,
    get_tracer,
    trace_capable_blob,
    unpack_trace_blob,
)
from repro.serve.registry import ArtifactEntry, build_registry
from repro.serve.router import RoutingError, StretchRouter, budget_admits
from repro.serve.server import ServerClosed, ServerOverloaded

Pair = Tuple[int, int]


def map_wire_error(error: ProtocolError) -> Exception:
    """Typed wire error -> the exception an in-process caller would see."""
    if error.code == ERR_ROUTING:
        return RoutingError(str(error))
    if error.code == ERR_OVERLOADED:
        return ServerOverloaded(str(error))
    if error.code == ERR_BAD_NODES:
        return ValueError(str(error))
    if error.code == ERR_SHUTTING_DOWN:
        return WorkerUnavailable(str(error))
    if error.code == ERR_INTERNAL:
        return NetError(str(error))
    return error


class WorkerUnavailable(ConnectionError):
    """The far end is draining or gone; safe to retry on another worker."""


#: Failures that justify retrying the same sub-batch on another worker.
RETRYABLE = (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError)


class WorkerLink:
    """One persistent, pipelined connection to a worker (or front tier).

    Many requests may be in flight at once; the 4-byte request id in the
    frame header matches responses back to futures, so a slow sub-batch
    never head-of-line-blocks a fast one.  A dead connection fails every
    pending future with :class:`WorkerUnavailable` and the next request
    reconnects lazily.
    """

    def __init__(self, host: str, port: int, name: str = "",
                 connect_timeout: float = 3.0):
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._req_ids = itertools.count(1)
        self._connect_lock = asyncio.Lock()
        # Health bookkeeping (maintained by the Frontend's failover path).
        self.requests = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.ejected = False
        # Trace plumbing: a v1-only peer rejects traced frames once, after
        # which the link downgrades itself and never sends a blob again.
        self.trace_capable = True
        self.trace_sink: Optional[Callable[[Dict[str, Any]], None]] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        async with self._connect_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout)
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader), name=f"repro-net-link-{self.name}")

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                ftype, req_id, payload = frame
                if ftype == MSG_RESPONSE and frame.trace is not None \
                        and self.trace_sink is not None:
                    remote = unpack_trace_blob(frame.trace)
                    if remote is not None:
                        try:
                            self.trace_sink(remote)
                        except Exception:
                            pass  # tracing must never break the data path
                future = self._pending.pop(req_id, None)
                if future is None or future.done():
                    continue  # timed-out request answering late
                try:
                    if ftype == MSG_RESPONSE:
                        future.set_result(unpack_response(payload, req_id))
                    elif ftype == MSG_ERROR:
                        future.set_exception(
                            map_wire_error(unpack_error(payload, req_id)))
                    elif ftype == MSG_PONG:
                        future.set_result(None)
                    else:
                        future.set_exception(ProtocolError(
                            0, f"unexpected frame type {ftype}", req_id))
                except Exception as exc:
                    # A popped future must always settle — a decode crash
                    # here would otherwise strand its caller until timeout.
                    if not future.done():
                        future.set_exception(exc)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            self._teardown(WorkerUnavailable(
                f"connection to {self.name} closed"))

    def _teardown(self, exc: Exception) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        task, self._read_task = self._read_task, None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
        if writer is not None:
            writer.close()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def request(self, pairs, multiplicative: float = math.inf,
                      additive: float = math.inf, artifact: str = "",
                      timeout: Optional[float] = None,
                      trace: Optional[bytes] = None) -> np.ndarray:
        """Send one batched request; returns the distance array."""
        payload = pack_request(pairs, multiplicative, additive, artifact)
        if trace is not None and self.trace_capable:
            try:
                return await self._roundtrip(MSG_REQUEST, payload, timeout,
                                             trace=trace)
            except ProtocolError as exc:
                if exc.code != ERR_UNSUPPORTED_VERSION:
                    raise
                # Old peer: negotiate down and retry this request untraced.
                self.trace_capable = False
        return await self._roundtrip(MSG_REQUEST, payload, timeout)

    async def ping(self, timeout: Optional[float] = None) -> bool:
        try:
            await self._roundtrip(MSG_PING, b"", timeout)
            return True
        except RETRYABLE:
            return False

    async def _roundtrip(self, ftype: int, payload: bytes,
                         timeout: Optional[float],
                         trace: Optional[bytes] = None) -> np.ndarray:
        await self._ensure_connected()
        req_id = next(self._req_ids) & 0xFFFFFFFF
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self.requests += 1
        try:
            self._writer.write(encode_frame(ftype, req_id, payload,
                                            trace=trace))
            await self._writer.drain()
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except (ConnectionError, OSError) as exc:
            raise WorkerUnavailable(f"{self.name}: {exc}") from exc
        finally:
            self._pending.pop(req_id, None)

    async def close(self) -> None:
        task = self._read_task
        self._teardown(WorkerUnavailable(f"link to {self.name} closed"))
        if task is not None and task is not asyncio.current_task():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "connected": self.connected,
            "requests": self.requests,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "ejected": self.ejected,
            "in_flight": len(self._pending),
        }


class Frontend(NetServiceBase):
    """Accept client connections; partition, fan out, retry, eject.

    Parameters
    ----------
    artifact_paths:
        The same artifact files/manifests the workers serve — read for
        metadata only (routing and shard ranges), never loaded.
    workers:
        ``(host, port)`` of every worker in the fleet.
    request_timeout:
        Per-sub-batch timeout for one worker attempt.
    max_attempts:
        Worker attempts per sub-batch (1 primary + retries on fallback
        workers) before the request fails with :class:`NetError`.
    eject_after:
        Consecutive failures after which a worker is ejected from the
        rotation; its shard affinity re-routes to the survivors.
    """

    role = "frontend"

    def __init__(self, artifact_paths: Sequence[str],
                 workers: Sequence[Tuple[str, int]],
                 host: str = "127.0.0.1", port: int = 0, *,
                 request_timeout: float = 5.0, max_attempts: int = 3,
                 eject_after: int = 3, capacity: int = 8):
        super().__init__(host=host, port=port)
        if not workers:
            raise ValueError("frontend needs at least one worker address")
        self._registry = build_registry(artifact_paths, capacity=capacity)
        self._router = StretchRouter(self._registry)
        self._links = [
            WorkerLink(worker_host, worker_port, name=f"worker-{index}")
            for index, (worker_host, worker_port) in enumerate(workers)
        ]
        self.request_timeout = request_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.eject_after = max(1, int(eject_after))
        self.retries = 0
        self.failovers = 0
        self.ejections = 0
        self.readmits = 0
        # Sampled traces in flight: trace id -> context.  Worker reply
        # blobs arriving on any link are folded into the matching context.
        self._live_traces: Dict[str, TraceContext] = {}
        for link in self._links:
            link.trace_sink = self._ingest_worker_trace
        self._register_frontend_metrics()

    def _register_frontend_metrics(self) -> None:
        registry = get_registry()
        for metric, help_text, reader in (
            ("repro_frontend_retries_total",
             "Sub-batch retries after a worker attempt failed",
             lambda f: f.retries),
            ("repro_frontend_failovers_total",
             "Sub-batches moved to a different worker",
             lambda f: f.failovers),
            ("repro_frontend_ejections_total",
             "Workers ejected from the rotation",
             lambda f: f.ejections),
            ("repro_frontend_readmits_total",
             "Ejected workers probed healthy and readmitted",
             lambda f: f.readmits),
        ):
            registry.counter(metric, help_text).set_function(reader, self)
        registry.gauge(
            "repro_frontend_healthy_workers",
            "Workers currently in the rotation").set_function(
                lambda f: len(f.healthy_links()), self)

    def _ingest_worker_trace(self, payload: Dict[str, Any]) -> None:
        context = self._live_traces.get(str(payload.get("id", "")))
        if context is not None:
            context.ingest(payload)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request,
                             trace: Optional[TraceContext] = None,
                             ) -> np.ndarray:
        if self._draining:
            raise ServerClosed("frontend is draining")
        if trace is not None:
            self._live_traces[trace.trace_id] = trace
        try:
            route_wall = time.time()
            route_tick = time.perf_counter_ns()
            entry = self._resolve(request)
            count = len(request)
            if count == 0:
                return np.zeros(0, dtype=np.float64)
            u = request.u.astype(np.int64, copy=False)
            v = request.v.astype(np.int64, copy=False)
            if (int(u.min()) < 0 or int(u.max()) >= entry.n
                    or int(v.min()) < 0 or int(v.max()) >= entry.n):
                raise ValueError(
                    f"request contains node ids outside [0, {entry.n})")
            healthy = self.healthy_links()
            if not healthy:
                raise NetError("no healthy workers remain in the fleet")
            assignment = self._assign(entry, u, v, len(healthy))
            if trace is not None:
                trace.add("frontend.route", route_wall,
                          (time.perf_counter_ns() - route_tick) / 1000.0)
            out = np.empty(count, dtype=np.float64)
            tasks = []
            slices: List[np.ndarray] = []
            trace_blob = (trace_capable_blob(trace.trace_id)
                          if trace is not None else None)
            for worker_index in range(len(healthy)):
                indices = np.nonzero(assignment == worker_index)[0]
                if indices.size == 0:
                    continue
                sub = np.empty((indices.size, 2), dtype=np.int32)
                sub[:, 0] = u[indices]
                sub[:, 1] = v[indices]
                slices.append(indices)
                tasks.append(self._fan_out(healthy, worker_index, sub,
                                           request, entry.name,
                                           trace_blob=trace_blob))
            fanout_wall = time.time()
            fanout_tick = time.perf_counter_ns()
            answered = await asyncio.gather(*tasks)
            if trace is not None:
                trace.add("frontend.fanout", fanout_wall,
                          (time.perf_counter_ns() - fanout_tick) / 1000.0)
            for indices, values in zip(slices, answered):
                out[indices] = values
            return out
        finally:
            if trace is not None:
                self._live_traces.pop(trace.trace_id, None)

    def _resolve(self, request: Request) -> ArtifactEntry:
        """Route the budget (or validate the pinned artifact) to an entry."""
        if request.artifact:
            entry = self._registry.get(request.artifact)
            if not budget_admits(entry.stretch, request.multiplicative,
                                 request.additive):
                raise RoutingError(
                    f"pinned artifact {request.artifact!r} exceeds the "
                    f"stretch budget {request.multiplicative:g}x+"
                    f"{request.additive:g}")
            return entry
        return self._router.route(multiplicative=request.multiplicative,
                                  additive=request.additive).entry

    def _assign(self, entry: ArtifactEntry, u: np.ndarray, v: np.ndarray,
                num_workers: int) -> np.ndarray:
        """Healthy-worker index per pair: shard affinity, else even chunks."""
        if num_workers == 1:
            return np.zeros(len(u), dtype=np.int64)
        if entry.sharded and entry.row_ranges:
            starts = np.asarray([start for start, _stop in entry.row_ranges],
                                dtype=np.int64)
            rows = np.minimum(u, v)  # the canonical row the gather reads
            shards = np.searchsorted(starts, rows, side="right") - 1
            return shards % num_workers
        return (np.arange(len(u), dtype=np.int64) * num_workers) // len(u)

    async def _fan_out(self, healthy: List[WorkerLink], start: int,
                       sub: np.ndarray, request: Request,
                       artifact: str,
                       trace_blob: Optional[bytes] = None) -> np.ndarray:
        """One sub-batch: primary worker, then bounded failover."""
        attempts = min(self.max_attempts, len(healthy))
        last_exc: Optional[Exception] = None
        for attempt in range(attempts):
            link = healthy[(start + attempt) % len(healthy)]
            if link.ejected:
                continue
            try:
                values = await link.request(
                    sub, request.multiplicative, request.additive,
                    artifact=artifact, timeout=self.request_timeout,
                    trace=trace_blob)
            except RETRYABLE as exc:
                self._mark_failure(link)
                last_exc = exc
                if attempt + 1 < attempts:
                    self.retries += 1
                    self.failovers += 1
                continue
            link.consecutive_failures = 0
            return values
        raise NetError(
            f"sub-batch of {len(sub)} pairs failed on {attempts} worker(s): "
            f"{last_exc}") from last_exc

    def _mark_failure(self, link: WorkerLink) -> None:
        link.failures += 1
        link.consecutive_failures += 1
        if not link.ejected and link.consecutive_failures >= self.eject_after:
            link.ejected = True
            self.ejections += 1

    # ------------------------------------------------------------------
    # fleet health
    # ------------------------------------------------------------------
    def healthy_links(self) -> List[WorkerLink]:
        return [link for link in self._links if not link.ejected]

    def links(self) -> List[WorkerLink]:
        return list(self._links)

    async def readmit(self, index: int) -> bool:
        """Probe an ejected worker; put it back in rotation if it answers."""
        link = self._links[index]
        if await link.ping(timeout=self.request_timeout):
            if link.ejected:
                self.readmits += 1
            link.ejected = False
            link.consecutive_failures = 0
            return True
        return False

    async def stop(self, drain_timeout: float = 5.0) -> None:
        await super().stop(drain_timeout)
        for link in self._links:
            await link.close()

    def health(self) -> Dict[str, object]:
        health = super().health()
        health["workers"] = len(self._links)
        health["healthy_workers"] = len(self.healthy_links())
        return health

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["workers"] = [link.snapshot() for link in self._links]
        stats["failovers"] = self.failovers
        stats["retries"] = self.retries
        stats["ejections"] = self.ejections
        stats["readmits"] = self.readmits
        stats["router"] = self._router.stats()
        return stats

    # ------------------------------------------------------------------
    # fleet metrics aggregation
    # ------------------------------------------------------------------
    async def _metrics_snapshot(self) -> Dict[str, Any]:
        """Local registry merged with every reachable worker's registry.

        Workers run in their own processes, so the frontend's in-process
        registry only sees the frontend tier.  Scraping each worker's
        ``/metricsz?format=json`` and merging makes the frontend's
        endpoint a one-stop fleet view.
        """
        local = get_registry().snapshot()
        remote = await asyncio.gather(
            *(self._scrape_worker(link.host, link.port)
              for link in self._links))
        scraped = [snap for snap in remote if snap is not None]
        merged = merge_snapshots([local] + scraped)
        merged["fleet"] = {"workers": len(self._links),
                           "workers_scraped": len(scraped)}
        return merged

    async def _scrape_worker(self, host: str, port: int,
                             timeout: float = 2.0,
                             ) -> Optional[Dict[str, Any]]:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout)
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(b"GET /metricsz?format=json HTTP/1.1\r\n"
                         b"Host: repro\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout)
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                pass
        head, _sep, body = raw.partition(b"\r\n\r\n")
        if b" 200 " not in head.split(b"\r\n", 1)[0]:
            return None
        try:
            snapshot = json.loads(body)
        except ValueError:
            return None
        return snapshot if isinstance(snapshot, dict) else None


class NetClient:
    """Client-side handle on a frontend (or a single worker) address.

    ``batch`` sends one wire request per call — the throughput path.
    ``dist`` awaits a single pair and, with coalescing enabled (the
    default), parks concurrent callers in a pending map that a flusher
    drains into one batched frame per micro-window — the same trick
    :class:`~repro.serve.server.DistanceServer` plays in-process, moved
    to the client edge of the wire.  Either way the answers are the
    engine's, bit for bit.

    Usable anywhere :class:`DistanceServer` is awaited: the load
    generator's closed/open-loop drivers accept it unchanged.
    """

    def __init__(self, host: str, port: int, *, client: str = "client",
                 coalesce_window: float = 0.0005, max_batch: int = 8192,
                 request_timeout: float = 10.0):
        self.link = WorkerLink(host, port, name=client)
        self.client = client
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self._pending: Dict[Tuple[float, float], Dict[Pair, asyncio.Future]] = {}
        self._wake = asyncio.Event()
        self._flusher: Optional[asyncio.Task] = None
        self._closed = False
        # Sampled request tracing: contexts parked alongside the pending
        # futures; the flusher turns the park time into a
        # ``client.coalesce`` span and the wire round trip into
        # ``client.request``.  Far-tier spans ride back in the response
        # frame's trace blob and land via the link's trace sink.
        self.tracer = get_tracer()
        self._live: Dict[str, TraceContext] = {}
        self._trace_meta: Dict[Tuple[float, float],
                               Dict[Pair, Tuple[TraceContext, float, int]]] = {}
        self.link.trace_sink = self._ingest_trace

    def _ingest_trace(self, payload: Dict[str, Any]) -> None:
        context = self._live.get(str(payload.get("id", "")))
        if context is not None:
            context.ingest(payload)

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        self._closed = True
        if self._flusher is not None:
            self._wake.set()
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        await self.link.close()

    async def batch(self, pairs, *, multiplicative: float = math.inf,
                    additive: float = math.inf, artifact: str = "",
                    ) -> np.ndarray:
        """One batched wire request (the ladder benchmark's hot path)."""
        return await self.link.request(
            pairs, multiplicative, additive, artifact=artifact,
            timeout=self.request_timeout)

    async def dist(self, u: int, v: int, *, multiplicative: float = math.inf,
                   additive: float = math.inf, client: str = "") -> float:
        """Single-pair query, transparently coalesced onto the wire."""
        if self._closed:
            raise ServerClosed("client is closed")
        if self.coalesce_window <= 0:
            return await self._dist_direct(u, v, multiplicative, additive)
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop(), name=f"repro-net-client-{self.client}")
        budget = (multiplicative, additive)
        bucket = self._pending.setdefault(budget, {})
        key = (u, v) if u <= v else (v, u)
        future = bucket.get(key)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            bucket[key] = future
            context = self.tracer.maybe_start()
            if context is not None:
                self._trace_meta.setdefault(budget, {})[key] = (
                    context, time.time(), time.perf_counter_ns())
            self._wake.set()
        return float(await future)

    async def _dist_direct(self, u: int, v: int, multiplicative: float,
                           additive: float) -> float:
        """Uncoalesced single pair; still traced when sampled."""
        context = self.tracer.maybe_start()
        trace_blob = None
        if context is not None:
            self._live[context.trace_id] = context
            trace_blob = trace_capable_blob(context.trace_id)
        wall = time.time()
        tick = time.perf_counter_ns()
        try:
            values = await self.link.request(
                [(u, v)], multiplicative, additive,
                timeout=self.request_timeout, trace=trace_blob)
        finally:
            if context is not None:
                context.add("client.request", wall,
                            (time.perf_counter_ns() - tick) / 1000.0)
                self._live.pop(context.trace_id, None)
                self.tracer.finish(context)
        return float(values[0])

    async def _flush_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                if self._pending:
                    await asyncio.sleep(self.coalesce_window)
                await self._flush()
        except asyncio.CancelledError:
            await self._flush()
            raise

    async def _flush(self) -> None:
        while self._pending:
            pending, self._pending = self._pending, {}
            trace_meta, self._trace_meta = self._trace_meta, {}
            for (multiplicative, additive), bucket in pending.items():
                keys = list(bucket)
                futures = list(bucket.values())
                meta = trace_meta.get((multiplicative, additive), {})
                for start in range(0, len(keys), self.max_batch):
                    chunk = keys[start:start + self.max_batch]
                    chunk_futures = futures[start:start + self.max_batch]
                    contexts = self._open_chunk_traces(chunk, meta)
                    trace_blob = (trace_capable_blob(contexts[0].trace_id)
                                  if contexts else None)
                    wall = time.time()
                    tick = time.perf_counter_ns()
                    try:
                        values = await self.link.request(
                            chunk, multiplicative, additive,
                            timeout=self.request_timeout, trace=trace_blob)
                    except Exception as exc:  # settle, never kill the loop
                        self._close_chunk_traces(contexts, wall, tick)
                        for future in chunk_futures:
                            if not future.done():
                                future.set_exception(
                                    exc if not isinstance(
                                        exc, asyncio.CancelledError)
                                    else WorkerUnavailable("client closing"))
                        continue
                    self._close_chunk_traces(contexts, wall, tick)
                    for future, value in zip(chunk_futures, values.tolist()):
                        if not future.done():
                            future.set_result(value)

    def _open_chunk_traces(self, chunk, meta) -> List[TraceContext]:
        """Stamp the coalesce span on every sampled pair in the chunk.

        Only the first context's id rides the wire (one frame carries one
        trace blob), so the carrier collects the far-tier spans; the rest
        still get their client-side timeline.
        """
        contexts: List[TraceContext] = []
        now = time.perf_counter_ns()
        for key in chunk:
            parked = meta.pop(key, None)
            if parked is None:
                continue
            context, wall, tick = parked
            context.add("client.coalesce", wall, (now - tick) / 1000.0)
            self._live[context.trace_id] = context
            contexts.append(context)
        return contexts

    def _close_chunk_traces(self, contexts: List[TraceContext],
                            wall: float, tick: int) -> None:
        duration_us = (time.perf_counter_ns() - tick) / 1000.0
        for context in contexts:
            context.add("client.request", wall, duration_us)
            self._live.pop(context.trace_id, None)
            self.tracer.finish(context)

    def stats(self) -> Dict[str, object]:
        return {"link": self.link.snapshot(),
                "pending": sum(len(bucket)
                               for bucket in self._pending.values())}


async def wait_until_healthy(addresses: Sequence[Tuple[str, int]],
                             timeout: float = 30.0,
                             interval: float = 0.1) -> None:
    """Block until every address answers a PING (cluster startup barrier)."""
    deadline = time.monotonic() + timeout
    for host, port in addresses:
        link = WorkerLink(host, port, name=f"probe-{host}:{port}")
        try:
            while True:
                if await link.ping(timeout=min(1.0, timeout)):
                    break
                if time.monotonic() >= deadline:
                    raise NetError(
                        f"worker at {host}:{port} not healthy after "
                        f"{timeout:.1f}s")
                await asyncio.sleep(interval)
        finally:
            await link.close()


__all__ = [
    "Frontend",
    "NetClient",
    "RETRYABLE",
    "WorkerLink",
    "WorkerUnavailable",
    "map_wire_error",
    "wait_until_healthy",
]
