"""Front tier: fan batched requests out to workers; survive worker death.

The front tier is the only address clients need.  It accepts the same
wire protocol the workers speak (binary frames + HTTP fallback on one
port), routes each request's stretch budget through its own
metadata-only :class:`~repro.serve.registry.ArtifactRegistry` (sidecars
and shard manifests are cheap to read; the frontend never loads an
engine), pins the decision into the artifact hint so every worker
answers from the same table, and partitions the pair batch across the
healthy workers:

* **sharded artifacts** — each pair's affinity is the shard holding its
  canonical row (``searchsorted`` over the manifest row ranges, the same
  math as :func:`repro.serve.router.shards_for_nodes`), and shards are
  striped across workers, so a worker's hot-row cache and faulted shard
  pages see a stable slice of the keyspace;
* **monolithic artifacts** — contiguous equal chunks.

Affinity is an optimisation, not a correctness constraint: every worker
maps the full manifest, so any worker can answer any sub-batch.  That is
what makes failover simple, in the spirit of the *Two for One, One for
All* robustness framing — when a worker dies mid-request the sub-batch
is retried on the next healthy worker (bounded retries, per-request
timeout), the dead worker's consecutive-failure count trips the ejection
threshold, and because assignment is computed over the *healthy* list,
its shard ranges re-route to the survivors automatically.

:class:`WorkerLink` is the persistent pipelined connection used for all
of it: request ids match responses out of order, a reader task settles
futures, and a broken link fails every in-flight request immediately
(so retries start now, not at the timeout).  :class:`NetClient` reuses
the same link machinery on the client side and adds optional request
coalescing, so per-pair ``await client.dist(u, v)`` callers get the
batch-native wire for free — the loadgen drives a network tier through
the exact seam it drives an in-process server.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.protocol import (
    ERR_BAD_NODES,
    ERR_DATA_INTEGRITY,
    ERR_DEADLINE_EXCEEDED,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_ROUTING,
    ERR_SHUTTING_DOWN,
    ERR_UNSUPPORTED_VERSION,
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_REQUEST,
    MSG_RESPONSE,
    NetError,
    ProtocolError,
    Request,
    encode_frame,
    pack_request,
    read_frame,
    unpack_error,
    unpack_response,
)
from repro.net.worker import NetServiceBase
from repro.obs.metrics import LatencyRecorder, get_registry, merge_snapshots
from repro.oracle.sharding import ShardIntegrityError
from repro.obs.tracing import (
    TraceContext,
    get_tracer,
    trace_capable_blob,
    unpack_trace_blob,
)
from repro.serve.registry import ArtifactEntry, build_registry
from repro.serve.router import RoutingError, StretchRouter, budget_admits
from repro.serve.server import DeadlineExceeded, ServerClosed, ServerOverloaded

Pair = Tuple[int, int]


def map_wire_error(error: ProtocolError) -> Exception:
    """Typed wire error -> the exception an in-process caller would see."""
    if error.code == ERR_ROUTING:
        return RoutingError(str(error))
    if error.code == ERR_OVERLOADED:
        return ServerOverloaded(str(error))
    if error.code == ERR_BAD_NODES:
        return ValueError(str(error))
    if error.code == ERR_SHUTTING_DOWN:
        return WorkerUnavailable(str(error))
    if error.code == ERR_DEADLINE_EXCEEDED:
        return DeadlineExceeded(str(error))
    if error.code == ERR_DATA_INTEGRITY:
        return ShardIntegrityError(str(error))
    if error.code == ERR_INTERNAL:
        return NetError(str(error))
    return error


class WorkerUnavailable(ConnectionError):
    """The far end is draining or gone; safe to retry on another worker."""


#: Failures that justify retrying the same sub-batch on another worker.
RETRYABLE = (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError)

#: Everything the fan-out path treats as "this worker attempt failed, move
#: on": transport failures plus typed remote errors that another worker can
#: answer correctly — ERR_INTERNAL (that worker is broken, the request is
#: fine) and ERR_DATA_INTEGRITY (that worker's copy of a shard is rotten;
#: requests are idempotent reads, so re-asking elsewhere is always safe).
FAILOVER_ERRORS = RETRYABLE + (NetError, ShardIntegrityError)

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-worker circuit breaker: closed -> open -> half-open -> closed.

    Replaces the blunt consecutive-failure ejection with the standard
    three-state machine.  The circuit opens on either ``consecutive_after``
    consecutive failures *or* a failure rate above ``rate_threshold``
    across the last ``window`` outcomes (only once ``rate_min_samples``
    outcomes exist, so one blip on a quiet link cannot open it).  While
    open, :meth:`allow` is False and no requests are routed to the
    worker.  After ``cooldown`` seconds :meth:`ready_to_probe` turns
    true; the owner sends a single probe (half-open state admits exactly
    one).  A successful probe closes the circuit and resets the
    cooldown; a failed one re-opens it with the cooldown doubled, capped
    at ``max_cooldown`` — a flapping worker gets probed geometrically
    less often.
    """

    def __init__(self, *, consecutive_after: int = 3,
                 rate_threshold: float = 0.5, window: int = 20,
                 rate_min_samples: int = 10, cooldown: float = 1.0,
                 max_cooldown: float = 30.0):
        self.consecutive_after = max(1, int(consecutive_after))
        self.rate_threshold = float(rate_threshold)
        self.rate_min_samples = max(1, int(rate_min_samples))
        self.cooldown = float(cooldown)
        self.max_cooldown = float(max_cooldown)
        self.state = BREAKER_CLOSED
        self.consecutive = 0
        self.opens = 0       # every transition into OPEN (incl. re-opens)
        self.probing = False
        self._outcomes: List[bool] = []
        self._window = max(1, int(window))
        self._opened_at = 0.0
        self._next_cooldown = self.cooldown

    def allow(self) -> bool:
        """May regular traffic be routed to this worker right now?"""
        return self.state == BREAKER_CLOSED

    def ready_to_probe(self) -> bool:
        """Open, cooled down, and no probe already in flight?"""
        return (self.state == BREAKER_OPEN and not self.probing
                and time.monotonic() - self._opened_at >= self._next_cooldown)

    def begin_probe(self) -> None:
        """Move open -> half-open and claim the single probe slot."""
        self.state = BREAKER_HALF_OPEN
        self.probing = True

    def record_success(self) -> bool:
        """A request (or probe) succeeded; True if the circuit re-closed."""
        self._push(True)
        self.consecutive = 0
        if self.state == BREAKER_CLOSED:
            return False
        self.force_close()
        return True

    def record_failure(self) -> bool:
        """A request (or probe) failed; True if the circuit opened."""
        self._push(False)
        self.consecutive += 1
        if self.state == BREAKER_HALF_OPEN:
            # Failed probe: back off harder before the next one.
            self.probing = False
            self._open(self._next_cooldown * 2.0)
            return True
        if self.state == BREAKER_CLOSED and (
                self.consecutive >= self.consecutive_after
                or self._rate_tripped()):
            self._open(self.cooldown)
            return True
        return False

    def force_close(self) -> None:
        """Close the circuit and reset the backoff (probe success path)."""
        self.state = BREAKER_CLOSED
        self.probing = False
        self.consecutive = 0
        self._next_cooldown = self.cooldown

    def force_open(self) -> None:
        """Open the circuit by fiat (operator/test hook)."""
        self._open(self.cooldown)

    def _open(self, next_cooldown: float) -> None:
        self.state = BREAKER_OPEN
        self.opens += 1
        self._opened_at = time.monotonic()
        self._next_cooldown = min(next_cooldown, self.max_cooldown)

    def _rate_tripped(self) -> bool:
        if len(self._outcomes) < self.rate_min_samples:
            return False
        failures = self._outcomes.count(False)
        return failures / len(self._outcomes) > self.rate_threshold

    def _push(self, ok: bool) -> None:
        self._outcomes.append(ok)
        if len(self._outcomes) > self._window:
            del self._outcomes[0]

    def snapshot(self) -> Dict[str, object]:
        return {"state": self.state, "opens": self.opens,
                "consecutive_failures": self.consecutive,
                "window_failure_rate": (
                    self._outcomes.count(False) / len(self._outcomes)
                    if self._outcomes else 0.0),
                "cooldown_s": self._next_cooldown}


class WorkerLink:
    """One persistent, pipelined connection to a worker (or front tier).

    Many requests may be in flight at once; the 4-byte request id in the
    frame header matches responses back to futures, so a slow sub-batch
    never head-of-line-blocks a fast one.  A dead connection fails every
    pending future with :class:`WorkerUnavailable` and the next request
    reconnects lazily.
    """

    def __init__(self, host: str, port: int, name: str = "",
                 connect_timeout: float = 3.0):
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._req_ids = itertools.count(1)
        self._connect_lock = asyncio.Lock()
        # Health bookkeeping (maintained by the Frontend's failover path).
        self.requests = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.breaker = CircuitBreaker()
        # Feature negotiation: a peer that rejects a v2/v3 frame with
        # ERR_UNSUPPORTED_VERSION downgrades the link, which never sends
        # that field again — deadline first (v3), then trace (v2).
        self.trace_capable = True
        self.deadline_capable = True
        self.trace_sink: Optional[Callable[[Dict[str, Any]], None]] = None

    @property
    def ejected(self) -> bool:
        """Out of the rotation?  (The breaker is the source of truth.)"""
        return not self.breaker.allow()

    @ejected.setter
    def ejected(self, value: bool) -> None:
        if value:
            self.breaker.force_open()
        else:
            self.breaker.force_close()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        async with self._connect_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout)
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader), name=f"repro-net-link-{self.name}")

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                ftype, req_id, payload = frame
                if ftype == MSG_RESPONSE and frame.trace is not None \
                        and self.trace_sink is not None:
                    remote = unpack_trace_blob(frame.trace)
                    if remote is not None:
                        try:
                            self.trace_sink(remote)
                        except Exception:
                            pass  # tracing must never break the data path
                future = self._pending.pop(req_id, None)
                if future is None or future.done():
                    continue  # timed-out request answering late
                try:
                    if ftype == MSG_RESPONSE:
                        future.set_result(unpack_response(payload, req_id))
                    elif ftype == MSG_ERROR:
                        future.set_exception(
                            map_wire_error(unpack_error(payload, req_id)))
                    elif ftype == MSG_PONG:
                        future.set_result(None)
                    else:
                        future.set_exception(ProtocolError(
                            0, f"unexpected frame type {ftype}", req_id))
                except Exception as exc:
                    # A popped future must always settle — a decode crash
                    # here would otherwise strand its caller until timeout.
                    if not future.done():
                        future.set_exception(exc)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            self._teardown(WorkerUnavailable(
                f"connection to {self.name} closed"))

    def _teardown(self, exc: Exception) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        task, self._read_task = self._read_task, None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
        if writer is not None:
            writer.close()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def request(self, pairs, multiplicative: float = math.inf,
                      additive: float = math.inf, artifact: str = "",
                      timeout: Optional[float] = None,
                      trace: Optional[bytes] = None,
                      deadline: Optional[float] = None) -> np.ndarray:
        """Send one batched request; returns the distance array.

        ``deadline`` is an absolute ``time.monotonic()`` instant; the
        remaining budget is computed at send time and travels as the v3
        relative-seconds header field, so the receiving worker can stop
        working the moment nobody is waiting.
        """
        payload = pack_request(pairs, multiplicative, additive, artifact)
        send_trace = trace if self.trace_capable else None
        send_budget = None
        if deadline is not None and self.deadline_capable:
            send_budget = max(0.0, deadline - time.monotonic())
        while True:
            try:
                return await self._roundtrip(MSG_REQUEST, payload, timeout,
                                             trace=send_trace,
                                             deadline=send_budget)
            except ProtocolError as exc:
                if exc.code != ERR_UNSUPPORTED_VERSION or (
                        send_trace is None and send_budget is None):
                    raise
                # Old peer: negotiate down one feature per retry —
                # deadline (v3) first, then trace (v2) — and re-send.
                if send_budget is not None:
                    self.deadline_capable = False
                    send_budget = None
                else:
                    self.trace_capable = False
                    send_trace = None

    async def ping(self, timeout: Optional[float] = None) -> bool:
        try:
            await self._roundtrip(MSG_PING, b"", timeout)
            return True
        except RETRYABLE:
            return False

    async def _roundtrip(self, ftype: int, payload: bytes,
                         timeout: Optional[float],
                         trace: Optional[bytes] = None,
                         deadline: Optional[float] = None) -> np.ndarray:
        await self._ensure_connected()
        req_id = next(self._req_ids) & 0xFFFFFFFF
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self.requests += 1
        try:
            self._writer.write(encode_frame(ftype, req_id, payload,
                                            trace=trace, deadline=deadline))
            await self._writer.drain()
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except (ConnectionError, OSError) as exc:
            raise WorkerUnavailable(f"{self.name}: {exc}") from exc
        finally:
            self._pending.pop(req_id, None)

    async def close(self) -> None:
        task = self._read_task
        self._teardown(WorkerUnavailable(f"link to {self.name} closed"))
        if task is not None and task is not asyncio.current_task():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "connected": self.connected,
            "requests": self.requests,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "ejected": self.ejected,
            "breaker": self.breaker.snapshot(),
            "in_flight": len(self._pending),
        }


class Frontend(NetServiceBase):
    """Accept client connections; partition, fan out, retry, eject.

    Parameters
    ----------
    artifact_paths:
        The same artifact files/manifests the workers serve — read for
        metadata only (routing and shard ranges), never loaded.
    workers:
        ``(host, port)`` of every worker in the fleet.
    request_timeout:
        Per-sub-batch timeout for one worker attempt.
    max_attempts:
        Worker attempts per sub-batch (1 primary + retries on fallback
        workers) before the request fails with :class:`NetError`.
    eject_after:
        Consecutive failures after which a worker's circuit breaker
        opens and it leaves the rotation; its shard affinity re-routes
        to the survivors.  An open breaker is probed after a cooldown
        (half-open) and re-closes on a successful probe — readmission is
        automatic, not an operator action.
    failure_rate_threshold / failure_window:
        Second breaker trigger: failure rate above the threshold across
        the last ``failure_window`` outcomes opens the circuit even when
        successes keep resetting the consecutive counter.
    breaker_cooldown / breaker_max_cooldown:
        Seconds before an open breaker is probed; doubles per failed
        probe up to the cap.
    hedge_ratio:
        Hedged-request budget as a fraction of sub-batches sent (0
        disables hedging).  When a primary attempt is slower than the
        observed P95 attempt latency, one duplicate is sent to the next
        healthy worker and the first answer wins — tail latency is
        traded for bounded duplicate work.
    hedge_min_delay:
        Floor (seconds) for the hedge delay, so a cold latency window
        cannot cause hedge storms.
    """

    role = "frontend"

    def __init__(self, artifact_paths: Sequence[str],
                 workers: Sequence[Tuple[str, int]],
                 host: str = "127.0.0.1", port: int = 0, *,
                 request_timeout: float = 5.0, max_attempts: int = 3,
                 eject_after: int = 3, capacity: int = 8,
                 failure_rate_threshold: float = 0.5,
                 failure_window: int = 20,
                 breaker_cooldown: float = 1.0,
                 breaker_max_cooldown: float = 30.0,
                 hedge_ratio: float = 0.1,
                 hedge_min_delay: float = 0.05):
        super().__init__(host=host, port=port)
        if not workers:
            raise ValueError("frontend needs at least one worker address")
        self._registry = build_registry(artifact_paths, capacity=capacity)
        self._router = StretchRouter(self._registry)
        self._links = [
            WorkerLink(worker_host, worker_port, name=f"worker-{index}")
            for index, (worker_host, worker_port) in enumerate(workers)
        ]
        self.request_timeout = request_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.eject_after = max(1, int(eject_after))
        for link in self._links:
            link.breaker = CircuitBreaker(
                consecutive_after=self.eject_after,
                rate_threshold=failure_rate_threshold,
                window=failure_window,
                cooldown=breaker_cooldown,
                max_cooldown=breaker_max_cooldown)
        self.hedge_ratio = float(hedge_ratio)
        self.hedge_min_delay = float(hedge_min_delay)
        self.retries = 0
        self.failovers = 0
        self.ejections = 0
        self.readmits = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.deadline_rejections = 0
        self._subbatches = 0
        # Attempt latency window feeding the hedge delay (P95).
        self._attempt_latency = LatencyRecorder(window=512)
        self._probe_tasks: set = set()
        # Sampled traces in flight: trace id -> context.  Worker reply
        # blobs arriving on any link are folded into the matching context.
        self._live_traces: Dict[str, TraceContext] = {}
        for link in self._links:
            link.trace_sink = self._ingest_worker_trace
        self._register_frontend_metrics()

    def _register_frontend_metrics(self) -> None:
        registry = get_registry()
        for metric, help_text, reader in (
            ("repro_frontend_retries_total",
             "Sub-batch retries after a worker attempt failed",
             lambda f: f.retries),
            ("repro_frontend_failovers_total",
             "Sub-batches moved to a different worker",
             lambda f: f.failovers),
            ("repro_frontend_ejections_total",
             "Workers ejected from the rotation",
             lambda f: f.ejections),
            ("repro_frontend_readmits_total",
             "Ejected workers probed healthy and readmitted",
             lambda f: f.readmits),
            ("repro_frontend_hedges_total",
             "Duplicate sub-batches sent after the hedge delay",
             lambda f: f.hedges),
            ("repro_frontend_hedge_wins_total",
             "Hedged requests whose duplicate answered first",
             lambda f: f.hedge_wins),
            ("repro_frontend_deadline_rejections_total",
             "Requests rejected because their deadline had expired",
             lambda f: f.deadline_rejections),
            ("repro_frontend_breaker_opens_total",
             "Circuit-breaker transitions into the open state",
             lambda f: sum(link.breaker.opens for link in f._links)),
        ):
            registry.counter(metric, help_text).set_function(reader, self)
        registry.gauge(
            "repro_frontend_healthy_workers",
            "Workers currently in the rotation").set_function(
                lambda f: len(f.healthy_links()), self)

    def _ingest_worker_trace(self, payload: Dict[str, Any]) -> None:
        context = self._live_traces.get(str(payload.get("id", "")))
        if context is not None:
            context.ingest(payload)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request,
                             trace: Optional[TraceContext] = None,
                             deadline: Optional[float] = None,
                             ) -> np.ndarray:
        if self._draining:
            raise ServerClosed("frontend is draining")
        if deadline is not None and time.monotonic() >= deadline:
            # Admission check: don't fan out work nobody is waiting for.
            self.deadline_rejections += 1
            raise DeadlineExceeded(
                "request deadline expired at frontend admission")
        self._maybe_probe()
        if trace is not None:
            self._live_traces[trace.trace_id] = trace
        try:
            route_wall = time.time()
            route_tick = time.perf_counter_ns()
            entry = self._resolve(request)
            count = len(request)
            if count == 0:
                return np.zeros(0, dtype=np.float64)
            u = request.u.astype(np.int64, copy=False)
            v = request.v.astype(np.int64, copy=False)
            if (int(u.min()) < 0 or int(u.max()) >= entry.n
                    or int(v.min()) < 0 or int(v.max()) >= entry.n):
                raise ValueError(
                    f"request contains node ids outside [0, {entry.n})")
            healthy = self.healthy_links()
            if not healthy:
                raise NetError("no healthy workers remain in the fleet")
            assignment = self._assign(entry, u, v, len(healthy))
            if trace is not None:
                trace.add("frontend.route", route_wall,
                          (time.perf_counter_ns() - route_tick) / 1000.0)
            out = np.empty(count, dtype=np.float64)
            tasks = []
            slices: List[np.ndarray] = []
            trace_blob = (trace_capable_blob(trace.trace_id)
                          if trace is not None else None)
            for worker_index in range(len(healthy)):
                indices = np.nonzero(assignment == worker_index)[0]
                if indices.size == 0:
                    continue
                sub = np.empty((indices.size, 2), dtype=np.int32)
                sub[:, 0] = u[indices]
                sub[:, 1] = v[indices]
                slices.append(indices)
                tasks.append(self._fan_out(healthy, worker_index, sub,
                                           request, entry.name,
                                           trace_blob=trace_blob,
                                           deadline=deadline))
            fanout_wall = time.time()
            fanout_tick = time.perf_counter_ns()
            answered = await asyncio.gather(*tasks)
            if trace is not None:
                trace.add("frontend.fanout", fanout_wall,
                          (time.perf_counter_ns() - fanout_tick) / 1000.0)
            for indices, values in zip(slices, answered):
                out[indices] = values
            return out
        finally:
            if trace is not None:
                self._live_traces.pop(trace.trace_id, None)

    def _resolve(self, request: Request) -> ArtifactEntry:
        """Route the budget (or validate the pinned artifact) to an entry."""
        if request.artifact:
            entry = self._registry.get(request.artifact)
            if not budget_admits(entry.stretch, request.multiplicative,
                                 request.additive):
                raise RoutingError(
                    f"pinned artifact {request.artifact!r} exceeds the "
                    f"stretch budget {request.multiplicative:g}x+"
                    f"{request.additive:g}")
            return entry
        return self._router.route(multiplicative=request.multiplicative,
                                  additive=request.additive).entry

    def _assign(self, entry: ArtifactEntry, u: np.ndarray, v: np.ndarray,
                num_workers: int) -> np.ndarray:
        """Healthy-worker index per pair: shard affinity, else even chunks."""
        if num_workers == 1:
            return np.zeros(len(u), dtype=np.int64)
        if entry.sharded and entry.row_ranges:
            starts = np.asarray([start for start, _stop in entry.row_ranges],
                                dtype=np.int64)
            rows = np.minimum(u, v)  # the canonical row the gather reads
            shards = np.searchsorted(starts, rows, side="right") - 1
            return shards % num_workers
        return (np.arange(len(u), dtype=np.int64) * num_workers) // len(u)

    async def _fan_out(self, healthy: List[WorkerLink], start: int,
                       sub: np.ndarray, request: Request,
                       artifact: str,
                       trace_blob: Optional[bytes] = None,
                       deadline: Optional[float] = None) -> np.ndarray:
        """One sub-batch: primary worker, then bounded budget-aware failover.

        Each attempt's timeout is the smaller of ``request_timeout`` and
        the remaining deadline budget, so retries never outlive the
        caller's patience.  Transport failures and failover-safe remote
        errors (see :data:`FAILOVER_ERRORS`) move the sub-batch to the
        next healthy worker; if every attempt fails with a data-integrity
        error, that typed error propagates (the data, not the fleet, is
        the problem).

        The attempt budget is ``max_attempts`` even when fewer workers
        are in rotation: with one survivor, a transient drop on it is
        retried on the same link rather than failing the caller — the
        degraded fleet is exactly when retry slack matters most.
        """
        attempts = self.max_attempts
        last_exc: Optional[Exception] = None
        for attempt in range(attempts):
            link = healthy[(start + attempt) % len(healthy)]
            if not link.breaker.allow():
                continue
            timeout = self.request_timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.deadline_rejections += 1
                    raise DeadlineExceeded(
                        f"deadline expired after {attempt} worker attempt(s)"
                    ) from last_exc
                timeout = min(timeout, remaining)
            hedge_link = self._hedge_candidate(healthy, start, attempt)
            self._subbatches += 1
            try:
                values = await self._request_hedged(
                    link, hedge_link, sub, request, artifact, trace_blob,
                    timeout, deadline)
            except FAILOVER_ERRORS as exc:
                last_exc = exc
                if attempt + 1 < attempts:
                    self.retries += 1
                    next_link = healthy[(start + attempt + 1) % len(healthy)]
                    if next_link is not link:  # same-link retry ≠ failover
                        self.failovers += 1
                continue
            return values
        if isinstance(last_exc, ShardIntegrityError):
            raise ShardIntegrityError(
                f"sub-batch of {len(sub)} pairs hit persistent data "
                f"corruption after {attempts} attempt(s): {last_exc}"
            ) from last_exc
        raise NetError(
            f"sub-batch of {len(sub)} pairs failed after {attempts} "
            f"attempt(s): {last_exc}") from last_exc

    def _hedge_candidate(self, healthy: List[WorkerLink], start: int,
                         attempt: int) -> Optional[WorkerLink]:
        """The link a hedge would go to, or None when hedging is off-budget.

        The hedge budget is ``hedge_ratio`` of all sub-batches sent, so
        tail-chasing can never double the fleet's load; the candidate is
        the next breaker-closed link after the primary.
        """
        if len(healthy) < 2 or self.hedge_ratio <= 0:
            return None
        if self.hedges >= self.hedge_ratio * max(1, self._subbatches):
            return None
        for offset in range(1, len(healthy)):
            candidate = healthy[(start + attempt + offset) % len(healthy)]
            if candidate.breaker.allow():
                return candidate
        return None

    def _hedge_delay(self) -> float:
        """Seconds before a slow attempt is hedged: observed P95, clamped."""
        p95_us = self._attempt_latency.snapshot().get("p95_us")
        if not p95_us:
            return self.request_timeout  # cold window: never hedge blind
        return min(max(p95_us / 1e6, self.hedge_min_delay),
                   self.request_timeout)

    async def _request_hedged(self, link: WorkerLink,
                              hedge_link: Optional[WorkerLink],
                              sub: np.ndarray, request: Request,
                              artifact: str, trace_blob: Optional[bytes],
                              timeout: float,
                              deadline: Optional[float]) -> np.ndarray:
        """One worker attempt, optionally raced against a hedged duplicate.

        The duplicate goes out only if the primary is still unanswered
        after the hedge delay; the first clean answer wins and the loser
        is cancelled/consumed.  Requests are idempotent reads, so the
        duplicate is always safe.
        """
        primary = asyncio.ensure_future(self._timed_request(
            link, sub, request, artifact, trace_blob, timeout, deadline))
        hedged: Optional[asyncio.Future] = None
        if hedge_link is not None:
            delay = self._hedge_delay()
            if delay < timeout:
                done, _ = await asyncio.wait({primary}, timeout=delay)
                if not done:
                    self.hedges += 1
                    hedged = asyncio.ensure_future(self._timed_request(
                        hedge_link, sub, request, artifact, trace_blob,
                        timeout, deadline))
        if hedged is None:
            return await primary
        tasks = {primary, hedged}
        winner: Optional[asyncio.Future] = None
        while tasks and winner is None:
            done, tasks = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.exception() is None:
                    winner = task
                    break
        for task in (primary, hedged):
            if task is winner:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass  # loser outcome: cancelled, or its failure was noted
        if winner is None:
            raise primary.exception()  # both failed: primary's error stands
        if winner is hedged:
            self.hedge_wins += 1
        return winner.result()

    async def _timed_request(self, link: WorkerLink, sub: np.ndarray,
                             request: Request, artifact: str,
                             trace_blob: Optional[bytes], timeout: float,
                             deadline: Optional[float]) -> np.ndarray:
        """One wire attempt with breaker + latency-window bookkeeping."""
        tick = time.perf_counter_ns()
        try:
            values = await link.request(
                sub, request.multiplicative, request.additive,
                artifact=artifact, timeout=timeout, trace=trace_blob,
                deadline=deadline)
        except FAILOVER_ERRORS as exc:
            self._mark_failure(link)
            raise exc
        self._attempt_latency.record(time.perf_counter_ns() - tick)
        link.consecutive_failures = 0
        link.breaker.record_success()
        return values

    def _mark_failure(self, link: WorkerLink) -> None:
        link.failures += 1
        link.consecutive_failures += 1
        was_closed = link.breaker.state == BREAKER_CLOSED
        if link.breaker.record_failure() and was_closed:
            self.ejections += 1

    def _maybe_probe(self) -> None:
        """Kick off a background readmission probe per cooled-down breaker."""
        for index, link in enumerate(self._links):
            if link.breaker.ready_to_probe():
                link.breaker.begin_probe()
                task = asyncio.get_running_loop().create_task(
                    self._probe(index),
                    name=f"repro-net-probe-{link.name}")
                self._probe_tasks.add(task)
                task.add_done_callback(self._probe_tasks.discard)

    async def _probe(self, index: int) -> None:
        """Half-open single probe: PING the worker, close or re-open."""
        link = self._links[index]
        if await link.ping(timeout=self.request_timeout):
            self.readmits += 1
            link.consecutive_failures = 0
            link.breaker.force_close()
        else:
            link.breaker.record_failure()  # re-opens with doubled cooldown

    # ------------------------------------------------------------------
    # fleet health
    # ------------------------------------------------------------------
    def healthy_links(self) -> List[WorkerLink]:
        return [link for link in self._links if link.breaker.allow()]

    def links(self) -> List[WorkerLink]:
        return list(self._links)

    async def readmit(self, index: int) -> bool:
        """Probe an ejected worker; put it back in rotation if it answers.

        The explicit operator/test hook; the breaker's half-open probes
        (:meth:`_maybe_probe`) do the same thing automatically after
        each cooldown.
        """
        link = self._links[index]
        if await link.ping(timeout=self.request_timeout):
            if link.ejected:
                self.readmits += 1
            link.consecutive_failures = 0
            link.breaker.force_close()
            return True
        return False

    async def stop(self, drain_timeout: float = 5.0) -> None:
        await super().stop(drain_timeout)
        for task in list(self._probe_tasks):
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks, return_exceptions=True)
        for link in self._links:
            await link.close()

    def health(self) -> Dict[str, object]:
        health = super().health()
        health["workers"] = len(self._links)
        health["healthy_workers"] = len(self.healthy_links())
        return health

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["workers"] = [link.snapshot() for link in self._links]
        stats["failovers"] = self.failovers
        stats["retries"] = self.retries
        stats["ejections"] = self.ejections
        stats["readmits"] = self.readmits
        stats["hedges"] = self.hedges
        stats["hedge_wins"] = self.hedge_wins
        stats["deadline_rejections"] = self.deadline_rejections
        stats["hedge_delay_s"] = self._hedge_delay()
        stats["router"] = self._router.stats()
        return stats

    # ------------------------------------------------------------------
    # fleet metrics aggregation
    # ------------------------------------------------------------------
    async def _metrics_snapshot(self) -> Dict[str, Any]:
        """Local registry merged with every reachable worker's registry.

        Workers run in their own processes, so the frontend's in-process
        registry only sees the frontend tier.  Scraping each worker's
        ``/metricsz?format=json`` and merging makes the frontend's
        endpoint a one-stop fleet view.
        """
        local = get_registry().snapshot()
        remote = await asyncio.gather(
            *(self._scrape_worker(link.host, link.port)
              for link in self._links))
        scraped = [snap for snap in remote if snap is not None]
        merged = merge_snapshots([local] + scraped)
        merged["fleet"] = {"workers": len(self._links),
                           "workers_scraped": len(scraped)}
        return merged

    async def _scrape_worker(self, host: str, port: int,
                             timeout: float = 2.0,
                             ) -> Optional[Dict[str, Any]]:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout)
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(b"GET /metricsz?format=json HTTP/1.1\r\n"
                         b"Host: repro\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout)
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                pass
        head, _sep, body = raw.partition(b"\r\n\r\n")
        if b" 200 " not in head.split(b"\r\n", 1)[0]:
            return None
        try:
            snapshot = json.loads(body)
        except ValueError:
            return None
        return snapshot if isinstance(snapshot, dict) else None


class NetClient:
    """Client-side handle on a frontend (or a single worker) address.

    ``batch`` sends one wire request per call — the throughput path.
    ``dist`` awaits a single pair and, with coalescing enabled (the
    default), parks concurrent callers in a pending map that a flusher
    drains into one batched frame per micro-window — the same trick
    :class:`~repro.serve.server.DistanceServer` plays in-process, moved
    to the client edge of the wire.  Either way the answers are the
    engine's, bit for bit.

    Usable anywhere :class:`DistanceServer` is awaited: the load
    generator's closed/open-loop drivers accept it unchanged.
    """

    def __init__(self, host: str, port: int, *, client: str = "client",
                 coalesce_window: float = 0.0005, max_batch: int = 8192,
                 request_timeout: float = 10.0):
        self.link = WorkerLink(host, port, name=client)
        self.client = client
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self._pending: Dict[Tuple[float, float], Dict[Pair, asyncio.Future]] = {}
        self._wake = asyncio.Event()
        self._flusher: Optional[asyncio.Task] = None
        self._closed = False
        # Sampled request tracing: contexts parked alongside the pending
        # futures; the flusher turns the park time into a
        # ``client.coalesce`` span and the wire round trip into
        # ``client.request``.  Far-tier spans ride back in the response
        # frame's trace blob and land via the link's trace sink.
        self.tracer = get_tracer()
        self._live: Dict[str, TraceContext] = {}
        self._trace_meta: Dict[Tuple[float, float],
                               Dict[Pair, Tuple[TraceContext, float, int]]] = {}
        self.link.trace_sink = self._ingest_trace

    def _ingest_trace(self, payload: Dict[str, Any]) -> None:
        context = self._live.get(str(payload.get("id", "")))
        if context is not None:
            context.ingest(payload)

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        self._closed = True
        if self._flusher is not None:
            self._wake.set()
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        await self.link.close()

    async def batch(self, pairs, *, multiplicative: float = math.inf,
                    additive: float = math.inf, artifact: str = "",
                    ) -> np.ndarray:
        """One batched wire request (the ladder benchmark's hot path)."""
        return await self.link.request(
            pairs, multiplicative, additive, artifact=artifact,
            timeout=self.request_timeout,
            deadline=time.monotonic() + self.request_timeout)

    async def dist(self, u: int, v: int, *, multiplicative: float = math.inf,
                   additive: float = math.inf, client: str = "") -> float:
        """Single-pair query, transparently coalesced onto the wire."""
        if self._closed:
            raise ServerClosed("client is closed")
        if self.coalesce_window <= 0:
            return await self._dist_direct(u, v, multiplicative, additive)
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop(), name=f"repro-net-client-{self.client}")
        budget = (multiplicative, additive)
        bucket = self._pending.setdefault(budget, {})
        key = (u, v) if u <= v else (v, u)
        future = bucket.get(key)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            bucket[key] = future
            context = self.tracer.maybe_start()
            if context is not None:
                self._trace_meta.setdefault(budget, {})[key] = (
                    context, time.time(), time.perf_counter_ns())
            self._wake.set()
        return float(await future)

    async def _dist_direct(self, u: int, v: int, multiplicative: float,
                           additive: float) -> float:
        """Uncoalesced single pair; still traced when sampled."""
        context = self.tracer.maybe_start()
        trace_blob = None
        if context is not None:
            self._live[context.trace_id] = context
            trace_blob = trace_capable_blob(context.trace_id)
        wall = time.time()
        tick = time.perf_counter_ns()
        try:
            values = await self.link.request(
                [(u, v)], multiplicative, additive,
                timeout=self.request_timeout, trace=trace_blob,
                deadline=time.monotonic() + self.request_timeout)
        finally:
            if context is not None:
                context.add("client.request", wall,
                            (time.perf_counter_ns() - tick) / 1000.0)
                self._live.pop(context.trace_id, None)
                self.tracer.finish(context)
        return float(values[0])

    async def _flush_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                if self._pending:
                    await asyncio.sleep(self.coalesce_window)
                await self._flush()
        except asyncio.CancelledError:
            await self._flush()
            raise

    async def _flush(self) -> None:
        while self._pending:
            pending, self._pending = self._pending, {}
            trace_meta, self._trace_meta = self._trace_meta, {}
            for (multiplicative, additive), bucket in pending.items():
                keys = list(bucket)
                futures = list(bucket.values())
                meta = trace_meta.get((multiplicative, additive), {})
                for start in range(0, len(keys), self.max_batch):
                    chunk = keys[start:start + self.max_batch]
                    chunk_futures = futures[start:start + self.max_batch]
                    contexts = self._open_chunk_traces(chunk, meta)
                    trace_blob = (trace_capable_blob(contexts[0].trace_id)
                                  if contexts else None)
                    wall = time.time()
                    tick = time.perf_counter_ns()
                    try:
                        values = await self.link.request(
                            chunk, multiplicative, additive,
                            timeout=self.request_timeout, trace=trace_blob,
                            deadline=(time.monotonic()
                                      + self.request_timeout))
                    except Exception as exc:  # settle, never kill the loop
                        self._close_chunk_traces(contexts, wall, tick)
                        for future in chunk_futures:
                            if not future.done():
                                future.set_exception(
                                    exc if not isinstance(
                                        exc, asyncio.CancelledError)
                                    else WorkerUnavailable("client closing"))
                        continue
                    self._close_chunk_traces(contexts, wall, tick)
                    for future, value in zip(chunk_futures, values.tolist()):
                        if not future.done():
                            future.set_result(value)

    def _open_chunk_traces(self, chunk, meta) -> List[TraceContext]:
        """Stamp the coalesce span on every sampled pair in the chunk.

        Only the first context's id rides the wire (one frame carries one
        trace blob), so the carrier collects the far-tier spans; the rest
        still get their client-side timeline.
        """
        contexts: List[TraceContext] = []
        now = time.perf_counter_ns()
        for key in chunk:
            parked = meta.pop(key, None)
            if parked is None:
                continue
            context, wall, tick = parked
            context.add("client.coalesce", wall, (now - tick) / 1000.0)
            self._live[context.trace_id] = context
            contexts.append(context)
        return contexts

    def _close_chunk_traces(self, contexts: List[TraceContext],
                            wall: float, tick: int) -> None:
        duration_us = (time.perf_counter_ns() - tick) / 1000.0
        for context in contexts:
            context.add("client.request", wall, duration_us)
            self._live.pop(context.trace_id, None)
            self.tracer.finish(context)

    def stats(self) -> Dict[str, object]:
        return {"link": self.link.snapshot(),
                "pending": sum(len(bucket)
                               for bucket in self._pending.values())}


async def wait_until_healthy(addresses: Sequence[Tuple[str, int]],
                             timeout: float = 30.0,
                             interval: float = 0.1) -> None:
    """Block until every address answers a PING (cluster startup barrier)."""
    deadline = time.monotonic() + timeout
    for host, port in addresses:
        link = WorkerLink(host, port, name=f"probe-{host}:{port}")
        try:
            while True:
                if await link.ping(timeout=min(1.0, timeout)):
                    break
                if time.monotonic() >= deadline:
                    raise NetError(
                        f"worker at {host}:{port} not healthy after "
                        f"{timeout:.1f}s")
                await asyncio.sleep(interval)
        finally:
            await link.close()


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "FAILOVER_ERRORS",
    "Frontend",
    "NetClient",
    "RETRYABLE",
    "WorkerLink",
    "WorkerUnavailable",
    "map_wire_error",
    "wait_until_healthy",
]
