"""Asyncio TCP/HTTP servers for the net tier: shared base + worker process.

:class:`NetServiceBase` owns everything both tiers need to put sockets in
front of distance serving: the listening socket, per-connection dialect
sniffing (``RNET`` magic means binary frames, anything else is the
HTTP/JSON fallback on the same port), strict malformed-frame handling
(every failure becomes a typed MSG_ERROR frame or an HTTP error body —
nothing ever raises into the event loop), graceful drain, and wire
counters.  :class:`DistanceWorker` is the leaf: one process, one
:class:`~repro.serve.server.DistanceServer`, answering batched requests
through the vectorised :meth:`~repro.serve.server.DistanceServer.gather`
fast path.  ``worker_main`` is the ``multiprocessing`` entry point used
by :mod:`repro.net.cluster`: it builds the registry from the same shard
manifests every other worker maps (the OS page cache makes the N-process
fan-out nearly free), serves until SIGTERM/SIGINT, then drains.

Per-worker observability: ``GET /healthz`` answers liveness (and flips
to ``draining`` during shutdown); ``GET /statsz`` returns the wire
counters plus the full ``DistanceServer.stats()`` snapshot — including
the coalescing window *actually in effect*, not just the configured one.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.inject import injector_from_env
from repro.net.protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_NODES,
    ERR_DATA_INTEGRITY,
    ERR_DEADLINE_EXCEEDED,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_ROUTING,
    ERR_SHUTTING_DOWN,
    MAGIC,
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_REQUEST,
    MSG_RESPONSE,
    NetError,
    ProtocolError,
    Request,
    encode_frame,
    http_response,
    jsonable,
    pack_error,
    pack_response,
    read_frame,
    read_http_request,
    unpack_request,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, to_prometheus_text
from repro.obs.metrics import get_registry
from repro.obs.tracing import TraceContext, unpack_trace_blob
from repro.oracle.sharding import ShardIntegrityError
from repro.serve.registry import RegistryError
from repro.serve.router import RoutingError
from repro.serve.server import (
    DeadlineExceeded,
    DistanceServer,
    ServerClosed,
    ServerConfig,
    ServerOverloaded,
)


class NetServiceBase:
    """A TCP server speaking the binary frame protocol + HTTP fallback.

    Subclasses implement :meth:`handle_request` (answer one decoded
    :class:`~repro.net.protocol.Request` with a float64 array) and may
    extend :meth:`handle_http` with extra endpoints.  The base maps every
    exception class a handler can raise to its typed wire error, so a
    malformed or unserviceable request is *answered*, never propagated.
    """

    role = "service"

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._draining = False
        self.frames_in = 0
        self.frames_out = 0
        self.http_requests = 0
        self.protocol_errors = 0
        self.wire_errors = 0  # MSG_ERROR frames sent
        #: Optional :class:`repro.chaos.FaultInjector`; None (the normal
        #: case) keeps every wired site at one ``is None`` check.
        self.chaos = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror the wire counters onto the obs registry (callbacks)."""
        registry = get_registry()
        labels = {"role": self.role}
        for metric, help_text, read in (
            ("repro_net_frames_in_total", "Binary frames decoded",
             lambda s: s.frames_in),
            ("repro_net_frames_out_total", "Binary frames sent",
             lambda s: s.frames_out),
            ("repro_net_http_requests_total", "HTTP fallback requests",
             lambda s: s.http_requests),
            ("repro_net_protocol_errors_total",
             "Malformed frames or HTTP requests",
             lambda s: s.protocol_errors),
            ("repro_net_wire_errors_total", "MSG_ERROR frames sent",
             lambda s: s.wire_errors),
        ):
            registry.counter(metric, help_text,
                             labels=labels).set_function(read, self)
        registry.gauge(
            "repro_net_open_connections", "Connections currently served",
            labels=labels,
        ).set_function(lambda s: len(s._conn_tasks), self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "NetServiceBase":
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, let live connections finish."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def __aenter__(self) -> "NetServiceBase":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request,
                             trace: Optional[TraceContext] = None,
                             deadline: Optional[float] = None
                             ) -> np.ndarray:
        """Answer one request; append spans to ``trace`` when sampled.

        ``deadline`` is an absolute ``time.monotonic()`` instant (or
        None); handlers raise
        :class:`~repro.serve.server.DeadlineExceeded` when it has
        already passed rather than doing doomed work.
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "role": self.role,
            "address": f"{self.host}:{self.port}",
            "draining": self._draining,
            "net": {
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "http_requests": self.http_requests,
                "protocol_errors": self.protocol_errors,
                "wire_errors": self.wire_errors,
                "open_connections": len(self._conn_tasks),
            },
        }
        if self.chaos is not None:
            stats["chaos"] = {"injected": self.chaos.injected,
                              "counts": self.chaos.counts()}
        return stats

    # ------------------------------------------------------------------
    # per-connection dispatch
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            # Dialect sniff: the first four bytes decide binary vs HTTP.
            sniff = b""
            while len(sniff) < len(MAGIC):
                chunk = await reader.read(len(MAGIC) - len(sniff))
                if not chunk:
                    return  # peer connected and left without a request
                sniff += chunk
            if sniff == MAGIC:
                await self._serve_binary(reader, writer, sniff)
            else:
                await self._serve_http(reader, writer, sniff)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass  # peer went away (or drain cancelled us) — never raise
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_binary(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            preread: bytes) -> None:
        """Frame loop: many pipelined requests per connection."""
        while True:
            try:
                frame = await read_frame(reader, preread=preread)
            except ProtocolError as exc:
                # Framing is broken: stream sync is lost, so answer the
                # typed error and close rather than guess at boundaries.
                self.protocol_errors += 1
                await self._send_error(writer, exc.req_id, exc.code, str(exc))
                return
            preread = b""
            if frame is None:
                return  # clean close between frames
            ftype, req_id, payload = frame
            self.frames_in += 1
            if ftype == MSG_PING:
                if not await self._send(writer, encode_frame(MSG_PONG, req_id)):
                    return
                continue
            if ftype != MSG_REQUEST:
                self.protocol_errors += 1
                await self._send_error(
                    writer, req_id, ERR_BAD_FRAME,
                    f"unexpected frame type {ftype} (expected REQUEST)")
                return
            try:
                request = unpack_request(payload, req_id)
            except ProtocolError as exc:
                # The frame boundary was sound (length prefix honoured),
                # only the payload is malformed: answer and keep serving.
                self.protocol_errors += 1
                if not await self._send_error(writer, req_id, exc.code,
                                              str(exc)):
                    return
                continue
            # The wire carries a *relative* budget (clock-skew safe);
            # re-anchor it to this process's monotonic clock on receipt.
            deadline = (time.monotonic() + frame.deadline
                        if frame.deadline is not None else None)
            if self.chaos is not None:
                verdict = await self._chaos_recv(writer, req_id)
                if verdict == "close":
                    return
                if verdict == "answered":
                    continue
            code, message, values, reply_trace = await self._answer(
                request, frame.trace, deadline=deadline)
            if values is not None:
                data = encode_frame(MSG_RESPONSE, req_id,
                                    pack_response(values), trace=reply_trace)
            else:
                self.wire_errors += 1
                data = encode_frame(MSG_ERROR, req_id,
                                    pack_error(code, message))
            if self.chaos is not None:
                spec = self.chaos.pick("worker.send")
                if spec is not None:
                    if spec.kind == "drop_connection":
                        return  # response lost: peer sees a dead link
                    if spec.kind == "corrupt_frame":
                        # Stomp the magic so the peer *detects* a broken
                        # frame (typed teardown + retry) — chaos must
                        # never corrupt distances silently.
                        data = b"\xff" * len(MAGIC) + data[len(MAGIC):]
            if not await self._send(writer, data):
                return  # client disconnected mid-request: stop quietly

    async def _chaos_recv(self, writer: asyncio.StreamWriter,
                          req_id: int) -> str:
        """Roll the ``worker.recv`` site; return what the frame loop does.

        ``"close"`` tears the connection down, ``"answered"`` means a
        fake error frame already went out, ``"continue"`` proceeds to
        the real handler (possibly after an injected stall).
        """
        spec = self.chaos.pick("worker.recv")
        if spec is None:
            return "continue"
        if spec.kind == "drop_connection":
            return "close"
        if spec.kind == "shed":
            ok = await self._send_error(writer, req_id, ERR_OVERLOADED,
                                        "chaos: injected shed")
            return "answered" if ok else "close"
        if spec.kind == "error_frame":
            ok = await self._send_error(writer, req_id, ERR_INTERNAL,
                                        "chaos: injected internal error")
            return "answered" if ok else "close"
        if spec.kind == "stuck_worker":
            # Deliberately block the event loop: /healthz stalls too,
            # which is exactly what the cluster supervisor looks for.
            time.sleep((spec.ms or 60000.0) / 1000.0)
        elif spec.ms:
            await asyncio.sleep(spec.ms / 1000.0)
        return "continue"

    async def _answer(self, request: Request,
                      trace_blob: Optional[bytes] = None,
                      deadline: Optional[float] = None,
                      ) -> Tuple[int, str, Optional[np.ndarray],
                                 Optional[bytes]]:
        """Run the handler, mapping every failure to a typed wire error.

        A request-side trace blob (the upstream tier sampled this
        request) opens a local :class:`TraceContext` under the same id;
        the spans the handler records travel back in the response frame's
        trace blob — responses carry a trace exactly when the request
        did, so version-1 peers never see a version-2 frame.
        """
        trace: Optional[TraceContext] = None
        payload = unpack_trace_blob(trace_blob)
        if payload is not None:
            trace = TraceContext(payload["id"], self.role)
        try:
            values = await self.handle_request(request, trace=trace,
                                               deadline=deadline)
            reply = trace.to_blob() if trace is not None else None
            return 0, "", values, reply
        except (ServerClosed,) as exc:
            return ERR_SHUTTING_DOWN, str(exc), None, None
        except ServerOverloaded as exc:
            return ERR_OVERLOADED, str(exc), None, None
        except DeadlineExceeded as exc:
            return ERR_DEADLINE_EXCEEDED, str(exc), None, None
        except ShardIntegrityError as exc:
            return ERR_DATA_INTEGRITY, str(exc), None, None
        except (RoutingError, RegistryError) as exc:
            return ERR_ROUTING, str(exc), None, None
        except ValueError as exc:
            return ERR_BAD_NODES, str(exc), None, None
        except ProtocolError as exc:
            return exc.code, str(exc), None, None
        except NetError as exc:
            return ERR_INTERNAL, str(exc), None, None
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # the event-loop firewall
            return ERR_INTERNAL, f"{type(exc).__name__}: {exc}", None, None

    # ------------------------------------------------------------------
    # HTTP fallback
    # ------------------------------------------------------------------
    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          preread: bytes) -> None:
        self.http_requests += 1
        try:
            parsed = await read_http_request(reader, preread=preread)
        except ProtocolError as exc:
            self.protocol_errors += 1
            writer.write(http_response(400, {"error": "bad-request",
                                             "message": str(exc)}))
            await writer.drain()
            return
        if parsed is None:
            return
        method, path, _headers, body = parsed
        result = await self._http_route(method, path, body)
        status, payload = result[0], result[1]
        content_type = result[2] if len(result) > 2 else "application/json"
        writer.write(http_response(status, payload, content_type))
        await writer.drain()

    async def _http_route(self, method: str, path: str, body: bytes
                          ) -> Tuple:
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return 200, self.health()
        if path == "/statsz":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return 200, jsonable(self.stats())
        if path == "/metricsz":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return await self._http_metrics(query)
        if path == "/query":
            if method != "POST":
                return 405, {"error": "method-not-allowed"}
            return await self._http_query(body)
        return 404, {"error": "not-found",
                     "endpoints": ["/healthz", "/statsz", "/metricsz",
                                   "/query"]}

    async def _http_metrics(self, query: str) -> Tuple:
        """``GET /metricsz``: Prometheus text, or the mergeable JSON
        snapshot with ``?format=json`` (what the fleet aggregator pulls)."""
        snapshot = await self._metrics_snapshot()
        if "format=json" in query:
            return 200, jsonable(snapshot)
        return (200, to_prometheus_text(snapshot).encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE)

    async def _metrics_snapshot(self) -> Dict[str, object]:
        """This process's registry snapshot (the frontend overrides this
        with a fleet scrape-and-merge)."""
        return get_registry().snapshot()

    def health(self) -> Dict[str, object]:
        return {"status": "draining" if self._draining else "ok",
                "role": self.role, "port": self.port}

    async def _http_query(self, body: bytes) -> Tuple[int, object]:
        """JSON twin of the binary request, for curl-ability.

        ``{"pairs": [[u, v], ...], "multiplicative": m, "additive": a,
        "artifact": name}`` — only ``pairs`` is required.  Unreachable
        pairs come back as the string ``"inf"`` (strict JSON has no
        Infinity); the binary protocol carries real IEEE infinities.
        """
        try:
            spec = json.loads(body or b"{}")
            pairs = spec["pairs"]
            request = Request(
                u=np.asarray([pair[0] for pair in pairs], dtype=np.int32),
                v=np.asarray([pair[1] for pair in pairs], dtype=np.int32),
                multiplicative=float(spec.get("multiplicative", math.inf)),
                additive=float(spec.get("additive", math.inf)),
                artifact=str(spec.get("artifact", "")),
            )
        except (KeyError, TypeError, ValueError, IndexError,
                json.JSONDecodeError) as exc:
            return 400, {"error": "bad-request",
                         "message": f"malformed query body: {exc}"}
        code, message, values, _reply_trace = await self._answer(request)
        if values is None:
            status = {ERR_OVERLOADED: 503, ERR_SHUTTING_DOWN: 503,
                      ERR_ROUTING: 404, ERR_BAD_NODES: 400,
                      ERR_BAD_FRAME: 400}.get(code, 500)
            from repro.net.protocol import ERROR_NAMES

            return status, {"error": ERROR_NAMES.get(code, str(code)),
                            "message": message}
        return 200, {"distances": jsonable(values.tolist())}

    # ------------------------------------------------------------------
    # send helpers
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            return False  # mid-request client disconnect: drop quietly
        self.frames_out += 1
        return True

    async def _send_error(self, writer: asyncio.StreamWriter, req_id: int,
                          code: int, message: str) -> bool:
        self.wire_errors += 1
        return await self._send(
            writer, encode_frame(MSG_ERROR, req_id, pack_error(code, message)))


class DistanceWorker(NetServiceBase):
    """One worker process: a socket front end over one DistanceServer.

    Batched requests resolve through the server's vectorised
    :meth:`~repro.serve.server.DistanceServer.gather` — one route, one
    validation pass, and one engine gather chain per *frame*.  The
    artifact hint pins the table a front tier routed to; requests without
    a hint route by stretch budget exactly like in-process callers.
    """

    role = "worker"

    def __init__(self, server: DistanceServer, host: str = "127.0.0.1",
                 port: int = 0, worker_id: int = 0):
        super().__init__(host=host, port=port)
        self.worker_id = worker_id
        self.server = server

    async def handle_request(self, request: Request,
                             trace: Optional[TraceContext] = None,
                             deadline: Optional[float] = None
                             ) -> np.ndarray:
        if self._draining:
            raise ServerClosed("worker is draining")
        if deadline is not None and time.monotonic() >= deadline:
            # Dequeue-time check: the frame sat behind enough pipelined
            # work (or injected stalls) that nobody is waiting anymore.
            raise DeadlineExceeded(
                "request deadline expired before the worker dequeued it")
        if self.chaos is not None:
            spec = self.chaos.pick("worker.gather")
            if spec is not None and spec.ms:
                await asyncio.sleep(spec.ms / 1000.0)
        return await self.server.gather(
            request.u, request.v,
            multiplicative=request.multiplicative,
            additive=request.additive,
            client="net",
            artifact=request.artifact or None,
            trace=trace,
            deadline=deadline,
        )

    def health(self) -> Dict[str, object]:
        health = super().health()
        health["worker_id"] = self.worker_id
        return health

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["worker_id"] = self.worker_id
        # Includes the adaptive coalescing window actually in effect
        # (stats["server"]["coalescing"]["window_s"]) next to the
        # configured knob — /statsz is where operators read the truth.
        stats["server"] = self.server.stats()
        # Residency per loaded engine (resident vs mapped bytes, shard
        # faults) so a fleet's memory story is one /statsz sweep away,
        # not a loadgen --report-residency run.
        stats["memory"] = {name: engine.memory_stats()
                           for name, engine
                           in sorted(self.server.engines().items())}
        return stats


async def run_worker(artifact_paths: Sequence[str], host: str, port: int,
                     *, worker_id: int = 0, capacity: int = 4,
                     config: Optional[ServerConfig] = None,
                     ready: Optional[asyncio.Event] = None,
                     stop: Optional[asyncio.Event] = None) -> None:
    """Serve one worker until ``stop`` (or SIGTERM/SIGINT), then drain.

    Builds the registry from ``artifact_paths`` (metadata only — engines
    load lazily on first query, shard payloads stay memory-mapped), binds
    the socket, and installs signal handlers for graceful drain: stop
    accepting, finish in-flight frames, flush the coalescer, exit.
    """
    from repro.serve.registry import build_registry
    from repro.serve.router import StretchRouter

    registry = build_registry(artifact_paths, capacity=capacity)
    server = DistanceServer(StretchRouter(registry),
                            config=config or ServerConfig())
    worker = DistanceWorker(server, host=host, port=port, worker_id=worker_id)
    # Fault injection rides in on REPRO_CHAOS (inherited from the Cluster
    # spawner); a malformed plan fails the worker loudly at startup.
    worker.chaos = injector_from_env(worker_id)
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loops: rely on the stop event
    async with server:
        await worker.start()
        if ready is not None:
            ready.set()
        try:
            await stop.wait()
        finally:
            await worker.stop()


def worker_main(artifact_paths: Sequence[str], host: str, port: int,
                worker_id: int = 0, capacity: int = 4,
                config_kwargs: Optional[dict] = None) -> None:
    """``multiprocessing`` entry point: one worker process, one event loop."""
    config = ServerConfig(**(config_kwargs or {}))
    try:
        asyncio.run(run_worker(artifact_paths, host, port,
                               worker_id=worker_id, capacity=capacity,
                               config=config))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C
        pass


__all__ = [
    "DistanceWorker",
    "NetServiceBase",
    "run_worker",
    "worker_main",
]
