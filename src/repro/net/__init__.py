"""repro.net — wire protocol + multi-worker distance-serving tier.

The network face of :mod:`repro.serve`: a framed binary TCP protocol
with an HTTP/JSON fallback on the same port (:mod:`repro.net.protocol`),
per-process workers wrapping one :class:`~repro.serve.DistanceServer`
each (:mod:`repro.net.worker`), a front tier that partitions batches by
shard affinity and survives worker death (:mod:`repro.net.frontend`),
process management for local fleets (:mod:`repro.net.cluster`), and the
service-grade benchmark campaign behind ``repro net bench``
(:mod:`repro.net.bench`).  Stdlib-only on top of numpy: asyncio sockets
and multiprocessing, no new dependencies.
"""

from repro.net.cluster import Cluster, free_port
from repro.net.frontend import (
    Frontend,
    NetClient,
    WorkerLink,
    WorkerUnavailable,
    wait_until_healthy,
)
from repro.net.protocol import NetError, ProtocolError, Request
from repro.net.worker import DistanceWorker, NetServiceBase, run_worker, worker_main

__all__ = [
    "Cluster",
    "DistanceWorker",
    "Frontend",
    "NetClient",
    "NetError",
    "NetServiceBase",
    "ProtocolError",
    "Request",
    "WorkerLink",
    "WorkerUnavailable",
    "free_port",
    "run_worker",
    "wait_until_healthy",
    "worker_main",
]
