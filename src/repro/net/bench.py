"""Service-grade benchmark campaign for the net tier (``repro net bench``).

Methodology follows the serverless-benchmarking playbook (cold/warm
split, a concurrency ladder, raw per-request samples next to the merged
summary) applied to the distance-serving fleet:

* **cold/warm** — the first batch against a freshly spawned cluster pays
  worker engine loads and shard page faults; steady-state batches pay
  only the gather.  Both are reported, never averaged together.
* **concurrency ladder** — 1/10/50/500 closed-loop clients drive Zipf
  workloads through the front tier as batched wire requests; each rung
  reports pairs/sec, per-request P50/P95/P99, and error rate, and pours
  its raw samples into a JSONL file that
  :meth:`~repro.serve.loadgen.LoadReport.from_jsonl` merges back into a
  campaign-level report (the summary is recomputed from raw samples, so
  the two can be cross-checked).
* **baseline** — the same workload against a single in-process
  :class:`~repro.serve.server.DistanceServer` at the same concurrency.
  The acceptance gate: the multi-worker TCP path must reach at least
  ``SPEEDUP_FLOOR`` (1.5x) of the in-process per-pair path on the
  50-client rung.  On a one-core host that speedup cannot come from
  parallelism — it comes from the batch-native wire (one vectorised
  gather per frame vs one future per pair).
* **failover** — per-pair coalescing clients drive the 2-worker fleet
  while one worker is SIGKILLed at ~40% progress; every answer is
  replayed against a direct engine.  Gates: **zero** wrong answers,
  error rate below ``FAILOVER_ERROR_CEILING`` (1%) after re-routing.

Full runs write ``BENCH_PR6.json`` at the repo root; ``--smoke`` runs a
reduced grid and exits non-zero if any gate fails — CI's ``net-smoke``
job runs it on every push.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.cluster import Cluster, free_port
from repro.net.frontend import Frontend, NetClient, WorkerUnavailable
from repro.net.protocol import NetError, ProtocolError
from repro.obs.metrics import get_registry
from repro.serve.loadgen import (
    DEFAULT_ERROR_TYPES,
    LoadReport,
    count_mismatches,
    run_closed_loop,
    zipf_pairs,
)
from repro.serve.registry import build_registry
from repro.serve.router import StretchRouter
from repro.serve.server import DistanceServer, ServerConfig

#: Committed campaign results (written by full runs, shipped with the repo).
DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_PR6.json"

#: Acceptance gates (also asserted by the CI smoke run).
SPEEDUP_FLOOR = 1.5
FAILOVER_ERROR_CEILING = 0.01

#: Everything a verified load run over the wire counts as a failed
#: request — loadgen's defaults plus the transport layer.  Shared with
#: ``benchmarks/bench_chaos.py`` and ``repro net serve --self-test``.
NET_ERROR_TYPES: Tuple[type, ...] = DEFAULT_ERROR_TYPES + (
    NetError, ProtocolError, WorkerUnavailable, ConnectionError,
    TimeoutError)

FULL_RUNGS = (1, 10, 50, 500)
SMOKE_RUNGS = (1, 10, 50)
GATE_RUNG = 50


def synthetic_sharded_artifact(directory: Path, n: int = 1024,
                               num_shards: int = 8, seed: int = 0) -> Path:
    """Write a synthetic dense-apsp artifact as row shards; return manifest.

    The campaign measures *serving*, so the distance table is synthesised
    (symmetric, zero diagonal, flagged ``synthetic``) instead of built by
    the paper's APSP pipeline — same payload shape, minutes cheaper.
    """
    from repro.oracle import get_strategy
    from repro.oracle.sharding import write_sharded_artifact

    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 100, size=(n, n)).astype(np.float64)
    dist = np.minimum(weights, weights.T)
    np.fill_diagonal(dist, 0.0)
    guarantee = get_strategy("dense-apsp").guarantee(0.5, 99.0)
    metadata = {
        "strategy": "dense-apsp",
        "n": n,
        "num_edges": 8 * n,
        "epsilon": 0.5,
        "max_weight": 99.0,
        "stretch": guarantee.as_dict(),
        "build": {"rounds": 0, "seconds": 0.0, "kernel": "auto",
                  "synthetic": True},
    }
    manifest, _shards = write_sharded_artifact(
        metadata, {"dist": dist}, directory / f"net-bench-n{n}.npz",
        num_shards)
    return manifest


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
async def bench_inprocess(manifest: Path, pairs: Sequence[Tuple[int, int]],
                          rungs: Sequence[int]) -> Dict[str, Dict]:
    """Per-pair closed loop against one in-process DistanceServer."""
    registry = build_registry([str(manifest)])
    server = DistanceServer(StretchRouter(registry), config=ServerConfig())
    results: Dict[str, Dict] = {}
    async with server:
        for rung in rungs:
            report = await run_closed_loop(server, pairs, concurrency=rung,
                                           client=f"inproc-{rung}")
            results[str(rung)] = {
                "clients": rung,
                "qps": report.achieved_qps,
                "p50_us": report.latency.get("p50_us"),
                "p95_us": report.latency.get("p95_us"),
                "p99_us": report.latency.get("p99_us"),
                "errors": report.errors,
                "shed": report.shed,
            }
    return results


async def bench_cold_warm(frontend: Frontend,
                          pairs: Sequence[Tuple[int, int]],
                          reference, batch_size: int,
                          warm_batches: int = 20) -> Dict[str, object]:
    """First-batch (cold) vs steady-state (warm) latency through the wire.

    Cold includes each worker's lazy engine load and first shard faults.
    The cold batch is verified against the reference engine — a cold
    fleet must be correct, not merely alive.
    """
    batch = pairs[:batch_size]
    async with NetClient(*frontend.address, client="coldwarm") as client:
        started = time.perf_counter()
        cold_values = await client.batch(batch)
        cold_s = time.perf_counter() - started
        mismatches = count_mismatches(batch, cold_values.tolist(), reference)
        warm = []
        for _ in range(warm_batches):
            started = time.perf_counter()
            await client.batch(batch)
            warm.append(time.perf_counter() - started)
    return {
        "batch_pairs": len(batch),
        "cold_ms": cold_s * 1e3,
        "warm_p50_ms": statistics.median(warm) * 1e3,
        "warm_min_ms": min(warm) * 1e3,
        "cold_over_warm": cold_s / max(1e-9, statistics.median(warm)),
        "cold_batch_mismatches": mismatches,
    }


async def _ladder_rung(frontend: Frontend, pairs: Sequence[Tuple[int, int]],
                       clients: int, batch_size: int,
                       raw_path: Optional[Path]) -> Dict[str, object]:
    """One rung: ``clients`` closed-loop clients issuing batched requests."""
    chunks = [pairs[start:start + batch_size]
              for start in range(0, len(pairs), batch_size)]
    chunk_iter = iter(range(len(chunks)))
    # Percentiles come from the same obs recorder family every other tier
    # uses, so `repro obs snapshot` during a campaign shows the ladder's
    # live latency series next to the server-side ones.
    recorder = get_registry().recorder(
        "repro_net_bench_request_latency_us",
        "Per-request wire latency on the benchmark ladder",
        labels={"rung": str(clients)}, window=1 << 20).recorder
    samples: List[Dict[str, object]] = []
    counters = {"ok": 0, "error": 0, "ok_pairs": 0}

    async def client_loop(client_id: int) -> None:
        async with NetClient(*frontend.address,
                             client=f"rung{clients}-c{client_id}") as client:
            for index in chunk_iter:
                chunk = chunks[index]
                issued = time.time()
                started = time.perf_counter_ns()
                status = "ok"
                try:
                    await client.batch(chunk)
                except (NetError, ProtocolError, ConnectionError,
                        TimeoutError) + DEFAULT_ERROR_TYPES:
                    status = "error"
                elapsed_us = (time.perf_counter_ns() - started) / 1000.0
                if status == "ok":
                    counters["ok"] += 1
                    counters["ok_pairs"] += len(chunk)
                    recorder.record(int(elapsed_us * 1000))
                else:
                    counters["error"] += 1
                samples.append({
                    "t": issued, "client": f"rung{clients}/c{client_id}",
                    "latency_us": elapsed_us, "status": status,
                    "pairs": len(chunk),
                })

    started = time.perf_counter()
    await asyncio.gather(*(client_loop(client_id)
                           for client_id in range(min(clients, len(chunks)))))
    duration = max(1e-9, time.perf_counter() - started)
    if raw_path is not None:
        report = LoadReport(
            mode="net-ladder", requested=len(chunks),
            completed=counters["ok"], shed=0, errors=counters["error"],
            duration_s=duration, achieved_qps=counters["ok"] / duration,
            offered_qps=None, latency=recorder.snapshot(), samples=samples)
        report.write_samples_jsonl(str(raw_path))
    latency = recorder.snapshot()
    requests = counters["ok"] + counters["error"]
    return {
        "clients": clients,
        "requests": requests,
        "batch_pairs": batch_size,
        "duration_s": duration,
        "qps": counters["ok_pairs"] / duration,
        "request_p50_us": latency.get("p50_us"),
        "request_p95_us": latency.get("p95_us"),
        "request_p99_us": latency.get("p99_us"),
        "errors": counters["error"],
        "error_rate": counters["error"] / requests if requests else 0.0,
        "raw_jsonl": raw_path.name if raw_path is not None else None,
    }


class _CountingClient:
    """Progress-counting wrapper so the chaos monkey can aim mid-run."""

    def __init__(self, inner: NetClient):
        self.inner = inner
        self.done = 0

    async def dist(self, u: int, v: int, **kwargs) -> float:
        try:
            return await self.inner.dist(u, v, **kwargs)
        finally:
            self.done += 1


async def bench_failover(frontend: Frontend, cluster: Cluster,
                         pairs: Sequence[Tuple[int, int]], reference,
                         victim: int = 0, kill_at: float = 0.4,
                         concurrency: int = 20,
                         raw_path: Optional[Path] = None) -> Dict[str, object]:
    """Kill one worker mid-run; gate zero wrong answers + low error rate.

    The loadgen drives per-pair coalescing clients (the strictest path:
    every pair is individually awaited, so a lost in-flight frame is a
    per-pair failure, not a whole-campaign one).  At ``kill_at`` progress
    the victim worker is SIGKILLed; the front tier's link teardown fails
    its in-flight sub-batches, the retry path re-sends them to the
    survivor, and the ejection threshold removes the corpse from
    rotation.  Every completed answer is then replayed through a direct
    engine.
    """
    async with NetClient(*frontend.address, client="failover") as client:
        counting = _CountingClient(client)

        async def chaos() -> Dict[str, object]:
            target = int(len(pairs) * kill_at)
            while counting.done < target:
                await asyncio.sleep(0.005)
            killed_at = counting.done
            await asyncio.to_thread(cluster.kill_worker, victim)
            return {"victim": victim, "killed_after_pairs": killed_at}

        load_task = asyncio.ensure_future(run_closed_loop(
            counting, pairs, concurrency=concurrency, client="failover",
            error_types=NET_ERROR_TYPES, collect_samples=True))
        kill_info = await chaos()
        report = await load_task
    if raw_path is not None:
        report.write_samples_jsonl(str(raw_path))
    mismatches = count_mismatches(pairs, report.answers, reference)
    healthy = [link.snapshot() for link in frontend.links()]
    return {
        **kill_info,
        "requested": report.requested,
        "completed": report.completed,
        "errors": report.errors,
        "shed": report.shed,
        "error_rate": report.errors / report.requested,
        "mismatches": mismatches,
        "duration_s": report.duration_s,
        "qps": report.achieved_qps,
        "ejections": frontend.ejections,
        "failovers": frontend.failovers,
        "workers": healthy,
        "raw_jsonl": raw_path.name if raw_path is not None else None,
    }


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
async def run_campaign(manifest: Path, *, workers: int, rungs: Sequence[int],
                       queries: int, failover_queries: int, batch_size: int,
                       seed: int, raw_dir: Path, n: int) -> Dict[str, object]:
    pairs = zipf_pairs(n, queries, skew=1.0, seed=seed)
    failover_pairs = zipf_pairs(n, failover_queries, skew=1.0, seed=seed + 1)
    ref_registry = build_registry([str(manifest)])
    reference = ref_registry.engine(ref_registry.entries()[0].name)

    results: Dict[str, object] = {}
    print(f"-- in-process baseline (rungs {list(rungs)}) --", flush=True)
    results["inprocess"] = await bench_inprocess(manifest, pairs, rungs)
    for rung, row in results["inprocess"].items():
        print(f"  inproc x{rung:>3}: {row['qps']:,.0f} qps", flush=True)

    with Cluster([str(manifest)], num_workers=workers) as cluster:
        frontend = Frontend([str(manifest)], cluster.addresses,
                            port=free_port())
        await frontend.start()
        try:
            print(f"-- cluster up: {workers} workers on "
                  f"{[port for _, port in cluster.addresses]}, frontend on "
                  f"{frontend.port} --", flush=True)
            results["cold_warm"] = await bench_cold_warm(
                frontend, pairs, reference, batch_size)
            print(f"  cold {results['cold_warm']['cold_ms']:.1f}ms vs warm "
                  f"{results['cold_warm']['warm_p50_ms']:.2f}ms", flush=True)

            ladder: Dict[str, Dict] = {}
            for rung in rungs:
                raw_path = raw_dir / f"net_rung_{rung}.jsonl"
                raw_path.unlink(missing_ok=True)
                ladder[str(rung)] = await _ladder_rung(
                    frontend, pairs, rung, batch_size, raw_path)
                print(f"  net    x{rung:>3}: {ladder[str(rung)]['qps']:,.0f} "
                      f"pairs/s, req P99 "
                      f"{ladder[str(rung)]['request_p99_us']:.0f}us, "
                      f"errors {ladder[str(rung)]['errors']}", flush=True)
            results["ladder"] = ladder

            merged = LoadReport.from_jsonl(
                [str(raw_dir / f"net_rung_{rung}.jsonl") for rung in rungs])
            summary = merged.as_dict()
            summary.pop("residency", None)
            results["merged_from_jsonl"] = summary

            failover_raw = raw_dir / "failover.jsonl"
            failover_raw.unlink(missing_ok=True)
            results["failover"] = await bench_failover(
                frontend, cluster, failover_pairs, reference,
                raw_path=failover_raw)
            print(f"  failover: {results['failover']['completed']}/"
                  f"{results['failover']['requested']} ok, "
                  f"{results['failover']['errors']} errors, "
                  f"{results['failover']['mismatches']} mismatches",
                  flush=True)
        finally:
            await frontend.stop()

    gate_rung = str(GATE_RUNG if GATE_RUNG in rungs else max(rungs))
    speedup = (results["ladder"][gate_rung]["qps"]
               / max(1e-9, results["inprocess"][gate_rung]["qps"]))
    results["speedup"] = {
        "rung": int(gate_rung),
        "net_qps": results["ladder"][gate_rung]["qps"],
        "inprocess_qps": results["inprocess"][gate_rung]["qps"],
        "net_over_inprocess": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    return results


def gate_failures(results: Dict[str, object]) -> List[str]:
    """Acceptance-gate violations (empty list = pass)."""
    failures: List[str] = []
    speedup = results["speedup"]["net_over_inprocess"]
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"speedup gate: net/in-process on the "
            f"{results['speedup']['rung']}-client rung is {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)")
    failover = results["failover"]
    if failover["mismatches"]:
        failures.append(
            f"failover gate: {failover['mismatches']} wrong answers after "
            f"worker kill (must be zero)")
    if failover["error_rate"] >= FAILOVER_ERROR_CEILING:
        failures.append(
            f"failover gate: error rate {failover['error_rate']:.4f} >= "
            f"{FAILOVER_ERROR_CEILING} after worker kill")
    if results["cold_warm"]["cold_batch_mismatches"]:
        failures.append("cold-start gate: first batch returned wrong answers")
    for rung, row in results["ladder"].items():
        if row["error_rate"] >= FAILOVER_ERROR_CEILING:
            failures.append(
                f"ladder gate: rung {rung} error rate "
                f"{row['error_rate']:.4f} >= {FAILOVER_ERROR_CEILING}")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro net bench",
        description="cold/warm + concurrency-ladder + failover campaign "
                    "against a local multi-worker cluster")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid; gates only, no baseline rewrite")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--n", type=int, default=1024,
                        help="synthetic artifact size (nodes)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--queries", type=int, default=None,
                        help="ladder workload size (default 20k smoke / 100k)")
    parser.add_argument("--failover-queries", type=int, default=None,
                        help="failover workload size (default 2k smoke / 10k)")
    parser.add_argument("--batch", type=int, default=256,
                        help="pairs per wire request on the ladder")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help=f"summary JSON (default {DEFAULT_OUT.name} on "
                             f"full runs)")
    parser.add_argument("--raw-dir", type=Path, default=None,
                        help="directory for raw JSONL samples "
                             "(default: a temporary directory)")
    args = parser.parse_args(argv)

    rungs = SMOKE_RUNGS if args.smoke else FULL_RUNGS
    queries = args.queries or (20_000 if args.smoke else 100_000)
    failover_queries = args.failover_queries or (2_000 if args.smoke
                                                 else 10_000)
    out = args.out or (None if args.smoke else DEFAULT_OUT)

    with tempfile.TemporaryDirectory(prefix="repro-net-bench-") as tmp:
        raw_dir = args.raw_dir or Path(tmp) / "raw"
        raw_dir.mkdir(parents=True, exist_ok=True)
        manifest = synthetic_sharded_artifact(
            Path(tmp), n=args.n, num_shards=args.shards, seed=args.seed)
        results = asyncio.run(run_campaign(
            manifest, workers=args.workers, rungs=rungs, queries=queries,
            failover_queries=failover_queries, batch_size=args.batch,
            seed=args.seed, raw_dir=raw_dir, n=args.n))

    document = {
        "schema": "bench-pr6/v1",
        "smoke": bool(args.smoke),
        "config": {
            "workers": args.workers, "n": args.n, "shards": args.shards,
            "queries": queries, "failover_queries": failover_queries,
            "batch": args.batch, "rungs": list(rungs), "seed": args.seed,
        },
        "gates": {"speedup_floor": SPEEDUP_FLOOR,
                  "failover_error_ceiling": FAILOVER_ERROR_CEILING},
        "results": results,
    }
    print()
    speedup = results["speedup"]
    print(f"net/in-process speedup @ {speedup['rung']} clients: "
          f"{speedup['net_over_inprocess']:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    if out is not None:
        out.write_text(json.dumps(document, indent=2, sort_keys=True,
                                  default=repr) + "\n")
        print(f"wrote {out}")

    failures = gate_failures(results)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
