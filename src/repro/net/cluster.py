"""Spawn, watch, and stop a local fleet of distance-serving workers.

:class:`Cluster` is the process-management layer under ``repro net``:
it picks ports, spawns ``--workers N`` processes via the ``spawn``
multiprocessing context (no inherited event loops or mmap handles —
each worker maps the shard manifests itself, and the OS page cache
makes the N-way mapping of one artifact nearly free), blocks until
every worker answers ``GET /healthz``, and tears the fleet down with
SIGTERM so workers drain in-flight frames before exiting.

``kill_worker`` is deliberately rude (SIGKILL): it exists so the
failover benchmark and the CI ``net-smoke`` job can murder a worker
mid-campaign and assert the front tier re-routes with zero wrong
answers.
"""

from __future__ import annotations

import multiprocessing
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.protocol import NetError
from repro.net.worker import worker_main


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port the OS just proved was free.

    Racy by nature (something could grab it before the worker binds),
    but workers are spawned immediately after and localhost CI has no
    competing binders; a loser crashes fast and loudly at bind time.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _http_get(host: str, port: int, path: str,
              timeout: float = 1.0) -> Optional[int]:
    """Blocking one-shot HTTP GET; returns the status code or None."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                         f"Connection: close\r\n\r\n".encode("ascii"))
            conn.settimeout(timeout)
            head = b""
            while b"\r\n" not in head and len(head) < 256:
                chunk = conn.recv(256)
                if not chunk:
                    break
                head += chunk
        parts = head.split(None, 2)
        if len(parts) >= 2 and parts[0].startswith(b"HTTP/"):
            return int(parts[1])
    except (OSError, ValueError):
        pass
    return None


class Cluster:
    """A local fleet of worker processes serving the same artifacts.

    Parameters
    ----------
    artifact_paths:
        Artifact files / shard manifests every worker serves.
    num_workers:
        Fleet size.
    host / base_port:
        Bind address; ``base_port=0`` (default) lets :func:`free_port`
        pick an ephemeral port per worker, ``base_port=P`` binds
        ``P, P+1, ...``.
    config_kwargs:
        Forwarded to :class:`~repro.serve.server.ServerConfig` in each
        worker (e.g. ``{"coalesce_window": 0.0}``).
    capacity:
        Per-worker registry LRU capacity (resident engines).
    start_timeout:
        Seconds to wait for every worker's ``/healthz`` to answer.
    """

    def __init__(self, artifact_paths: Sequence[str], num_workers: int = 2,
                 host: str = "127.0.0.1", base_port: int = 0, *,
                 config_kwargs: Optional[dict] = None, capacity: int = 4,
                 start_timeout: float = 60.0):
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.artifact_paths = [str(path) for path in artifact_paths]
        self.host = host
        self.num_workers = num_workers
        self.config_kwargs = dict(config_kwargs or {})
        self.capacity = capacity
        self.start_timeout = start_timeout
        if base_port:
            self.ports = [base_port + index for index in range(num_workers)]
        else:
            self.ports = []
            while len(self.ports) < num_workers:
                port = free_port(host)
                if port not in self.ports:
                    self.ports.append(port)
        self._context = multiprocessing.get_context("spawn")
        self._processes: List[Optional[multiprocessing.Process]] = \
            [None] * num_workers

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Cluster":
        for index in range(self.num_workers):
            self._spawn(index)
        self.wait_healthy()
        return self

    def _spawn(self, index: int) -> None:
        process = self._context.Process(
            target=worker_main,
            args=(self.artifact_paths, self.host, self.ports[index]),
            kwargs={"worker_id": index, "capacity": self.capacity,
                    "config_kwargs": self.config_kwargs},
            name=f"repro-net-worker-{index}",
            daemon=True,
        )
        process.start()
        self._processes[index] = process

    def wait_healthy(self, timeout: Optional[float] = None) -> None:
        """Block until every live worker answers ``/healthz`` with 200."""
        deadline = time.monotonic() + (timeout or self.start_timeout)
        for index, port in enumerate(self.ports):
            while True:
                process = self._processes[index]
                if process is None or not process.is_alive():
                    raise NetError(
                        f"worker {index} (port {port}) exited during startup "
                        f"(exitcode={getattr(process, 'exitcode', None)})")
                if _http_get(self.host, port, "/healthz") == 200:
                    break
                if time.monotonic() >= deadline:
                    self.stop()
                    raise NetError(
                        f"worker {index} (port {port}) not healthy within "
                        f"{timeout or self.start_timeout:.1f}s")
                time.sleep(0.05)

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — the failover experiment's chaos monkey."""
        process = self._processes[index]
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=10.0)
        self._processes[index] = None

    def restart_worker(self, index: int) -> None:
        """Bring a killed worker back on its original port."""
        self.kill_worker(index)
        self._spawn(index)

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM the fleet (graceful drain), escalating to SIGKILL."""
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
        deadline = time.monotonic() + timeout
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # drain hung: stop being polite
                process.kill()
                process.join(timeout=5.0)
            self._processes[index] = None

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [(self.host, port) for port in self.ports]

    def alive(self) -> List[bool]:
        return [process is not None and process.is_alive()
                for process in self._processes]

    def describe(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "workers": self.num_workers,
            "ports": list(self.ports),
            "alive": self.alive(),
            "artifacts": list(self.artifact_paths),
        }


__all__ = ["Cluster", "free_port"]
