"""Spawn, watch, and stop a local fleet of distance-serving workers.

:class:`Cluster` is the process-management layer under ``repro net``:
it picks ports, spawns ``--workers N`` processes via the ``spawn``
multiprocessing context (no inherited event loops or mmap handles —
each worker maps the shard manifests itself, and the OS page cache
makes the N-way mapping of one artifact nearly free), blocks until
every worker answers ``GET /healthz``, and tears the fleet down with
SIGTERM so workers drain in-flight frames before exiting.

``kill_worker`` is deliberately rude (SIGKILL): it exists so the
failover benchmark and the CI ``net-smoke`` job can murder a worker
mid-campaign and assert the front tier re-routes with zero wrong
answers.

The optional **supervisor** (``supervise=True`` or
:meth:`Cluster.start_supervisor`) closes the self-healing loop: a
background thread probes every worker's ``/healthz`` each interval,
respawns dead processes with per-worker exponential backoff, and
SIGKILLs-then-respawns *stuck* workers — alive processes whose event
loop has stalled (``stuck_after`` consecutive probe failures), which is
exactly the failure mode the chaos layer's ``stuck_worker`` fault
manufactures.  Supervision is off by default so tests that assert on
dead workers keep their semantics.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.protocol import NetError
from repro.net.worker import worker_main
from repro.obs.metrics import get_registry

logger = logging.getLogger("repro.net.cluster")


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port the OS just proved was free.

    Racy by nature (something could grab it before the worker binds),
    but workers are spawned immediately after and localhost CI has no
    competing binders; a loser crashes fast and loudly at bind time.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _http_get(host: str, port: int, path: str,
              timeout: float = 1.0) -> Optional[int]:
    """Blocking one-shot HTTP GET; returns the status code or None."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                         f"Connection: close\r\n\r\n".encode("ascii"))
            conn.settimeout(timeout)
            head = b""
            while b"\r\n" not in head and len(head) < 256:
                chunk = conn.recv(256)
                if not chunk:
                    break
                head += chunk
        parts = head.split(None, 2)
        if len(parts) >= 2 and parts[0].startswith(b"HTTP/"):
            return int(parts[1])
    except (OSError, ValueError):
        pass
    return None


class Cluster:
    """A local fleet of worker processes serving the same artifacts.

    Parameters
    ----------
    artifact_paths:
        Artifact files / shard manifests every worker serves.
    num_workers:
        Fleet size.
    host / base_port:
        Bind address; ``base_port=0`` (default) lets :func:`free_port`
        pick an ephemeral port per worker, ``base_port=P`` binds
        ``P, P+1, ...``.
    config_kwargs:
        Forwarded to :class:`~repro.serve.server.ServerConfig` in each
        worker (e.g. ``{"coalesce_window": 0.0}``).
    capacity:
        Per-worker registry LRU capacity (resident engines).
    start_timeout:
        Seconds to wait for every worker's ``/healthz`` to answer.
    supervise:
        Start the self-healing supervisor thread with the fleet.
    supervise_interval / stuck_after / respawn_backoff /
    respawn_max_backoff:
        Supervisor tuning: probe period, consecutive ``/healthz``
        failures before a live-but-stalled worker is declared stuck and
        SIGKILLed, and the initial/capped exponential backoff between
        respawns of the same worker slot.
    """

    def __init__(self, artifact_paths: Sequence[str], num_workers: int = 2,
                 host: str = "127.0.0.1", base_port: int = 0, *,
                 config_kwargs: Optional[dict] = None, capacity: int = 4,
                 start_timeout: float = 60.0, supervise: bool = False,
                 supervise_interval: float = 0.5, stuck_after: int = 3,
                 respawn_backoff: float = 0.5,
                 respawn_max_backoff: float = 30.0):
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.artifact_paths = [str(path) for path in artifact_paths]
        self.host = host
        self.num_workers = num_workers
        self.config_kwargs = dict(config_kwargs or {})
        self.capacity = capacity
        self.start_timeout = start_timeout
        self.supervise = supervise
        self.supervise_interval = supervise_interval
        self.stuck_after = max(1, int(stuck_after))
        self.respawn_backoff = respawn_backoff
        self.respawn_max_backoff = respawn_max_backoff
        if base_port:
            self.ports = [base_port + index for index in range(num_workers)]
        else:
            self.ports = []
            while len(self.ports) < num_workers:
                port = free_port(host)
                if port not in self.ports:
                    self.ports.append(port)
        self._context = multiprocessing.get_context("spawn")
        self._processes: List[Optional[multiprocessing.Process]] = \
            [None] * num_workers
        # Supervisor state: last /healthz status + consecutive failures
        # per worker, respawn backoff bookkeeping, and the thread itself.
        self.respawns = 0
        self.stuck_kills = 0
        self._last_healthz: List[Optional[int]] = [None] * num_workers
        self._healthz_failures = [0] * num_workers
        self._next_respawn = [0.0] * num_workers
        self._backoff = [respawn_backoff] * num_workers
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()
        registry = get_registry()
        registry.counter(
            "repro_cluster_respawns_total",
            "Worker processes respawned by the cluster supervisor",
        ).set_function(lambda c: c.respawns, self)
        registry.counter(
            "repro_cluster_stuck_kills_total",
            "Stuck (alive but unresponsive) workers SIGKILLed",
        ).set_function(lambda c: c.stuck_kills, self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Cluster":
        for index in range(self.num_workers):
            self._spawn(index)
        self.wait_healthy()
        if self.supervise:
            self.start_supervisor()
        return self

    def _spawn(self, index: int) -> None:
        process = self._context.Process(
            target=worker_main,
            args=(self.artifact_paths, self.host, self.ports[index]),
            kwargs={"worker_id": index, "capacity": self.capacity,
                    "config_kwargs": self.config_kwargs},
            name=f"repro-net-worker-{index}",
            daemon=True,
        )
        process.start()
        self._processes[index] = process

    def wait_healthy(self, timeout: Optional[float] = None) -> None:
        """Block until every live worker answers ``/healthz`` with 200.

        Failure messages carry the whole fleet's status — pid, port,
        liveness, exit code, and last ``/healthz`` answer per worker —
        so a dead-on-arrival fleet is diagnosable from the exception
        alone, without re-running under a debugger.
        """
        deadline = time.monotonic() + (timeout or self.start_timeout)
        for index, port in enumerate(self.ports):
            while True:
                process = self._processes[index]
                if process is None or not process.is_alive():
                    raise NetError(
                        f"worker {index} (port {port}) exited during startup "
                        f"(exitcode={getattr(process, 'exitcode', None)}); "
                        f"fleet: {json.dumps(self.worker_status())}")
                status = _http_get(self.host, port, "/healthz")
                self._last_healthz[index] = status
                if status == 200:
                    break
                if time.monotonic() >= deadline:
                    fleet = json.dumps(self.worker_status())
                    self.stop()
                    raise NetError(
                        f"worker {index} (port {port}) not healthy within "
                        f"{timeout or self.start_timeout:.1f}s; "
                        f"fleet: {fleet}")
                time.sleep(0.05)

    def worker_status(self) -> List[Dict[str, object]]:
        """Per-worker status (pid, port, liveness, last ``/healthz``)."""
        out: List[Dict[str, object]] = []
        for index, port in enumerate(self.ports):
            process = self._processes[index]
            out.append({
                "worker": index,
                "port": port,
                "pid": getattr(process, "pid", None),
                "alive": process is not None and process.is_alive(),
                "exitcode": getattr(process, "exitcode", None),
                "last_healthz": self._last_healthz[index],
            })
        return out

    # ------------------------------------------------------------------
    # supervision (self-healing)
    # ------------------------------------------------------------------
    def start_supervisor(self) -> None:
        """Start the background probe/respawn thread (idempotent)."""
        if self._supervisor is not None and self._supervisor.is_alive():
            return
        self._supervisor_stop.clear()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-cluster-supervisor",
            daemon=True)
        self._supervisor.start()

    def stop_supervisor(self) -> None:
        if self._supervisor is None:
            return
        self._supervisor_stop.set()
        self._supervisor.join(timeout=10.0)
        self._supervisor = None

    def _supervise_loop(self) -> None:
        while not self._supervisor_stop.wait(self.supervise_interval):
            for index in range(self.num_workers):
                if self._supervisor_stop.is_set():
                    return
                try:
                    self._check_worker(index)
                except Exception:  # noqa: BLE001 - supervisor must survive
                    logger.exception("supervisor check of worker %d failed",
                                     index)

    def _check_worker(self, index: int) -> None:
        """One supervision step: probe, declare stuck, respawn with backoff."""
        process = self._processes[index]
        dead = process is None or not process.is_alive()
        if not dead:
            status = _http_get(self.host, self.ports[index], "/healthz")
            self._last_healthz[index] = status
            if status == 200:
                # Healthy: forgive history so future faults back off fresh.
                self._healthz_failures[index] = 0
                self._backoff[index] = self.respawn_backoff
                return
            self._healthz_failures[index] += 1
            if self._healthz_failures[index] < self.stuck_after:
                return
            # Alive but unresponsive for stuck_after probes: the event
            # loop is wedged (chaos stuck_worker, runaway gather, ...).
            # SIGTERM would be ignored by a stalled loop; go straight
            # to SIGKILL and treat the slot as dead below.
            logger.warning(
                "worker %d (pid %s, port %d) stuck: %d consecutive /healthz "
                "failures; killing for respawn", index, process.pid,
                self.ports[index], self._healthz_failures[index])
            self.stuck_kills += 1
            process.kill()
            process.join(timeout=10.0)
            self._processes[index] = None
            dead = True
        if dead:
            now = time.monotonic()
            if now < self._next_respawn[index]:
                return  # still backing off this slot
            backoff = self._backoff[index]
            self._next_respawn[index] = now + backoff
            self._backoff[index] = min(backoff * 2.0,
                                       self.respawn_max_backoff)
            self._healthz_failures[index] = 0
            self.respawns += 1
            logger.warning(
                "respawning worker %d on port %d (respawn #%d, next backoff "
                "%.1fs)", index, self.ports[index], self.respawns,
                self._backoff[index])
            self._spawn(index)

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — the failover experiment's chaos monkey."""
        process = self._processes[index]
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=10.0)
        self._processes[index] = None

    def restart_worker(self, index: int) -> None:
        """Bring a killed worker back on its original port."""
        self.kill_worker(index)
        self._spawn(index)

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM the fleet (graceful drain), escalating to SIGKILL."""
        self.stop_supervisor()
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
        deadline = time.monotonic() + timeout
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # drain hung: stop being polite
                logger.warning(
                    "worker %d (pid %s) did not drain within %.1fs; "
                    "escalating to SIGKILL", index, process.pid, timeout)
                process.kill()
                process.join(timeout=5.0)
            self._processes[index] = None

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [(self.host, port) for port in self.ports]

    def alive(self) -> List[bool]:
        return [process is not None and process.is_alive()
                for process in self._processes]

    def describe(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "workers": self.num_workers,
            "ports": list(self.ports),
            "alive": self.alive(),
            "artifacts": list(self.artifact_paths),
            "supervised": self.supervise,
            "respawns": self.respawns,
            "stuck_kills": self.stuck_kills,
        }


__all__ = ["Cluster", "free_port"]
