"""Framed binary wire protocol (plus HTTP/JSON fallback) for distance serving.

The serving stack built by :mod:`repro.serve` runs inside one asyncio
event loop; :mod:`repro.net` puts real sockets in front of it.  This
module is the shared wire layer: workers, the front tier, and clients
all speak exactly these bytes, so the framing rules live in one place.

**Binary frames.**  Every message is one frame::

    +-------+---------+------+----------+--------+---------+---------+
    | magic | version | type | reserved | req id | length  | payload |
    | 4 B   | 1 B     | 1 B  | 2 B      | 4 B    | 4 B     | ...     |
    +-------+---------+------+----------+--------+---------+---------+

Header fields are network byte order; payload arrays are little-endian
numpy dtypes (``<i4`` node ids, ``<f8`` distances) so both ends can use
zero-copy ``np.frombuffer``.  ``req id`` lets a client pipeline many
requests over one connection and match responses out of order.  A
request carries a stretch budget, an optional artifact hint (the front
tier pins the routed artifact so every worker answers from the same
table), and packed ``(u, v)`` pair arrays; a response carries the
``float64`` distances; an error frame carries a typed code plus a
message.  Malformed input never crashes a server: bad magic, an
unsupported version byte, an oversized length prefix, or a truncated
frame raise :class:`ProtocolError` with the matching error code, which
servers answer (or close on) without ever letting the exception reach
the event loop.

**HTTP fallback.**  The first four bytes of a connection decide the
dialect: ``RNET`` means binary, anything else is treated as HTTP/1.x on
the same port — ``GET /healthz``, ``GET /statsz``, and ``POST /query``
make every worker and the front tier curl-able without a custom client.

Everything here is stdlib + numpy; the net tier adds no dependencies.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import struct
from typing import Dict, Optional, Tuple

import numpy as np

#: First bytes of every binary frame; anything else is HTTP fallback.
MAGIC = b"RNET"
#: Wire protocol version of a plain frame.  Untraced frames are
#: byte-identical to what version-1-only builds emit, so a new client
#: talking to an old worker (or vice versa) interoperates as long as no
#: trace rides along.
PROTOCOL_VERSION = 1
#: Version stamped on frames that carry a trace blob (see FLAG_TRACE).
#: Old builds reject it with ERR_UNSUPPORTED_VERSION, which the sender
#: treats as "peer cannot trace" and retries untraced — genuine version
#: negotiation with no handshake round-trip.
TRACE_PROTOCOL_VERSION = 2
#: Version stamped on frames that carry a deadline budget (see
#: FLAG_DEADLINE).  Same negotiation story as version 2: an old peer
#: rejects it with ERR_UNSUPPORTED_VERSION and the sender downgrades to
#: the best version the peer speaks and retries, losing the deadline
#: (and trace) but not the request.
DEADLINE_PROTOCOL_VERSION = 3

#: Bit in the (previously reserved, always-zero) u16 header field:
#: a trace blob precedes the payload.
FLAG_TRACE = 0x0001
#: Bit in the flags field: a float64 deadline budget (seconds the
#: sender is still willing to wait) precedes the payload — and the
#: trace blob, when both flags are set.  The budget is *relative*, not
#: a wall-clock instant, so it survives clock skew between hosts; each
#: receiver re-anchors it against its own monotonic clock on decode.
FLAG_DEADLINE = 0x0002

#: trace_blob_length(u16) — precedes the trace blob on flagged frames.
_TRACE_HEAD = struct.Struct("!H")
#: deadline_budget_seconds(f64) — precedes the payload (and trace blob)
#: on FLAG_DEADLINE frames.
_DEADLINE_HEAD = struct.Struct("!d")

#: magic(4) version(1) type(1) reserved(2) req_id(4) payload_length(4).
HEADER = struct.Struct("!4sBBHII")
#: multiplicative(f64) additive(f64) hint_len(u16) pair_count(u32).
_REQUEST_HEAD = struct.Struct("!ddHI")
#: distance_count(u32).
_RESPONSE_HEAD = struct.Struct("!I")
#: error_code(u16) message_len(u16).
_ERROR_HEAD = struct.Struct("!HH")

#: Hard ceiling on a frame payload; an advertised length beyond this is
#: malformed by definition (nobody sends 16 MiB of query pairs — and a
#: corrupt length prefix must not make a server try to buffer 4 GB).
MAX_PAYLOAD = 16 * 2**20
#: Ceiling on a buffered HTTP request (start line + headers + body).
MAX_HTTP_REQUEST = 1 * 2**20

# Frame types.
MSG_REQUEST = 1
MSG_RESPONSE = 2
MSG_ERROR = 3
MSG_PING = 4
MSG_PONG = 5

# Typed error codes carried by MSG_ERROR frames.
ERR_BAD_FRAME = 1          # malformed frame or payload
ERR_UNSUPPORTED_VERSION = 2
ERR_ROUTING = 3            # no artifact satisfies the stretch budget
ERR_OVERLOADED = 4         # server shed the request (backpressure)
ERR_BAD_NODES = 5          # node ids out of range / malformed pairs
ERR_INTERNAL = 6
ERR_SHUTTING_DOWN = 7
ERR_DEADLINE_EXCEEDED = 8  # the request's deadline budget ran out
ERR_DATA_INTEGRITY = 9     # quarantined/corrupt shard data backs the answer

ERROR_NAMES = {
    ERR_BAD_FRAME: "bad-frame",
    ERR_UNSUPPORTED_VERSION: "unsupported-version",
    ERR_ROUTING: "routing",
    ERR_OVERLOADED: "overloaded",
    ERR_BAD_NODES: "bad-nodes",
    ERR_INTERNAL: "internal",
    ERR_SHUTTING_DOWN: "shutting-down",
    ERR_DEADLINE_EXCEEDED: "deadline-exceeded",
    ERR_DATA_INTEGRITY: "data-integrity",
}


class ProtocolError(RuntimeError):
    """Malformed or unserviceable wire input, with a typed error code.

    Servers convert these into MSG_ERROR frames (or an HTTP error body);
    clients raise them to callers.  ``req_id`` is the request the error
    answers, when the frame got far enough to carry one.
    """

    def __init__(self, code: int, message: str, req_id: int = 0):
        super().__init__(message)
        self.code = code
        self.req_id = req_id

    @property
    def code_name(self) -> str:
        return ERROR_NAMES.get(self.code, str(self.code))


class NetError(RuntimeError):
    """Transport-level failure after retries (dead worker, timeout).

    Distinct from :class:`ProtocolError`: the wire was fine, the far end
    was not.  The front tier raises it when every failover attempt for a
    sub-batch is exhausted; load generators count it as an error, not a
    shed.
    """


@dataclasses.dataclass(frozen=True)
class Request:
    """One decoded distance request: budget, optional pin, pair arrays."""

    u: np.ndarray  # int32 node ids
    v: np.ndarray  # int32 node ids, same length
    multiplicative: float = math.inf
    additive: float = math.inf
    #: Artifact name to answer from ("" routes by budget).  The front
    #: tier pins its routing decision here so all workers agree.
    artifact: str = ""

    def __len__(self) -> int:
        return len(self.u)


# ----------------------------------------------------------------------
# frame encoding
# ----------------------------------------------------------------------
class Frame(tuple):
    """One decoded frame: unpacks as ``(type, req_id, payload)``.

    A plain-tuple subclass so every historical ``ftype, req_id, payload =
    frame`` site keeps working; the optional trace blob (a version-2
    frame's FLAG_TRACE prefix) rides along as the ``trace`` attribute
    and the optional deadline budget (a version-3 frame's FLAG_DEADLINE
    prefix, in seconds) as ``deadline`` — both ``None`` when absent.
    """

    def __new__(cls, ftype: int, req_id: int, payload: bytes,
                trace: Optional[bytes] = None,
                deadline: Optional[float] = None) -> "Frame":
        self = super().__new__(cls, (ftype, req_id, payload))
        self.trace = trace
        self.deadline = deadline
        return self


def encode_frame(ftype: int, req_id: int, payload: bytes = b"",
                 trace: Optional[bytes] = None,
                 deadline: Optional[float] = None) -> bytes:
    """Encode one frame; ``trace``/``deadline`` upgrade its version.

    Untraced, deadline-free frames stay byte-identical to version-1
    builds.  A traced frame sets FLAG_TRACE in the former reserved
    field and prefixes the payload with a u16 blob length plus the
    blob; a ``deadline`` (remaining budget in seconds — a relative
    duration, never a wall-clock instant) stamps version 3, sets
    FLAG_DEADLINE, and prepends a float64 budget before the trace
    prefix (when both ride along) and the payload.
    """
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD "
            f"({MAX_PAYLOAD})", req_id)
    if not trace and deadline is None:
        return HEADER.pack(MAGIC, PROTOCOL_VERSION, ftype, 0, req_id,
                           len(payload)) + payload
    flags = 0
    prefix = b""
    version = PROTOCOL_VERSION
    if deadline is not None:
        budget = float(deadline)
        if not math.isfinite(budget) or budget < 0.0:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"deadline budget must be finite and non-negative, "
                f"got {budget}", req_id)
        flags |= FLAG_DEADLINE
        prefix += _DEADLINE_HEAD.pack(budget)
        version = DEADLINE_PROTOCOL_VERSION
    if trace:
        if len(trace) > 0xFFFF:
            raise ProtocolError(
                ERR_BAD_FRAME, f"trace blob of {len(trace)} bytes exceeds "
                f"the u16 length prefix", req_id)
        flags |= FLAG_TRACE
        prefix += _TRACE_HEAD.pack(len(trace)) + trace
        version = max(version, TRACE_PROTOCOL_VERSION)
    body = prefix + payload
    if len(body) > MAX_PAYLOAD:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"flagged payload of {len(body)} bytes exceeds MAX_PAYLOAD "
            f"({MAX_PAYLOAD})", req_id)
    return HEADER.pack(MAGIC, version, ftype, flags, req_id,
                       len(body)) + body


def pack_request(pairs, multiplicative: float = math.inf,
                 additive: float = math.inf, artifact: str = "") -> bytes:
    """Payload bytes for a MSG_REQUEST frame.

    ``pairs`` is a sequence of ``(u, v)`` tuples or an ``(N, 2)`` array;
    the two node columns are packed as separate contiguous ``<i4``
    arrays so the receiver can ``np.frombuffer`` them without copying.
    """
    arr = np.ascontiguousarray(pairs, dtype="<i4")
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"pairs must be an (N, 2) sequence, "
                         f"got shape {arr.shape}")
    hint = artifact.encode("utf-8")
    if len(hint) > 0xFFFF:
        raise ValueError("artifact hint too long")
    head = _REQUEST_HEAD.pack(multiplicative, additive, len(hint),
                              arr.shape[0])
    return b"".join((head, hint,
                     np.ascontiguousarray(arr[:, 0]).tobytes(),
                     np.ascontiguousarray(arr[:, 1]).tobytes()))


def unpack_request(payload: bytes, req_id: int = 0) -> Request:
    if len(payload) < _REQUEST_HEAD.size:
        raise ProtocolError(
            ERR_BAD_FRAME, f"request payload of {len(payload)} bytes is "
            f"shorter than the {_REQUEST_HEAD.size}-byte request head",
            req_id)
    multiplicative, additive, hint_len, count = _REQUEST_HEAD.unpack_from(
        payload)
    offset = _REQUEST_HEAD.size
    if len(payload) != offset + hint_len + 8 * count:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"request advertises {count} pairs + {hint_len}-byte hint but "
            f"carries {len(payload) - offset} payload bytes "
            f"(expected {hint_len + 8 * count})", req_id)
    try:
        artifact = payload[offset:offset + hint_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(ERR_BAD_FRAME,
                            f"artifact hint is not UTF-8: {exc}", req_id)
    offset += hint_len
    u = np.frombuffer(payload, dtype="<i4", count=count, offset=offset)
    v = np.frombuffer(payload, dtype="<i4", count=count,
                      offset=offset + 4 * count)
    return Request(u=u, v=v, multiplicative=multiplicative,
                   additive=additive, artifact=artifact)


def pack_response(values) -> bytes:
    arr = np.ascontiguousarray(values, dtype="<f8")
    return _RESPONSE_HEAD.pack(arr.shape[0]) + arr.tobytes()


def unpack_response(payload: bytes, req_id: int = 0) -> np.ndarray:
    if len(payload) < _RESPONSE_HEAD.size:
        raise ProtocolError(ERR_BAD_FRAME, "response payload truncated",
                            req_id)
    (count,) = _RESPONSE_HEAD.unpack_from(payload)
    if len(payload) != _RESPONSE_HEAD.size + 8 * count:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"response advertises {count} distances but carries "
            f"{len(payload) - _RESPONSE_HEAD.size} payload bytes", req_id)
    return np.frombuffer(payload, dtype="<f8", count=count,
                         offset=_RESPONSE_HEAD.size)


def pack_error(code: int, message: str) -> bytes:
    encoded = message.encode("utf-8")[:0xFFFF]
    return _ERROR_HEAD.pack(code, len(encoded)) + encoded


def unpack_error(payload: bytes, req_id: int = 0) -> ProtocolError:
    """Decode a MSG_ERROR payload into the exception it transports."""
    if len(payload) < _ERROR_HEAD.size:
        raise ProtocolError(ERR_BAD_FRAME, "error payload truncated", req_id)
    code, msg_len = _ERROR_HEAD.unpack_from(payload)
    message = payload[_ERROR_HEAD.size:_ERROR_HEAD.size + msg_len].decode(
        "utf-8", errors="replace")
    return ProtocolError(code, message, req_id)


# ----------------------------------------------------------------------
# stream I/O
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader, *, preread: bytes = b"",
                     max_payload: int = MAX_PAYLOAD,
                     ) -> Optional[Frame]:
    """Read one frame; returns a :class:`Frame` or None on clean EOF.

    The result unpacks as ``(type, req_id, payload)``; a version-2
    frame's trace blob is split off into ``frame.trace``.  EOF *between*
    frames is a clean close (None); EOF *inside* a frame is a truncated
    frame and raises :class:`ProtocolError`, as do bad magic, an
    unsupported version byte, and an oversized length prefix.
    ``preread`` is bytes already consumed by the caller's dialect sniff.
    """
    header = preread
    if len(header) < HEADER.size:
        try:
            header += await reader.readexactly(HEADER.size - len(header))
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not preread:
                return None  # clean EOF between frames
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"connection closed mid-header after "
                f"{len(preread) + len(exc.partial)} of {HEADER.size} bytes")
    magic, version, ftype, flags, req_id, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(ERR_BAD_FRAME,
                            f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version not in (PROTOCOL_VERSION, TRACE_PROTOCOL_VERSION,
                       DEADLINE_PROTOCOL_VERSION):
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"unsupported protocol version {version} "
            f"(this build speaks {PROTOCOL_VERSION}.."
            f"{DEADLINE_PROTOCOL_VERSION})", req_id)
    if length > max_payload:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"length prefix {length} exceeds the {max_payload}-byte "
            f"payload ceiling", req_id)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"connection closed mid-payload after {len(exc.partial)} of "
            f"{length} bytes", req_id)
    trace: Optional[bytes] = None
    deadline: Optional[float] = None
    if version >= DEADLINE_PROTOCOL_VERSION and flags & FLAG_DEADLINE:
        if len(payload) < _DEADLINE_HEAD.size:
            raise ProtocolError(
                ERR_BAD_FRAME, "deadline frame too short for its budget "
                "prefix", req_id)
        (deadline,) = _DEADLINE_HEAD.unpack_from(payload)
        if not math.isfinite(deadline) or deadline < 0.0:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"deadline budget {deadline} is not a finite non-negative "
                f"duration", req_id)
        payload = payload[_DEADLINE_HEAD.size:]
    if version >= TRACE_PROTOCOL_VERSION and flags & FLAG_TRACE:
        if len(payload) < _TRACE_HEAD.size:
            raise ProtocolError(
                ERR_BAD_FRAME, "traced frame too short for its trace-length "
                "prefix", req_id)
        (trace_len,) = _TRACE_HEAD.unpack_from(payload)
        if len(payload) < _TRACE_HEAD.size + trace_len:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"traced frame advertises a {trace_len}-byte trace blob but "
                f"carries only {len(payload) - _TRACE_HEAD.size} bytes after "
                f"the prefix", req_id)
        trace = payload[_TRACE_HEAD.size:_TRACE_HEAD.size + trace_len]
        payload = payload[_TRACE_HEAD.size + trace_len:]
    return Frame(ftype, req_id, payload, trace, deadline)


# ----------------------------------------------------------------------
# HTTP fallback
# ----------------------------------------------------------------------
_HTTP_STATUS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable"}


async def read_http_request(reader: asyncio.StreamReader, *,
                            preread: bytes = b"",
                            max_bytes: int = MAX_HTTP_REQUEST,
                            ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Minimal HTTP/1.x request parser for the fallback endpoints.

    Returns ``(method, path, headers, body)`` or None when the peer
    closed before sending a full request.  Raises
    :class:`ProtocolError` (ERR_BAD_FRAME) on an unparseable request or
    one exceeding ``max_bytes``.
    """
    buffer = preread
    while b"\r\n\r\n" not in buffer:
        if len(buffer) > max_bytes:
            raise ProtocolError(ERR_BAD_FRAME, "HTTP header block too large")
        chunk = await reader.read(65536)
        if not chunk:
            return None
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(ERR_BAD_FRAME, f"malformed HTTP request line: {exc}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        content_length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(ERR_BAD_FRAME, "malformed Content-Length header")
    if content_length > max_bytes:
        raise ProtocolError(ERR_BAD_FRAME,
                            f"HTTP body of {content_length} bytes too large")
    body = rest
    while len(body) < content_length:
        chunk = await reader.read(content_length - len(body))
        if not chunk:
            raise ProtocolError(ERR_BAD_FRAME, "connection closed mid-body")
        body += chunk
    return method.upper(), target, headers, body[:content_length]


def http_response(status: int, payload, content_type: str = "application/json"
                  ) -> bytes:
    """One complete ``Connection: close`` HTTP response."""
    if isinstance(payload, (bytes, bytearray)):
        body = bytes(payload)
    else:
        body = (json.dumps(jsonable(payload), indent=2, sort_keys=True)
                + "\n").encode("utf-8")
    reason = _HTTP_STATUS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def jsonable(obj):
    """Recursively convert stats snapshots into strict-JSON-safe values.

    numpy scalars become Python scalars, tuples become lists, and
    non-finite floats become strings (``"inf"``/``"nan"``) so ``/statsz``
    output parses in any JSON reader, not just Python's.
    """
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(value) for value in obj]
    if isinstance(obj, np.generic):
        obj = obj.item()
    if isinstance(obj, float) and not math.isfinite(obj):
        return repr(obj)  # "inf" / "-inf" / "nan"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return str(obj)
