"""CSR-encoded kernels for the min-plus family and the Boolean semiring.

The dictionary kernels in :mod:`repro.matmul.kernels` pay Python interpreter
overhead per elementary product, which caps every theorem-level routine
(k-nearest, source detection, MSSP, hopsets, APSP) well below what the
hardware allows.  This module stores a :class:`~repro.matmul.matrix.
SemiringMatrix` in compressed-sparse-row form — ``indptr``/``indices``/
``data`` numpy arrays — and evaluates semiring products entirely with
vectorised numpy primitives:

* min-plus matrices become ``float64`` data;
* augmented min-plus matrices become ``int64`` data through the
  order/addition-preserving encoding of
  :class:`repro.semiring.augmented.AugmentedMinPlusSemiring`, so integer
  addition of codes equals component-wise semiring multiplication and
  integer comparison equals the lexicographic order;
* Boolean matrices become all-zero ``int64`` data (only the pattern
  matters; min-reduction over zeros is "or" of the pattern).

The core product expands every elementary product ``S[i,k] · T[k,j]`` into
flat candidate arrays (a gather over ``T``'s rows), then reduces candidates
sharing an output position: a dense per-row-block accumulator via
``np.minimum.at`` when the block's candidates are dense enough (this also
covers the sparse × dense shape — scattering into full output rows *is* the
dense formulation), or ``argsort`` + ``minimum.reduceat`` when the output
block is sparse.  Row blocks bound both the candidate arrays and the
accumulator memory.  Either way the result is bit-identical to
:func:`repro.matmul.kernels.sparse_dict_product` (property-tested).

CSR encodings are cached on the source matrix (``matrix._cache``) and
invalidated on mutation, so build-once / multiply-many workloads — the
filtered squarings of Theorem 18, the hop iterations of Theorem 19, the
subcube products of Theorems 8/14 — convert each operand once.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import AugmentedEntry, AugmentedMinPlusSemiring
from repro.semiring.base import Semiring
from repro.semiring.boolean import BooleanSemiring
from repro.semiring.minplus import MinPlusSemiring

#: Target number of candidate elementary products held in memory at once.
_CANDIDATE_BUDGET = 1 << 18

#: Maximum dense-accumulator cells per row block (rows_in_block x n).
_BUFFER_BUDGET = 1 << 20

#: Below this candidates-per-cell ratio a block reduces by sorting instead
#: of scattering into the dense accumulator.
_SPARSE_BLOCK_RATIO = 0.05


class CSRMatrix:
    """A semiring matrix in compressed-sparse-row numpy form.

    ``data`` holds the kind-specific encoding described in the module
    docstring; ``kind`` is one of ``"minplus"``, ``"augmented"``,
    ``"boolean"``.  Column indices are sorted within each row.
    """

    __slots__ = ("n", "indptr", "indices", "data", "semiring", "kind")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, semiring: Semiring, kind: str):
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.semiring = semiring
        self.kind = kind

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def infinity(self) -> Any:
        """The "absent entry" marker of this kind's encoding."""
        if self.kind == "minplus":
            return np.inf
        if self.kind == "augmented":
            return self.semiring.inf_code
        return 1  # boolean: data is 0 where present

    def dense(self) -> np.ndarray:
        """Densify to an ``n x n`` array of the kind's encoding."""
        dtype = np.float64 if self.kind == "minplus" else np.int64
        out = np.full(self.n * self.n, self.infinity(), dtype=dtype)
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        out[rows * self.n + self.indices] = self.data
        return out.reshape(self.n, self.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(n={self.n}, nnz={self.nnz}, kind={self.kind!r})"


def csr_supported(semiring: Semiring) -> bool:
    """Whether the CSR kernels can encode this semiring's values."""
    return isinstance(
        semiring, (MinPlusSemiring, AugmentedMinPlusSemiring, BooleanSemiring)
    )


def _kind_of(semiring: Semiring) -> str:
    if isinstance(semiring, AugmentedMinPlusSemiring):
        return "augmented"
    if isinstance(semiring, BooleanSemiring):
        return "boolean"
    if isinstance(semiring, MinPlusSemiring):
        return "minplus"
    raise TypeError(f"CSR kernels do not support the {semiring.name} semiring")


def to_csr(M: SemiringMatrix) -> CSRMatrix:
    """Encode a matrix as CSR (cached on the matrix, see matrix docs)."""
    cached = M._cache.get("csr")
    if cached is not None:
        return cached
    kind = _kind_of(M.semiring)
    n = M.n
    lengths = np.fromiter((len(row) for row in M.rows), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    if kind == "minplus":
        data = np.empty(total, dtype=np.float64)
    elif kind == "augmented":
        data = np.empty(total, dtype=np.int64)
    else:
        data = np.zeros(total, dtype=np.int64)
    encode = M.semiring.encode if kind == "augmented" else None
    pos = 0
    for row in M.rows:
        count = len(row)
        if not count:
            continue
        cols = np.fromiter(row.keys(), dtype=np.int64, count=count)
        order = np.argsort(cols)
        indices[pos:pos + count] = cols[order]
        if kind == "minplus":
            data[pos:pos + count] = np.fromiter(
                row.values(), dtype=np.float64, count=count
            )[order]
        elif kind == "augmented":
            data[pos:pos + count] = np.fromiter(
                (encode(v) for v in row.values()), dtype=np.int64, count=count
            )[order]
        pos += count
    result = CSRMatrix(n, indptr, indices, data, M.semiring, kind)
    M._cache["csr"] = result
    return result


def from_csr(csr: CSRMatrix) -> SemiringMatrix:
    """Decode a CSR matrix back into a :class:`SemiringMatrix`."""
    result = SemiringMatrix(csr.n, csr.semiring)
    for i in range(csr.n):
        lo, hi = int(csr.indptr[i]), int(csr.indptr[i + 1])
        if lo == hi:
            continue
        result.rows[i] = _decode_row(
            csr.indices[lo:hi], csr.data[lo:hi], csr.semiring, csr.kind
        )
    return result


def _decode_row(cols: np.ndarray, vals: np.ndarray, semiring: Semiring,
                kind: str) -> Dict[int, Any]:
    """Decode one row's (cols, encoded vals) into a sparse-dict row."""
    if kind == "minplus":
        return dict(zip(cols.tolist(), vals.tolist()))
    if kind == "augmented":
        weights, hops = np.divmod(vals, semiring.hop_base)
        return dict(zip(
            cols.tolist(),
            map(AugmentedEntry, weights.tolist(), hops.tolist()),
        ))
    return dict.fromkeys(cols.tolist(), True)


def _keep_smallest(cols: np.ndarray, vals: np.ndarray,
                   keep: int) -> Tuple[np.ndarray, np.ndarray]:
    """Indices/values of the ``keep`` smallest entries by (value, column).

    ``cols`` must be ascending, so a stable sort on values breaks ties
    towards the smaller column — the Section 2.2.2 cutoff rule
    :meth:`SemiringMatrix.filter_rows` implements.
    """
    if cols.size <= keep:
        return cols, vals
    chosen = np.argsort(vals, kind="stable")[:keep]
    return cols[chosen], vals[chosen]


# ----------------------------------------------------------------------
# candidate expansion + segmented min-reduction
# ----------------------------------------------------------------------
def _expand(s_rows: np.ndarray, s_cols: np.ndarray, s_vals: np.ndarray,
            B: CSRMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All elementary products of the given S entries against B's rows.

    Returns flat ``(rows, cols, vals, mids)`` candidate arrays; ``vals`` are
    already the products (encoded addition).
    """
    b_starts = B.indptr[s_cols]
    counts = B.indptr[s_cols + 1] - b_starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=B.data.dtype), empty
    ends = np.cumsum(counts)
    # Concatenated ranges [b_starts[t], b_starts[t] + counts[t]) per entry t.
    gather = np.arange(total, dtype=np.int64) + np.repeat(b_starts - (ends - counts), counts)
    cand_rows = np.repeat(s_rows, counts)
    cand_cols = B.indices[gather]
    cand_vals = np.repeat(s_vals, counts) + B.data[gather]
    cand_mids = np.repeat(s_cols, counts)
    return cand_rows, cand_cols, cand_vals, cand_mids


def _reduce_min(cand_rows: np.ndarray, cand_cols: np.ndarray,
                cand_vals: np.ndarray,
                n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum candidate value per (row, col); rows/cols come back sorted."""
    keys = cand_rows * n + cand_cols
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    mins = np.minimum.reduceat(cand_vals[order], starts)
    out_keys = sorted_keys[starts]
    return out_keys // n, out_keys % n, mins




def _row_blocks(A: CSRMatrix, B: CSRMatrix) -> List[Tuple[int, int]]:
    """Partition A's rows into (start, stop) blocks bounded by both the
    candidate budget and the dense-accumulator cell budget."""
    b_row_lengths = np.diff(B.indptr)
    per_entry = b_row_lengths[A.indices] if A.nnz else np.empty(0, dtype=np.int64)
    entry_prefix = np.zeros(A.nnz + 1, dtype=np.int64)
    np.cumsum(per_entry, out=entry_prefix[1:])
    row_prefix = entry_prefix[A.indptr]
    n = A.n
    max_rows = max(1, _BUFFER_BUDGET // n)
    blocks: List[Tuple[int, int]] = []
    start = 0
    while start < n:
        stop = int(np.searchsorted(
            row_prefix, row_prefix[start] + _CANDIDATE_BUDGET, side="right"
        )) - 1
        stop = min(n, max(stop, start + 1), start + max_rows)
        blocks.append((start, stop))
        start = stop
    return blocks


# ----------------------------------------------------------------------
# products
# ----------------------------------------------------------------------
def csr_product(S: SemiringMatrix, T: SemiringMatrix,
                keep: Optional[int] = None) -> SemiringMatrix:
    """Compute ``S · T`` with the CSR kernels (optionally ρ-filtered).

    Bit-identical to ``sparse_dict_product`` followed by ``filter_rows``;
    the filtering happens on the encoded arrays before any decoding.
    """
    if keep is not None and not S.semiring.is_ordered():
        raise TypeError("row filtering requires an ordered semiring")
    A = to_csr(S)
    B = to_csr(T)
    n = A.n
    result = SemiringMatrix(n, S.semiring)
    if A.nnz == 0 or B.nnz == 0:
        return result
    infinity = A.infinity()
    for start, stop in _row_blocks(A, B):
        lo, hi = int(A.indptr[start]), int(A.indptr[stop])
        if lo == hi:
            continue
        s_rows = np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(A.indptr[start:stop + 1]),
        )
        cand_rows, cand_cols, cand_vals, _ = _expand(
            s_rows, A.indices[lo:hi], A.data[lo:hi], B
        )
        if not cand_rows.size:
            continue
        cells = (stop - start) * n
        if cand_rows.size >= _SPARSE_BLOCK_RATIO * cells:
            # Dense accumulator: one vectorised min-scatter per block.
            buffer = np.full(cells, infinity, dtype=A.data.dtype)
            np.minimum.at(buffer, (cand_rows - start) * n + cand_cols, cand_vals)
            buffer = buffer.reshape(stop - start, n)
            for local in range(stop - start):
                row_vals = buffer[local]
                cols = np.flatnonzero(row_vals < infinity)
                if not cols.size:
                    continue
                vals = row_vals[cols]
                if keep is not None:
                    cols, vals = _keep_smallest(cols, vals, keep)
                result.rows[start + local] = _decode_row(
                    cols, vals, A.semiring, A.kind
                )
        else:
            rows_out, cols_out, vals_out = _reduce_min(
                cand_rows, cand_cols, cand_vals, n
            )
            _fill_rows(result, rows_out, cols_out, vals_out, start, stop, A, keep)
    return result


def _fill_rows(result: SemiringMatrix, rows_out: np.ndarray,
               cols_out: np.ndarray, vals_out: np.ndarray,
               start: int, stop: int, A: CSRMatrix,
               keep: Optional[int]) -> None:
    """Scatter reduced (row, col, val) triples into the result's dict rows."""
    bounds = np.searchsorted(rows_out, np.arange(start, stop + 1))
    for i in range(start, stop):
        a, b = bounds[i - start], bounds[i - start + 1]
        if a == b:
            continue
        cols, vals = cols_out[a:b], vals_out[a:b]
        if keep is not None:
            cols, vals = _keep_smallest(cols, vals, keep)
        result.rows[i] = _decode_row(cols, vals, A.semiring, A.kind)


def csr_witnessed_product(
    S: SemiringMatrix, T: SemiringMatrix
) -> Tuple[SemiringMatrix, List[Dict[int, int]]]:
    """``S · T`` with per-entry witnesses (min-plus family only).

    Returns the product and ``witnesses[i][j] = w`` with ``w`` the smallest
    middle index achieving the minimum — the same tie-break as the
    dictionary kernel in :mod:`repro.matmul.witness`.
    """
    A = to_csr(S)
    B = to_csr(T)
    if A.kind == "boolean":
        raise TypeError("witnessed products require an ordered (min) semiring")
    n = A.n
    product = SemiringMatrix(n, S.semiring)
    witnesses: List[Dict[int, int]] = [dict() for _ in range(n)]
    if A.nnz == 0 or B.nnz == 0:
        return product, witnesses
    infinity = A.infinity()
    for start, stop in _row_blocks(A, B):
        lo, hi = int(A.indptr[start]), int(A.indptr[stop])
        if lo == hi:
            continue
        s_rows = np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(A.indptr[start:stop + 1]),
        )
        cand_rows, cand_cols, cand_vals, cand_mids = _expand(
            s_rows, A.indices[lo:hi], A.data[lo:hi], B
        )
        if not cand_rows.size:
            continue
        # Two min-scatters: first the values, then — among the candidates
        # that achieve the minimum (exact compare: the winning candidate is
        # bitwise equal to the scattered minimum) — the smallest middle
        # index, which is the dict kernel's tie-break.
        cells = (stop - start) * n
        keys = (cand_rows - start) * n + cand_cols
        value_buffer = np.full(cells, infinity, dtype=A.data.dtype)
        np.minimum.at(value_buffer, keys, cand_vals)
        achieving = cand_vals == value_buffer[keys]
        witness_buffer = np.full(cells, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(witness_buffer, keys[achieving], cand_mids[achieving])
        value_buffer = value_buffer.reshape(stop - start, n)
        witness_buffer = witness_buffer.reshape(stop - start, n)
        for local in range(stop - start):
            row_vals = value_buffer[local]
            cols = np.flatnonzero(row_vals < infinity)
            if not cols.size:
                continue
            product.rows[start + local] = _decode_row(
                cols, row_vals[cols], A.semiring, A.kind
            )
            witnesses[start + local] = dict(
                zip(cols.tolist(), witness_buffer[local][cols].tolist())
            )
    return product, witnesses


def csr_submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
) -> Dict[Tuple[int, int], Any]:
    """CSR evaluation of the restricted subcube product (Lemma 11 work unit).

    Same contract as :func:`repro.matmul.kernels.submatrix_product`: the
    product of ``S[row_set, mid_set] · T[mid_set, col_set]`` keyed by global
    ``(row, col)``.
    """
    A = to_csr(S)
    B = to_csr(T)
    n = A.n
    out: Dict[Tuple[int, int], Any] = {}
    if A.nnz == 0 or B.nnz == 0:
        return out
    unique_rows = set(row_set)
    rows = np.fromiter(unique_rows, dtype=np.int64, count=len(unique_rows))
    rows.sort()
    mid_mask = np.zeros(n, dtype=bool)
    mid_mask[np.fromiter(mid_set, dtype=np.int64, count=len(mid_set))] = True
    col_mask = np.zeros(n, dtype=bool)
    col_mask[np.fromiter(col_set, dtype=np.int64, count=len(col_set))] = True

    # Gather the S entries of the selected rows, keeping only selected mids.
    lengths = np.diff(A.indptr)[rows]
    total = int(lengths.sum())
    if total == 0:
        return out
    ends = np.cumsum(lengths)
    gather = np.arange(total, dtype=np.int64) + np.repeat(
        A.indptr[rows] - (ends - lengths), lengths
    )
    s_rows = np.repeat(rows, lengths)
    s_cols = A.indices[gather]
    s_vals = A.data[gather]
    selected = mid_mask[s_cols]
    s_rows, s_cols, s_vals = s_rows[selected], s_cols[selected], s_vals[selected]

    # Block by candidate count so huge subcubes stay within the budget.
    b_row_lengths = np.diff(B.indptr)
    per_entry = b_row_lengths[s_cols]
    boundaries = _entry_blocks(s_rows, per_entry)
    for lo, hi in boundaries:
        cand_rows, cand_cols, cand_vals, _ = _expand(
            s_rows[lo:hi], s_cols[lo:hi], s_vals[lo:hi], B
        )
        if not cand_rows.size:
            continue
        allowed = col_mask[cand_cols]
        cand_rows, cand_cols = cand_rows[allowed], cand_cols[allowed]
        cand_vals = cand_vals[allowed]
        if not cand_rows.size:
            continue
        rows_out, cols_out, vals_out = _reduce_min(cand_rows, cand_cols, cand_vals, n)
        if A.kind == "minplus":
            values: List[Any] = vals_out.tolist()
        elif A.kind == "augmented":
            weights, hops = np.divmod(vals_out, A.semiring.hop_base)
            values = list(map(AugmentedEntry, weights.tolist(), hops.tolist()))
        else:
            values = [True] * len(vals_out)
        out.update(zip(zip(rows_out.tolist(), cols_out.tolist()), values))
    return out


def _entry_blocks(s_rows: np.ndarray,
                  per_entry: np.ndarray) -> List[Tuple[int, int]]:
    """Split S-entry ranges into candidate-bounded blocks on row boundaries.

    Blocks never split a row, so each (row, col) output key is produced by
    exactly one block and the per-block reductions compose by union.
    """
    count = len(s_rows)
    if count == 0:
        return []
    prefix = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(per_entry, out=prefix[1:])
    # Entry index where each new row starts (s_rows is sorted).
    row_starts = np.flatnonzero(np.r_[True, s_rows[1:] != s_rows[:-1]])
    row_starts = np.append(row_starts, count)
    blocks: List[Tuple[int, int]] = []
    b = 0
    while b < len(row_starts) - 1:
        target = prefix[row_starts[b]] + _CANDIDATE_BUDGET
        e = int(np.searchsorted(prefix[row_starts], target, side="right")) - 1
        e = min(len(row_starts) - 1, max(e, b + 1))
        blocks.append((int(row_starts[b]), int(row_starts[e])))
        b = e
    return blocks
