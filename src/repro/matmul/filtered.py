"""Theorem 14: sparse matrix multiplication with output sparsification.

Computes a ρ-*filtered* version of ``P = S · T``: every output row keeps only
its ρ smallest entries, and the round cost depends on ρ rather than on the
(possibly huge) true output density.  This is the workhorse behind the
k-nearest and source-detection distance tools of Section 3.

The algorithm (Section 2.2) is the Theorem 8 algorithm with an extra
filtering stage between the per-subcube products and the summation: for each
of the ``c`` layer matrices ``P_k`` and each of its rows, the nodes holding
pieces of that row run a distributed binary search over the value universe
``R'`` to find the ρ-th smallest entry (the *cutoff*), discard everything
above it, and only then balance and sum.  The binary search costs
``O(log |R'|)`` rounds; for integer weights bounded by ``poly(n)`` this is
``O(log n)``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.cclique.accounting import Clique
from repro.matmul.balancing import (
    assign_subcubes_to_nodes,
    charge_cube_partition,
    charge_duplication,
    charge_input_delivery,
    charge_summation,
    subcube_loads,
)
from repro.matmul.kernels import submatrix_product
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.partition import compute_split_parameters, cube_partition
from repro.matmul.results import MatMulResult


def filtered_mm(
    S: SemiringMatrix,
    T: SemiringMatrix,
    rho: int,
    weight_universe_size: Optional[int] = None,
    clique: Optional[Clique] = None,
    label: str = "theorem14-mm",
    execution: str = "faithful",
    kernel: Optional[str] = None,
) -> MatMulResult:
    """Compute a ρ-filtered product of ``S`` and ``T`` (Theorem 14).

    Parameters
    ----------
    S, T:
        Input matrices over an *ordered* semiring (addition must be min).
    rho:
        Output density: each output row keeps its ``rho`` smallest entries.
    weight_universe_size:
        Size ``W`` of the set of semiring values that can appear during the
        computation; the filtering binary search costs ``ceil(log2 W)``
        rounds.  Defaults to ``n^3`` (integer weights bounded by ``n^2``
        composed over two hops), giving the paper's ``O(log n)`` bound.
    clique:
        Accounting context; a fresh one is created if omitted.
    execution:
        ``"faithful"`` (full Lemma 9-16 schedule) or ``"fast"`` (same round
        charges from measured densities, product computed with the fast
        local kernels); see :func:`repro.matmul.output_sensitive_mm`.
    kernel:
        Pin the local-product kernel (``"dict"``/``"csr"``/``"dense"``);
        ``None`` lets the cost model choose.  Never affects the result.
    """
    S._check_compatible(T)
    if not S.semiring.is_ordered():
        raise TypeError("filtered multiplication requires an ordered semiring")
    if rho <= 0:
        raise ValueError("rho must be positive")
    if execution not in ("faithful", "fast"):
        raise ValueError(f"unknown execution mode: {execution!r}")

    clique = clique or Clique(S.n)
    n = S.n
    semiring = S.semiring
    words = semiring.words_per_element()
    rho = min(rho, n)
    if weight_universe_size is None:
        weight_universe_size = max(2, n ** 3)

    if execution == "fast":
        return _filtered_mm_fast(
            S, T, rho, weight_universe_size, clique, label, words, kernel
        )

    start_rounds = clique.rounds
    with clique.phase(label):
        rho_s = S.density()
        rho_t = T.density()
        a, b, c = compute_split_parameters(n, rho_s, rho_t, rho)

        # Step 1: cube partition (identical to Theorem 8).
        partition = cube_partition(S, T, a, b, c)
        charge_cube_partition(clique, partition.a, partition.b)

        # Step 2: per-subcube products.
        subcubes = partition.subcubes()
        s_loads, t_loads = subcube_loads(S, T, partition)
        node_assignment = assign_subcubes_to_nodes(len(subcubes), n)
        charge_input_delivery(clique, s_loads, t_loads, node_assignment, words)

        # The c "layer" matrices P_k (Figure 2): layer k collects the subcube
        # products with middle index k.
        layers: List[SemiringMatrix] = [SemiringMatrix(n, semiring) for _ in range(c)]
        per_node_raw_sizes = [0] * n
        for node, assigned in enumerate(node_assignment):
            for index in assigned:
                _, _, k, rows, mids, cols = subcubes[index]
                partial = submatrix_product(S, T, rows, mids, cols, kernel=kernel)
                per_node_raw_sizes[node] += len(partial)
                layer = layers[k]
                for (i, j), value in partial.items():
                    layer.add_entry(i, j, value)

        # Step 3: per-layer, per-row distributed binary search for the cutoff
        # (Lemma 15) -- O(log W) rounds, all searches run in parallel.
        search_rounds = max(1, math.ceil(math.log2(weight_universe_size)))
        clique.charge_rounds_formula(search_rounds, label="filter-binary-search")
        clique.charge_broadcast(label="filter-cutoff-fanout")
        filtered_layers = [layer.filter_rows(rho) for layer in layers]

        # Step 4: balancing of the surviving entries (Lemma 16 ~ Lemma 12).
        # After the cutoff filtering only the entries of the filtered layers
        # survive; they are what gets duplicated and balanced.
        filtered_sizes = [layer.nnz() for layer in filtered_layers]
        surviving_per_node = [
            min(raw, math.ceil(sum(filtered_sizes) / n) + rho)
            for raw in per_node_raw_sizes
        ]
        target_per_node = max(1, rho * c)
        charge_duplication(clique, surviving_per_node, target_per_node, words)

        # Step 5: balanced summation of the surviving entries (Lemma 13).
        total_surviving = sum(filtered_sizes)
        charge_summation(clique, total_surviving, words)

        # Step 6: local final filtering of each output row.
        summed = SemiringMatrix(n, semiring)
        for layer in filtered_layers:
            summed = summed.elementwise_add(layer)
        product = summed.filter_rows(rho)

    params = {
        "rho_s": rho_s,
        "rho_t": rho_t,
        "rho": rho,
        "a": partition.a,
        "b": partition.b,
        "c": c,
        "weight_universe_size": weight_universe_size,
        "predicted_rounds": (rho_s * rho_t * rho) ** (1 / 3) / n ** (2 / 3)
        + math.log2(weight_universe_size),
    }
    return MatMulResult(product, clique.rounds - start_rounds, clique, params)


def _filtered_mm_fast(
    S: SemiringMatrix,
    T: SemiringMatrix,
    rho: int,
    weight_universe_size: int,
    clique: Clique,
    label: str,
    words: int,
    kernel: Optional[str] = None,
) -> MatMulResult:
    """Fast-execution variant: same charges, fast local product + filter."""
    from repro.matmul.kernels import local_product
    from repro.matmul.balancing import (
        charge_cube_partition as _charge_partition,
        charge_duplication as _charge_duplication,
        charge_input_delivery as _charge_delivery,
        charge_summation as _charge_summation,
    )

    n = S.n
    start_rounds = clique.rounds
    with clique.phase(label):
        rho_s = S.density()
        rho_t = T.density()
        a, b, c = compute_split_parameters(n, rho_s, rho_t, rho)

        _charge_partition(clique, a, b)

        s_per_node = math.ceil(S.nnz() * a / n)
        t_per_node = math.ceil(T.nnz() * b / n)
        node_assignment = [[v] for v in range(n)]
        _charge_delivery(
            clique, [s_per_node] * n, [t_per_node] * n, node_assignment, words
        )

        product = local_product(S, T, keep=rho, kernel=kernel)

        search_rounds = max(1, math.ceil(math.log2(weight_universe_size)))
        clique.charge_rounds_formula(search_rounds, label="filter-binary-search")
        clique.charge_broadcast(label="filter-cutoff-fanout")

        # After filtering, each of the c layers holds at most rho entries per
        # row, so the surviving intermediate volume is at most rho * n * c.
        total_surviving = min(product.nnz() * c, rho * n * c)
        per_node_products = [math.ceil(total_surviving / n)] * n
        _charge_duplication(clique, per_node_products, max(1, rho * c), words)
        _charge_summation(clique, total_surviving, words)

    params = {
        "rho_s": rho_s,
        "rho_t": rho_t,
        "rho": rho,
        "a": a,
        "b": b,
        "c": c,
        "execution": "fast",
        "weight_universe_size": weight_universe_size,
        "predicted_rounds": (rho_s * rho_t * rho) ** (1 / 3) / n ** (2 / 3)
        + math.log2(weight_universe_size),
    }
    return MatMulResult(product, clique.rounds - start_rounds, clique, params)
