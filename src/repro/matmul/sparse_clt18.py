"""Baseline: sparse matrix multiplication of Censor-Hillel, Leitersdorf and
Turner (OPODIS 2018), the paper's reference [14].

The CLT18 algorithm exploits the sparsity of the *inputs* only; its round
complexity is ``O((ρ_S ρ_T)^{1/3} / n^{1/3} + 1)``, which is the Theorem 8
bound with the output density pinned at ``ρ̂ = n``.  We therefore implement
it as the Theorem 8 machinery run with that pessimistic output estimate —
this reproduces both its cost and the comparison the paper draws: the two
algorithms coincide when the output is dense and Theorem 8 wins whenever
``ρ̂_{ST} = o(n)``.
"""

from __future__ import annotations

from typing import Optional

from repro.cclique.accounting import Clique
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.output_sensitive import output_sensitive_mm
from repro.matmul.results import MatMulResult


def sparse_mm_clt18(
    S: SemiringMatrix,
    T: SemiringMatrix,
    clique: Optional[Clique] = None,
    label: str = "clt18-mm",
    execution: str = "faithful",
    kernel: Optional[str] = None,
) -> MatMulResult:
    """Multiply ``S · T`` with the CLT18 sparse algorithm's round cost.

    ``execution`` and ``kernel`` are forwarded to the Theorem 8 machinery
    (see :func:`repro.matmul.output_sensitive.output_sensitive_mm`).
    """
    result = output_sensitive_mm(
        S, T, rho_hat=S.n, clique=clique, label=label,
        execution=execution, kernel=kernel,
    )
    result.params["algorithm"] = "clt18"
    result.params["predicted_rounds"] = (
        (result.params["rho_s"] * result.params["rho_t"]) ** (1 / 3)
        / S.n ** (1 / 3)
        + 1
    )
    return result
