"""Witness extraction for distance products (Section 3.1, "Recovering paths").

The paper notes that because the sparse multiplication algorithms compute
every non-zero elementary product explicitly, they can also report a
*witness* for each output entry: a middle index ``w`` such that
``P[u, v] = S[u, w] + T[w, v]`` (over the min-plus family).  Witnesses are
what turns distance estimates into actual routing information — iterating
"who was the witness for this entry?" walks one hop at a time along an
optimal path.

This module provides witnessed variants of the local product kernels and a
witnessed filtered squaring, which the path-recovery layer
(:mod:`repro.distance.paths`) builds on.  The witnessed kernels are only
defined for ordered semirings whose addition is min (min-plus and the
augmented semiring), because "the term that achieved the minimum" must be
well defined.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.matmul.matrix import SemiringMatrix


@dataclasses.dataclass
class WitnessedProduct:
    """A product matrix together with per-entry witnesses.

    ``witnesses[i][j] = w`` means the value ``product[i, j]`` was realised by
    the elementary product ``S[i, w] · T[w, j]``.
    """

    product: SemiringMatrix
    witnesses: List[Dict[int, int]]

    def witness(self, i: int, j: int) -> Optional[int]:
        """The witness of entry ``(i, j)``, or ``None`` if the entry is zero."""
        return self.witnesses[i].get(j)


def witnessed_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    keep: Optional[int] = None,
    kernel: Optional[str] = None,
) -> WitnessedProduct:
    """Compute ``S · T`` with witnesses (dict or CSR kernel).

    ``keep`` applies ρ-filtering to the result, retaining the witnesses of
    the surviving entries.  Ties between equal candidate values are broken
    towards the smaller witness index so the result is deterministic —
    both kernels implement the same tie-break, so the kernel choice (cost
    model, ``kernel=``, or ``REPRO_KERNEL``) never affects the result.
    """
    from repro.matmul import csr as _csr
    from repro.matmul.kernels import DISPATCH

    semiring = S.semiring
    if not semiring.is_ordered():
        raise TypeError("witnessed products require an ordered (min) semiring")
    S._check_compatible(T)

    choice = DISPATCH.select(S, T, kernel, allowed=("dict", "csr"))
    if choice == "csr":
        matrix, witnesses = _csr.csr_witnessed_product(S, T)
        result = WitnessedProduct(product=matrix, witnesses=witnesses)
        if keep is not None:
            result = _filter_witnessed(result, keep)
        return result

    mul = semiring.mul
    zero = semiring.zero

    product = SemiringMatrix(S.n, semiring)
    witnesses: List[Dict[int, int]] = [dict() for _ in range(S.n)]
    for i in range(S.n):
        out_row: Dict[int, Any] = {}
        wit_row = witnesses[i]
        for w, s_iw in sorted(S.rows[i].items()):
            t_row = T.rows[w]
            if not t_row:
                continue
            for j, t_wj in t_row.items():
                value = mul(s_iw, t_wj)
                if value == zero:
                    continue
                current = out_row.get(j)
                if current is None or semiring.less(value, current):
                    out_row[j] = value
                    wit_row[j] = w
        product.rows[i] = out_row

    result = WitnessedProduct(product=product, witnesses=witnesses)
    if keep is not None:
        result = _filter_witnessed(result, keep)
    return result


def _filter_witnessed(result: WitnessedProduct, keep: int) -> WitnessedProduct:
    """Keep the ``keep`` smallest entries (and their witnesses) per row."""
    filtered_matrix = result.product.filter_rows(keep)
    filtered_witnesses: List[Dict[int, int]] = []
    for i in range(result.product.n):
        surviving = filtered_matrix.rows[i]
        filtered_witnesses.append(
            {j: result.witnesses[i][j] for j in surviving if j in result.witnesses[i]}
        )
    return WitnessedProduct(product=filtered_matrix, witnesses=filtered_witnesses)


def witnessed_squaring(
    W: SemiringMatrix,
    keep: int,
    squarings: int,
    kernel: Optional[str] = None,
) -> Tuple[SemiringMatrix, List[List[Dict[int, int]]]]:
    """Repeated witnessed ρ-filtered squaring.

    Returns the final filtered power and the list of per-level witness
    tables (one per squaring), which is exactly the information needed to
    expand an entry of ``W^(2^L)`` into a full node sequence: the witness at
    level L splits a path into two halves whose entries live at level L-1,
    and so on down to single edges.
    """
    if squarings < 0:
        raise ValueError("squarings must be non-negative")
    current = W.filter_rows(keep)
    witness_levels: List[List[Dict[int, int]]] = []
    for _ in range(squarings):
        step = witnessed_product(current, current, keep=keep, kernel=kernel)
        witness_levels.append(step.witnesses)
        current = step.product
    return current, witness_levels


def expand_path(
    u: int,
    v: int,
    witness_levels: List[List[Dict[int, int]]],
    level: Optional[int] = None,
) -> List[int]:
    """Expand the entry ``(u, v)`` of the top-level power into a node path.

    The path is returned as a list of nodes starting at ``u`` and ending at
    ``v``.  Entries that were already present before any squaring (direct
    edges or the diagonal) expand to the two endpoints.
    """
    if level is None:
        level = len(witness_levels)
    if u == v:
        return [u]
    if level == 0:
        return [u, v]
    witness_table = witness_levels[level - 1][u]
    w = witness_table.get(v)
    if w is None or w == u or w == v:
        # The entry was inherited unchanged from the previous level.
        return expand_path(u, v, witness_levels, level - 1)
    first = expand_path(u, w, witness_levels, level - 1)
    second = expand_path(w, v, witness_levels, level - 1)
    return first + second[1:]
