"""Sparse matrices over a semiring.

The Congested Clique matrix algorithms of Section 2 operate on ``n x n``
matrices whose rows live on the corresponding nodes.  We represent them as a
list of per-row dictionaries storing only the non-"zero" entries (the
semiring's additive identity is the absent-entry marker; for min-plus that
is ``∞``).

The class also implements the paper's density measure ``ρ_M`` — the smallest
positive integer with ``nz(M) <= ρ_M · n`` — and the ρ-filtering operation
(keep the ρ smallest entries per row) used by the filtered multiplication
and by all the distance tools.

Derived statistics (``nnz``, ``col_nnz``, ``density``, ``max_row_nnz``) and
the CSR encoding built by :mod:`repro.matmul.csr` are cached on the matrix:
the kernel dispatcher consults them on every product, and most matrices are
built once and then multiplied many times.  Mutating through :meth:`set` or
:meth:`add_entry` invalidates the cache automatically; code that writes to
``rows`` directly must call :meth:`invalidate_cache` before reading any
cached statistic.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.semiring.base import Semiring
from repro.semiring.minplus import MIN_PLUS


class SemiringMatrix:
    """A sparse ``n x n`` matrix over a semiring.

    Parameters
    ----------
    n:
        Dimension.
    semiring:
        The semiring entries live in.  Defaults to min-plus.
    rows:
        Optional pre-built list of per-row dictionaries (not copied).
    """

    __slots__ = ("n", "semiring", "rows", "_cache")

    def __init__(
        self,
        n: int,
        semiring: Semiring = MIN_PLUS,
        rows: Optional[List[Dict[int, Any]]] = None,
    ):
        if n <= 0:
            raise ValueError(f"matrix dimension must be positive, got {n}")
        self.n = int(n)
        self.semiring = semiring
        self._cache: Dict[str, Any] = {}
        if rows is None:
            self.rows: List[Dict[int, Any]] = [dict() for _ in range(self.n)]
        else:
            if len(rows) != self.n:
                raise ValueError("rows list length must equal n")
            self.rows = rows

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, semiring: Semiring = MIN_PLUS) -> "SemiringMatrix":
        """The semiring identity matrix (``one`` on the diagonal)."""
        matrix = cls(n, semiring)
        for i in range(n):
            matrix.rows[i][i] = semiring.one
        return matrix

    @classmethod
    def from_entries(
        cls,
        n: int,
        entries: Iterable[Tuple[int, int, Any]],
        semiring: Semiring = MIN_PLUS,
    ) -> "SemiringMatrix":
        """Build from ``(row, col, value)`` triples (semiring-summed on clash)."""
        matrix = cls(n, semiring)
        for i, j, value in entries:
            matrix.add_entry(i, j, value)
        return matrix

    def copy(self) -> "SemiringMatrix":
        """Deep copy."""
        return SemiringMatrix(self.n, self.semiring, [dict(row) for row in self.rows])

    # ------------------------------------------------------------------
    # entry access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> Any:
        """Entry ``(i, j)``, or the semiring zero if absent."""
        return self.rows[i].get(j, self.semiring.zero)

    def set(self, i: int, j: int, value: Any) -> None:
        """Set entry ``(i, j)``; setting the semiring zero removes the entry."""
        if self._cache:
            self._cache.clear()
        if self.semiring.is_zero(value):
            self.rows[i].pop(j, None)
        else:
            self.rows[i][j] = value

    def add_entry(self, i: int, j: int, value: Any) -> None:
        """Semiring-add ``value`` into entry ``(i, j)``."""
        if self.semiring.is_zero(value):
            return
        if self._cache:
            self._cache.clear()
        current = self.rows[i].get(j)
        if current is None:
            self.rows[i][j] = value
        else:
            self.set(i, j, self.semiring.add(current, value))

    def row(self, i: int) -> Dict[int, Any]:
        """The dictionary of non-zero entries of row ``i``."""
        return self.rows[i]

    def entries(self) -> Iterator[Tuple[int, int, Any]]:
        """Iterate over non-zero entries as ``(row, col, value)``."""
        for i in range(self.n):
            for j, value in self.rows[i].items():
                yield (i, j, value)

    # ------------------------------------------------------------------
    # densities (Section 2.1) — cached, see invalidate_cache
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop cached statistics and the cached CSR encoding.

        :meth:`set` and :meth:`add_entry` call this automatically; code that
        mutates ``rows`` directly must call it by hand before the next read
        of ``nnz``/``col_nnz``/``density`` or the next product.
        """
        self._cache.clear()

    def nnz(self) -> int:
        """Number of non-zero entries (cached)."""
        value = self._cache.get("nnz")
        if value is None:
            value = sum(len(row) for row in self.rows)
            self._cache["nnz"] = value
        return value

    def row_nnz(self, i: int) -> int:
        """Number of non-zero entries in row ``i``."""
        return len(self.rows[i])

    def col_nnz(self) -> List[int]:
        """Number of non-zero entries per column (cached; returns a copy)."""
        counts = self._cache.get("col_nnz")
        if counts is None:
            counts = [0] * self.n
            for row in self.rows:
                for j in row:
                    counts[j] += 1
            self._cache["col_nnz"] = counts
        return list(counts)

    def density(self) -> int:
        """The density ``ρ``: smallest positive integer with ``nnz <= ρ·n``."""
        return max(1, math.ceil(self.nnz() / self.n))

    def max_row_nnz(self) -> int:
        """Maximum number of non-zero entries in any row (cached)."""
        value = self._cache.get("max_row_nnz")
        if value is None:
            value = max((len(row) for row in self.rows), default=0)
            self._cache["max_row_nnz"] = value
        return value

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "SemiringMatrix":
        """The transposed matrix."""
        result = SemiringMatrix(self.n, self.semiring)
        for i, j, value in self.entries():
            result.rows[j][i] = value
        return result

    def boolean_pattern(self) -> "SemiringMatrix":
        """The 0/1 pattern matrix ``M̂`` over the Boolean semiring."""
        from repro.semiring.boolean import BOOLEAN

        pattern = SemiringMatrix(self.n, BOOLEAN)
        for i, j, _ in self.entries():
            pattern.rows[i][j] = True
        return pattern

    def filter_rows(self, keep: int) -> "SemiringMatrix":
        """ρ-filtering: keep the ``keep`` smallest entries of each row.

        Requires an ordered semiring.  Ties are broken by column index,
        matching the cutoff-value definition in Section 2.2.2, so the result
        is deterministic.
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        if not self.semiring.is_ordered():
            raise TypeError("row filtering requires an ordered semiring")
        result = SemiringMatrix(self.n, self.semiring)
        for i in range(self.n):
            row = self.rows[i]
            if len(row) <= keep:
                result.rows[i] = dict(row)
                continue
            items = sorted(row.items(), key=lambda kv: (kv[1], kv[0]))
            result.rows[i] = dict(items[:keep])
        return result

    def restrict_columns(self, columns: Sequence[int]) -> "SemiringMatrix":
        """Zero out all columns not in ``columns`` (same dimension)."""
        allowed = set(columns)
        result = SemiringMatrix(self.n, self.semiring)
        for i in range(self.n):
            result.rows[i] = {j: v for j, v in self.rows[i].items() if j in allowed}
        return result

    def restrict_rows(self, row_ids: Sequence[int]) -> "SemiringMatrix":
        """Zero out all rows not in ``row_ids`` (same dimension)."""
        allowed = set(row_ids)
        result = SemiringMatrix(self.n, self.semiring)
        for i in range(self.n):
            if i in allowed:
                result.rows[i] = dict(self.rows[i])
        return result

    def map_values(self, fn: Callable[[Any], Any]) -> "SemiringMatrix":
        """Apply ``fn`` to each non-zero value."""
        result = SemiringMatrix(self.n, self.semiring)
        for i in range(self.n):
            result.rows[i] = {j: fn(v) for j, v in self.rows[i].items()}
        return result

    def submatrix_nnz(self, row_set: Sequence[int], col_set: Sequence[int]) -> int:
        """Number of non-zero entries in the submatrix ``M[row_set, col_set]``."""
        cols = set(col_set)
        total = 0
        for i in row_set:
            row = self.rows[i]
            if len(row) <= len(cols):
                total += sum(1 for j in row if j in cols)
            else:
                total += sum(1 for j in cols if j in row)
        return total

    # ------------------------------------------------------------------
    # element-wise combination
    # ------------------------------------------------------------------
    def elementwise_add(self, other: "SemiringMatrix") -> "SemiringMatrix":
        """Semiring element-wise sum of two matrices."""
        self._check_compatible(other)
        result = self.copy()
        for i, j, value in other.entries():
            result.add_entry(i, j, value)
        return result

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def equals(self, other: "SemiringMatrix") -> bool:
        """Exact equality of the stored entries."""
        if self.n != other.n:
            return False
        return all(self.rows[i] == other.rows[i] for i in range(self.n))

    def _check_compatible(self, other: "SemiringMatrix") -> None:
        if self.n != other.n:
            raise ValueError(
                f"matrix dimensions differ: {self.n} vs {other.n}"
            )
        if type(self.semiring) is not type(other.semiring):
            raise ValueError("matrices are over different semirings")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SemiringMatrix(n={self.n}, nnz={self.nnz()}, "
            f"semiring={self.semiring.name})"
        )
