"""Load balancing steps of the sparse matrix multiplication (Lemmas 10-13).

These helpers compute, from the cube partition and the actual per-subcube
work, the message loads of the three communication-heavy steps of the
Theorem 8 / Theorem 14 algorithms, and charge them to the accounting
context:

* delivering the input submatrices to the nodes responsible for each subcube
  (Lemma 10 balancing + Lemma 11 delivery),
* duplicating over-full intermediate products (Lemma 12), and
* the balanced summation of intermediate values (Lemma 13).

The charges are pure functions of the per-node loads, which we compute
exactly from the partition rather than approximating with the asymptotic
bounds, so measured rounds reflect what the schedule would really cost.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.cclique.accounting import Clique
from repro.matmul.partition import CubePartition
from repro.matmul.matrix import SemiringMatrix


def subcube_loads(
    S: SemiringMatrix, T: SemiringMatrix, partition: CubePartition
) -> Tuple[List[int], List[int]]:
    """Per-subcube input sizes: non-zeros of ``S[rows, mids]`` and ``T[mids, cols]``.

    Returned in the order of :meth:`CubePartition.subcubes`.
    """
    s_loads: List[int] = []
    t_loads: List[int] = []
    for _, _, _, rows, mids, cols in partition.subcubes():
        s_loads.append(S.submatrix_nnz(rows, mids))
        t_loads.append(T.submatrix_nnz(mids, cols))
    return s_loads, t_loads


def assign_subcubes_to_nodes(num_subcubes: int, n: int) -> List[List[int]]:
    """Round-robin assignment of subcube indices to the ``n`` nodes."""
    assignment: List[List[int]] = [[] for _ in range(n)]
    for index in range(num_subcubes):
        assignment[index % n].append(index)
    return assignment


def charge_input_delivery(
    clique: Clique,
    s_loads: Sequence[int],
    t_loads: Sequence[int],
    node_assignment: Sequence[Sequence[int]],
    words_per_element: int,
    label: str = "input-delivery",
) -> float:
    """Charge Lemma 10 + Lemma 11: balance input entries, then deliver them.

    The balancing step is a constant number of sorting/routing rounds on at
    most ``n`` entries per node; the delivery step routes to every node the
    submatrices of its assigned subcubes, whose sizes we know exactly.
    """
    n = clique.n
    rounds = 0.0
    # Lemma 10: distribute weights, sort entries, redistribute -- constant
    # rounds on loads of at most n entries per node.
    rounds += clique.charge_broadcast(label=f"{label}/weights")
    rounds += clique.charge_sorting(n, words_per_item=words_per_element, label=f"{label}/balance-sort")
    rounds += clique.charge_routing(n, n, words_per_element, label=f"{label}/balance-route")

    # Lemma 11: every node receives the submatrices of its assigned subcubes.
    max_recv = 0
    for node, assigned in enumerate(node_assignment):
        recv = sum(s_loads[i] + t_loads[i] for i in assigned)
        max_recv = max(max_recv, recv)
    # Senders hold balanced shares of the duplicated entries, so the send
    # load matches the receive load up to the balancing guarantee.
    total = sum(s_loads) + sum(t_loads)
    max_send = max(max_recv, math.ceil(total / n)) if total else 0
    rounds += clique.charge_routing(
        max_send, max_recv, words_per_element, total_messages=total, label=f"{label}/deliver"
    )
    return rounds


def charge_duplication(
    clique: Clique,
    product_sizes: Sequence[int],
    target_per_node: int,
    words_per_element: int,
    label: str = "duplication",
) -> float:
    """Charge Lemma 12: duplicate over-full intermediate products.

    ``product_sizes[v]`` is the number of intermediate values node ``v``
    produced; nodes whose product exceeds ``target_per_node`` get helpers,
    which requires re-running the Lemma 11 delivery for the duplicated
    subtasks.  We charge a broadcast (to learn the sizes) plus a routing step
    whose load is the total amount of duplicated input.
    """
    rounds = clique.charge_broadcast(label=f"{label}/sizes")
    if target_per_node <= 0:
        return rounds
    duplicated = 0
    max_single = 0
    for size in product_sizes:
        if size > target_per_node:
            copies = size // target_per_node
            duplicated += copies * target_per_node
            max_single = max(max_single, target_per_node)
    if duplicated:
        max_load = max(max_single, math.ceil(duplicated / clique.n))
        rounds += clique.charge_routing(
            max_load,
            max_load,
            words_per_element,
            total_messages=duplicated,
            label=f"{label}/redeliver",
        )
    return rounds


def charge_summation(
    clique: Clique,
    total_intermediate: int,
    words_per_element: int,
    label: str = "summation",
) -> float:
    """Charge Lemma 13: balanced summation of the intermediate values.

    After Lemma 12 every node holds at most ``ceil(total / n)`` values; they
    are summed in repeats of ``n`` values per node, each repeat costing a
    constant number of sorting + routing rounds.
    """
    n = clique.n
    if total_intermediate <= 0:
        return 0.0
    per_node = math.ceil(total_intermediate / n)
    repeats = max(1, math.ceil(per_node / n))
    rounds = 0.0
    for _ in range(repeats):
        rounds += clique.charge_sorting(n, words_per_item=words_per_element, label=f"{label}/sort")
        rounds += clique.charge_broadcast(label=f"{label}/boundaries")
        rounds += clique.charge_routing(n, n, words_per_element, label=f"{label}/redistribute")
    return rounds


def charge_cube_partition(
    clique: Clique, a: int, b: int, label: str = "cube-partition"
) -> float:
    """Charge the communication of Lemma 9 (all steps are O(1) rounds)."""
    n = clique.n
    rounds = 0.0
    # Row / column non-zero counts are broadcast so all nodes compute the
    # same Lemma 5 partitions.
    rounds += clique.charge_broadcast(label=f"{label}/row-counts")
    rounds += clique.charge_broadcast(label=f"{label}/col-counts")
    # Redistribution so node v holds column v of S and row v of T.
    rounds += clique.charge_routing(n, n, 1, label=f"{label}/redistribute")
    # Each node sends its per-(i, j) non-zero counts to the group handling
    # that pair: at most a*b*c = n messages sent and n received per node.
    rounds += clique.charge_routing(min(n, a * b), n, 1, label=f"{label}/group-counts")
    # Each node broadcasts the boundaries of its middle block.
    rounds += clique.charge_broadcast(words=2, label=f"{label}/boundaries")
    return rounds
