"""Local product kernels: sparse-dict, CSR, and dense, behind a cost model.

In the Congested Clique algorithms each node computes products of the
submatrices it has learned *locally* — local computation is free in the
model, only communication costs rounds.  Three kernels provide that local
computation:

* ``dict`` — the reference dictionary-based sparse semiring product: a pure
  Python triple loop, works for any semiring, cost proportional to the
  number of elementary products.  Always available, slowest per product.
* ``csr`` — the vectorised sparse kernels of :mod:`repro.matmul.csr`:
  operands are converted (once, cached on the matrix) to CSR numpy arrays
  and the product is evaluated with gathers and segmented min-reductions.
  Available for the min-plus family (floats / augmented int64 encoding)
  and the Boolean semiring; typically 5-50x faster than ``dict`` on sparse
  inputs.
* ``dense`` — the blocked dense broadcast kernel
  (:func:`minplus_matmul_arrays`): densify both operands and take a full
  ``n³`` min-plus.  Min-plus family only; wins when both operands are near
  dense so the sparse bookkeeping is pure overhead.

:class:`KernelDispatch` picks between them per call from estimated costs:
the number of elementary products ``Σ_k colnnz_S(k) · rownnz_T(k)`` (the
work of the sparse kernels) against the dense ``n³`` FLOP count, each
weighted by a per-kernel cost-per-operation plus fixed setup and conversion
charges.  The choice never affects the result — all three kernels are
bit-identical on their common domain (property-tested).

Pinning a kernel: every product entry point accepts ``kernel="dict" |
"csr" | "dense"``, and the ``REPRO_KERNEL`` environment variable pins the
default process-wide (benchmarks and tests use this; an env-pinned kernel
that cannot handle the semiring or operation at hand falls back to the
cost model over the kernels that can, while an explicitly passed one
raises).

``benchmarks/bench_primitives.py --json`` measures all three kernels on
fixed seeds/sizes and writes ``BENCH_PR2.json``; see the README's
Performance section for how to read it.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.matmul import csr as _csr
from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import AugmentedMinPlusSemiring
from repro.semiring.base import Semiring
from repro.semiring.minplus import MinPlusSemiring

#: Environment variable pinning the kernel choice process-wide.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Valid kernel names ("auto" defers to the cost model).
KERNEL_NAMES = ("auto", "dict", "csr", "dense")

#: Row-block size for the numpy broadcast kernel (memory / speed trade-off).
_BLOCK_ROWS = 32


class KernelDispatch:
    """Cost-model kernel selection for the local products.

    The unit is "one Python-level dictionary product" ≈ a few hundred
    nanoseconds; the other constants are measured relative to it on the
    ``bench_primitives`` workloads.  The absolute values only matter near
    the crossover points, where all kernels are within a small factor of
    each other anyway.
    """

    def __init__(
        self,
        dict_op: float = 1.0,
        csr_op: float = 0.05,
        csr_setup: float = 4000.0,
        csr_convert_per_nnz: float = 0.25,
        dense_op: float = 0.012,
        dense_setup: float = 4000.0,
        dense_per_cell: float = 0.08,
    ):
        self.dict_op = dict_op
        self.csr_op = csr_op
        self.csr_setup = csr_setup
        self.csr_convert_per_nnz = csr_convert_per_nnz
        self.dense_op = dense_op
        self.dense_setup = dense_setup
        self.dense_per_cell = dense_per_cell

    # -- eligibility ----------------------------------------------------
    @staticmethod
    def csr_eligible(semiring: Semiring) -> bool:
        return _csr.csr_supported(semiring)

    @staticmethod
    def dense_eligible(semiring: Semiring) -> bool:
        return isinstance(semiring, (MinPlusSemiring, AugmentedMinPlusSemiring))

    # -- cost model -----------------------------------------------------
    @staticmethod
    def estimated_products(S: SemiringMatrix, T: SemiringMatrix) -> int:
        """Estimated elementary products ``Σ_k colnnz_S(k) · rownnz_T(k)``."""
        col = np.asarray(S.col_nnz(), dtype=np.int64)
        rows = np.fromiter(
            (len(row) for row in T.rows), dtype=np.int64, count=T.n
        )
        return int(col @ rows)

    def costs(self, S: SemiringMatrix, T: SemiringMatrix,
              products_scale: float = 1.0) -> Dict[str, float]:
        """Estimated cost of each eligible kernel (in dict-product units).

        ``products_scale`` scales the elementary-product estimate for
        restricted products that only touch a fraction of the cube (the
        subcube calls of the faithful execution modes).
        """
        products = self.estimated_products(S, T) * products_scale
        nnz = S.nnz() + T.nnz()
        n = S.n
        out = {"dict": products * self.dict_op}
        if self.csr_eligible(S.semiring):
            convert = 0.0
            for operand in (S, T):
                if "csr" not in operand._cache:
                    convert += operand.nnz() * self.csr_convert_per_nnz
            out["csr"] = (
                self.csr_setup + convert + products * self.csr_op + nnz * 0.05
            )
        if self.dense_eligible(S.semiring):
            out["dense"] = (
                self.dense_setup
                + 2 * n * n * self.dense_per_cell
                + float(n) ** 3 * self.dense_op
            )
        return out

    # -- selection ------------------------------------------------------
    def select(
        self,
        S: SemiringMatrix,
        T: SemiringMatrix,
        kernel: Optional[str] = None,
        allowed: Sequence[str] = ("dict", "csr", "dense"),
        products_scale: float = 1.0,
    ) -> str:
        """Resolve the kernel for one product call.

        Priority: explicit ``kernel`` argument (raises if the semiring
        cannot use it), then the ``REPRO_KERNEL`` environment variable
        (falls back to the cost model if ineligible), then the cost model.
        ``allowed`` restricts the menu for callers that lack a kernel
        variant (e.g. witnessed products have no dense form);
        ``products_scale`` is forwarded to :meth:`costs`.
        """
        eligible = {"dict"}
        if "csr" in allowed and self.csr_eligible(S.semiring):
            eligible.add("csr")
        if "dense" in allowed and self.dense_eligible(S.semiring):
            eligible.add("dense")

        if kernel is not None:
            if kernel not in KERNEL_NAMES:
                raise ValueError(
                    f"unknown kernel {kernel!r}; valid kernels: {KERNEL_NAMES}"
                )
            if kernel != "auto":
                if kernel not in eligible:
                    raise ValueError(
                        f"kernel {kernel!r} does not support the "
                        f"{S.semiring.name} semiring (or this operation); "
                        f"eligible: {sorted(eligible)}"
                    )
                return kernel

        pinned = os.environ.get(KERNEL_ENV_VAR)
        if pinned and pinned != "auto":
            if pinned not in KERNEL_NAMES:
                raise ValueError(
                    f"{KERNEL_ENV_VAR}={pinned!r} is not a valid kernel; "
                    f"valid kernels: {KERNEL_NAMES}"
                )
            if pinned in eligible:
                return pinned
            # Pinned kernel can't run this call (wrong semiring or no such
            # variant): fall through to the cost model over the eligible set.

        costs = self.costs(S, T, products_scale)
        return min(
            (name for name in costs if name in eligible),
            key=lambda name: costs[name],
        )


#: Process-wide dispatcher instance (benchmarks may tweak its constants).
DISPATCH = KernelDispatch()


def local_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    keep: Optional[int] = None,
    kernel: Optional[str] = None,
) -> SemiringMatrix:
    """Compute ``P = S · T`` over the matrices' semiring.

    ``keep``, if given, applies ρ-filtering with ρ = ``keep`` to the result
    (requires an ordered semiring).  The kernel (sparse dictionaries, CSR,
    or dense numpy) is chosen by the cost model unless pinned via
    ``kernel`` or the ``REPRO_KERNEL`` environment variable, and never
    affects the result.
    """
    S._check_compatible(T)
    choice = DISPATCH.select(S, T, kernel)
    if choice == "csr":
        return _csr.csr_product(S, T, keep=keep)
    if choice == "dense":
        product = _numpy_product(S, T)
    else:
        product = sparse_dict_product(S, T)
    if keep is not None:
        product = product.filter_rows(keep)
    return product


def sparse_dict_product(S: SemiringMatrix, T: SemiringMatrix) -> SemiringMatrix:
    """Dictionary-based sparse product (reference implementation)."""
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    result = SemiringMatrix(S.n, semiring)
    t_rows = T.rows
    for i in range(S.n):
        out_row: Dict[int, Any] = {}
        for k, s_ik in S.rows[i].items():
            t_row = t_rows[k]
            if not t_row:
                continue
            for j, t_kj in t_row.items():
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                current = out_row.get(j)
                out_row[j] = value if current is None else add(current, value)
        result.rows[i] = {j: v for j, v in out_row.items() if v != zero}
    return result


def submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
    kernel: Optional[str] = None,
) -> Dict[Tuple[int, int], Any]:
    """Compute the subcube product ``S[row_set, mid_set] · T[mid_set, col_set]``.

    Returns a dictionary keyed by global ``(row, col)`` positions.  This is
    exactly the work a single node does for its assigned subcube in the
    Theorem 8 / Theorem 14 algorithms.  The faithful execution modes call
    this once per subcube over the same ``S`` and ``T``, so the CSR kernel's
    cached operand encoding amortises over the whole schedule; the dispatch
    cost model scales the full-product estimate by the subcube's row
    fraction.
    """
    row_fraction = min(1.0, len(row_set) / max(1, S.n))
    choice = DISPATCH.select(
        S, T, kernel, allowed=("dict", "csr"), products_scale=row_fraction
    )
    if choice == "csr":
        return _csr.csr_submatrix_product(S, T, row_set, mid_set, col_set)
    return _dict_submatrix_product(S, T, row_set, mid_set, col_set)


def _dict_submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
) -> Dict[Tuple[int, int], Any]:
    """Reference dictionary evaluation of the subcube product."""
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    cols = set(col_set)
    mids = set(mid_set)
    out: Dict[Tuple[int, int], Any] = {}
    for i in row_set:
        s_row = S.rows[i]
        if not s_row:
            continue
        if len(s_row) <= len(mids):
            mid_items = [(k, v) for k, v in s_row.items() if k in mids]
        else:
            mid_items = [(k, s_row[k]) for k in mids if k in s_row]
        for k, s_ik in mid_items:
            t_row = T.rows[k]
            if not t_row:
                continue
            if len(t_row) <= len(cols):
                col_items = [(j, v) for j, v in t_row.items() if j in cols]
            else:
                col_items = [(j, t_row[j]) for j in cols if j in t_row]
            for j, t_kj in col_items:
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                key = (i, j)
                current = out.get(key)
                out[key] = value if current is None else add(current, value)
    return out


# ----------------------------------------------------------------------
# dense numpy kernel for the min-plus family
# ----------------------------------------------------------------------
def to_dense_array(M: SemiringMatrix) -> np.ndarray:
    """Encode a min-plus-family matrix as a dense numpy array.

    Plain min-plus matrices become ``float64`` arrays with ``inf`` for
    missing entries; augmented matrices become ``int64`` arrays of the
    order-preserving encoding with the infinity code for missing entries.
    """
    semiring = M.semiring
    if isinstance(semiring, AugmentedMinPlusSemiring):
        array = np.full((M.n, M.n), semiring.inf_code, dtype=np.int64)
        for i, j, value in M.entries():
            array[i, j] = semiring.encode(value)
        return array
    array = np.full((M.n, M.n), np.inf, dtype=np.float64)
    for i, j, value in M.entries():
        array[i, j] = value
    return array


def from_dense_array(
    array: np.ndarray, semiring: Semiring
) -> SemiringMatrix:
    """Decode a dense numpy array back into a :class:`SemiringMatrix`."""
    n = array.shape[0]
    result = SemiringMatrix(n, semiring)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        inf_code = semiring.inf_code
        for i in range(n):
            row = array[i]
            nonzero = np.nonzero(row < inf_code)[0]
            result.rows[i] = {
                int(j): semiring.decode(int(row[j])) for j in nonzero
            }
        return result
    for i in range(n):
        row = array[i]
        nonzero = np.nonzero(np.isfinite(row))[0]
        result.rows[i] = {int(j): float(row[j]) for j in nonzero}
    return result


def minplus_matmul_arrays(A: np.ndarray, B: np.ndarray, block: int = _BLOCK_ROWS) -> np.ndarray:
    """Dense min-plus product of two numpy arrays via blocked broadcasting."""
    n = A.shape[0]
    if A.dtype == np.int64:
        # Augmented encoding: clip so inf + inf cannot be mistaken for finite.
        out = np.empty((n, n), dtype=np.int64)
    else:
        out = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block):
        stop = min(n, start + block)
        # shape: (rows, k, cols) -> min over k
        chunk = A[start:stop, :, None] + B[None, :, :]
        out[start:stop] = chunk.min(axis=1)
    return out


def _numpy_product(S: SemiringMatrix, T: SemiringMatrix) -> SemiringMatrix:
    semiring = S.semiring
    # Densify through the cached CSR encoding (vectorised scatter) rather
    # than the per-entry Python loop of to_dense_array.
    A = _csr.to_csr(S).dense()
    B = _csr.to_csr(T).dense()
    C = minplus_matmul_arrays(A, B)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        # Any sum involving the infinity code exceeds it; clamp back.
        np.minimum(C, semiring.inf_code, out=C)
        C[C >= semiring.inf_code] = semiring.inf_code
    return from_dense_array(C, semiring)


def iterated_squaring(
    W: SemiringMatrix,
    power: int,
    keep: Optional[int] = None,
    kernel: Optional[str] = None,
) -> SemiringMatrix:
    """Compute ``W`` to the given power by repeated squaring (local only).

    Used by reference computations in tests; the distributed algorithms
    perform their own squaring through the round-charged multiplication
    routines.
    """
    if power < 1:
        raise ValueError("power must be at least 1")
    result = W if keep is None else W.filter_rows(keep)
    steps = max(0, math.ceil(math.log2(power)))
    for _ in range(steps):
        result = local_product(result, result, keep=keep, kernel=kernel)
    return result
