"""Local product kernels.

In the Congested Clique algorithms each node computes products of the
submatrices it has learned *locally* — local computation is free in the
model, only communication costs rounds.  These kernels provide that local
computation:

* a general dictionary-based sparse semiring product (works for any
  semiring, cost proportional to the number of elementary products), and
* numpy-accelerated dense kernels for the min-plus family (plain min-plus on
  floats, augmented min-plus through its order-preserving int64 encoding),
  used when matrices are dense enough that the dictionary loops would
  dominate wall-clock time.

The two are cross-checked against each other in the property tests.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import AugmentedMinPlusSemiring
from repro.semiring.base import Semiring
from repro.semiring.minplus import MinPlusSemiring

#: Above this fraction of non-zero entries the dense numpy kernel is used.
_DENSE_THRESHOLD = 0.08

#: Row-block size for the numpy broadcast kernel (memory / speed trade-off).
_BLOCK_ROWS = 32


def local_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    keep: Optional[int] = None,
) -> SemiringMatrix:
    """Compute ``P = S · T`` over the matrices' semiring.

    ``keep``, if given, applies ρ-filtering with ρ = ``keep`` to the result
    (requires an ordered semiring).  The kernel used (sparse dictionaries or
    dense numpy) is chosen automatically and does not affect the result.
    """
    S._check_compatible(T)
    semiring = S.semiring
    use_numpy = _numpy_eligible(semiring) and _dense_enough(S, T)
    if use_numpy:
        product = _numpy_product(S, T)
    else:
        product = sparse_dict_product(S, T)
    if keep is not None:
        product = product.filter_rows(keep)
    return product


def sparse_dict_product(S: SemiringMatrix, T: SemiringMatrix) -> SemiringMatrix:
    """Dictionary-based sparse product (reference implementation)."""
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    result = SemiringMatrix(S.n, semiring)
    t_rows = T.rows
    for i in range(S.n):
        out_row: Dict[int, Any] = {}
        for k, s_ik in S.rows[i].items():
            t_row = t_rows[k]
            if not t_row:
                continue
            for j, t_kj in t_row.items():
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                current = out_row.get(j)
                out_row[j] = value if current is None else add(current, value)
        result.rows[i] = {j: v for j, v in out_row.items() if v != zero}
    return result


def submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
) -> Dict[Tuple[int, int], Any]:
    """Compute the subcube product ``S[row_set, mid_set] · T[mid_set, col_set]``.

    Returns a dictionary keyed by global ``(row, col)`` positions.  This is
    exactly the work a single node does for its assigned subcube in the
    Theorem 8 / Theorem 14 algorithms.
    """
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    cols = set(col_set)
    mids = set(mid_set)
    out: Dict[Tuple[int, int], Any] = {}
    for i in row_set:
        s_row = S.rows[i]
        if not s_row:
            continue
        if len(s_row) <= len(mids):
            mid_items = [(k, v) for k, v in s_row.items() if k in mids]
        else:
            mid_items = [(k, s_row[k]) for k in mids if k in s_row]
        for k, s_ik in mid_items:
            t_row = T.rows[k]
            if not t_row:
                continue
            if len(t_row) <= len(cols):
                col_items = [(j, v) for j, v in t_row.items() if j in cols]
            else:
                col_items = [(j, t_row[j]) for j in cols if j in t_row]
            for j, t_kj in col_items:
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                key = (i, j)
                current = out.get(key)
                out[key] = value if current is None else add(current, value)
    return out


# ----------------------------------------------------------------------
# numpy kernels for the min-plus family
# ----------------------------------------------------------------------
def _numpy_eligible(semiring: Semiring) -> bool:
    return isinstance(semiring, (MinPlusSemiring, AugmentedMinPlusSemiring))


def _dense_enough(S: SemiringMatrix, T: SemiringMatrix) -> bool:
    total_cells = S.n * S.n
    return (
        S.n >= 48
        and (S.nnz() / total_cells) >= _DENSE_THRESHOLD
        and (T.nnz() / total_cells) >= _DENSE_THRESHOLD
    )


def to_dense_array(M: SemiringMatrix) -> np.ndarray:
    """Encode a min-plus-family matrix as a dense numpy array.

    Plain min-plus matrices become ``float64`` arrays with ``inf`` for
    missing entries; augmented matrices become ``int64`` arrays of the
    order-preserving encoding with the infinity code for missing entries.
    """
    semiring = M.semiring
    if isinstance(semiring, AugmentedMinPlusSemiring):
        array = np.full((M.n, M.n), semiring.inf_code, dtype=np.int64)
        for i, j, value in M.entries():
            array[i, j] = semiring.encode(value)
        return array
    array = np.full((M.n, M.n), np.inf, dtype=np.float64)
    for i, j, value in M.entries():
        array[i, j] = value
    return array


def from_dense_array(
    array: np.ndarray, semiring: Semiring
) -> SemiringMatrix:
    """Decode a dense numpy array back into a :class:`SemiringMatrix`."""
    n = array.shape[0]
    result = SemiringMatrix(n, semiring)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        inf_code = semiring.inf_code
        for i in range(n):
            row = array[i]
            nonzero = np.nonzero(row < inf_code)[0]
            result.rows[i] = {
                int(j): semiring.decode(int(row[j])) for j in nonzero
            }
        return result
    for i in range(n):
        row = array[i]
        nonzero = np.nonzero(np.isfinite(row))[0]
        result.rows[i] = {int(j): float(row[j]) for j in nonzero}
    return result


def minplus_matmul_arrays(A: np.ndarray, B: np.ndarray, block: int = _BLOCK_ROWS) -> np.ndarray:
    """Dense min-plus product of two numpy arrays via blocked broadcasting."""
    n = A.shape[0]
    if A.dtype == np.int64:
        # Augmented encoding: clip so inf + inf cannot be mistaken for finite.
        out = np.empty((n, n), dtype=np.int64)
    else:
        out = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block):
        stop = min(n, start + block)
        # shape: (rows, k, cols) -> min over k
        chunk = A[start:stop, :, None] + B[None, :, :]
        out[start:stop] = chunk.min(axis=1)
    return out


def _numpy_product(S: SemiringMatrix, T: SemiringMatrix) -> SemiringMatrix:
    semiring = S.semiring
    A = to_dense_array(S)
    B = to_dense_array(T)
    C = minplus_matmul_arrays(A, B)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        # Any sum involving the infinity code exceeds it; clamp back.
        np.minimum(C, semiring.inf_code, out=C)
        C[C >= semiring.inf_code] = semiring.inf_code
    return from_dense_array(C, semiring)


def iterated_squaring(
    W: SemiringMatrix,
    power: int,
    keep: Optional[int] = None,
) -> SemiringMatrix:
    """Compute ``W`` to the given power by repeated squaring (local only).

    Used by reference computations in tests; the distributed algorithms
    perform their own squaring through the round-charged multiplication
    routines.
    """
    if power < 1:
        raise ValueError("power must be at least 1")
    result = W if keep is None else W.filter_rows(keep)
    steps = max(0, math.ceil(math.log2(power)))
    for _ in range(steps):
        result = local_product(result, result, keep=keep)
    return result
