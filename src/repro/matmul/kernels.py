"""Local product kernels: sparse-dict, CSR, and dense tiers, behind a cost model.

In the Congested Clique algorithms each node computes products of the
submatrices it has learned *locally* — local computation is free in the
model, only communication costs rounds.  Five kernels provide that local
computation:

* ``dict`` — the reference dictionary-based sparse semiring product: a pure
  Python triple loop, works for any semiring, cost proportional to the
  number of elementary products.  Always available, slowest per product,
  and the bit-exact baseline every other tier is property-tested against.
* ``csr`` — the vectorised sparse kernels of :mod:`repro.matmul.csr`:
  operands are converted (once, cached on the matrix) to CSR numpy arrays
  and the product is evaluated with gathers and segmented min-reductions.
  Available for the min-plus family (floats / augmented int64 encoding)
  and the Boolean semiring; typically 5-50x faster than ``dict`` on sparse
  inputs.
* ``dense`` — the row-block dense broadcast kernel
  (:func:`repro.matmul.dense.minplus_matmul_arrays`): densify both
  operands and take a full ``n³`` min-plus, one ``(block, n, n)``
  temporary per row block.  Min-plus family only.
* ``dense-blocked`` — the cache-tiled dense kernel
  (:func:`repro.matmul.dense.minplus_blocked`): same ``n³`` product walked
  in cache-sized ``(i, k, j)`` tiles with a running minimum, so the
  temporaries stop thrashing memory bandwidth.  2-3x faster than
  ``dense`` at n >= 512 and the tier the parallel build executor uses for
  its row-slab products.
* ``jit`` — a numba-compiled triple loop
  (:func:`repro.matmul.dense.minplus_jit`).  Only offered when numba is
  importable (the optional ``perf`` extra); never required.

:class:`KernelDispatch` picks between them per call from estimated costs:
the number of elementary products ``Σ_k colnnz_S(k) · rownnz_T(k)`` (the
work of the sparse kernels) against the dense ``n³`` FLOP count, each
weighted by a per-kernel cost-per-operation plus fixed setup and conversion
charges.  Cost estimates are memoized per operand pair (keyed on identity,
shape, nnz, and conversion-cache state), so iterated call chains — repeated
squaring, the per-subcube schedules of the faithful execution modes — pay
the O(n) estimate once instead of on every ``select()``.  The choice never
affects the result — all tiers are bit-identical on their common domain
(property-tested).

Pinning a kernel: every product entry point accepts ``kernel="dict" |
"csr" | "dense" | "dense-blocked" | "jit"``, and the ``REPRO_KERNEL``
environment variable pins the default process-wide (benchmarks and tests
use this; an env-pinned kernel that cannot handle the semiring or operation
at hand falls back to the cost model over the kernels that can, while an
explicitly passed one raises).

``benchmarks/bench_primitives.py --json`` measures the kernels on fixed
seeds/sizes and writes ``BENCH_PR2.json``; see the README's Performance
section for how to read it.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.matmul import csr as _csr
from repro.matmul import dense as _dense
from repro.matmul.dense import (  # noqa: F401  (re-exported: original home)
    HAVE_NUMBA,
    from_dense_array,
    minplus_blocked,
    minplus_jit,
    minplus_matmul_arrays,
    to_dense_array,
)
from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import AugmentedMinPlusSemiring
from repro.semiring.base import Semiring
from repro.semiring.minplus import MinPlusSemiring

#: Environment variable pinning the kernel choice process-wide.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Valid kernel names ("auto" defers to the cost model).
KERNEL_NAMES = ("auto", "dict", "csr", "dense", "dense-blocked", "jit")

#: The dense-array tiers (one densified product, three inner loops).
DENSE_TIERS = ("dense", "dense-blocked", "jit")


class KernelDispatch:
    """Cost-model kernel selection for the local products.

    The unit is "one Python-level dictionary product" ≈ a few hundred
    nanoseconds; the other constants are measured relative to it on the
    ``bench_primitives`` workloads.  The absolute values only matter near
    the crossover points, where all kernels are within a small factor of
    each other anyway.
    """

    #: Maximum memoized cost entries kept (LRU); see :meth:`costs`.
    COST_CACHE_SIZE = 128

    def __init__(
        self,
        dict_op: float = 1.0,
        csr_op: float = 0.05,
        csr_setup: float = 4000.0,
        csr_convert_per_nnz: float = 0.25,
        dense_op: float = 0.012,
        dense_setup: float = 4000.0,
        dense_per_cell: float = 0.08,
        dense_blocked_op: float = 0.005,
        jit_op: float = 0.0015,
    ):
        self.dict_op = dict_op
        self.csr_op = csr_op
        self.csr_setup = csr_setup
        self.csr_convert_per_nnz = csr_convert_per_nnz
        self.dense_op = dense_op
        self.dense_setup = dense_setup
        self.dense_per_cell = dense_per_cell
        self.dense_blocked_op = dense_blocked_op
        self.jit_op = jit_op
        self._cost_cache: "OrderedDict[Tuple, Dict[str, float]]" = OrderedDict()
        #: Per-kernel selection counts; surfaced as
        #: ``repro_kernel_selected_total{kernel=...}`` on the obs registry.
        self.selections: Dict[str, int] = {}

    # -- eligibility ----------------------------------------------------
    @staticmethod
    def csr_eligible(semiring: Semiring) -> bool:
        return _csr.csr_supported(semiring)

    @staticmethod
    def dense_eligible(semiring: Semiring) -> bool:
        return isinstance(semiring, (MinPlusSemiring, AugmentedMinPlusSemiring))

    @staticmethod
    def jit_eligible(semiring: Semiring) -> bool:
        """The jit tier needs numba *and* a min-plus-family semiring."""
        return _dense.HAVE_NUMBA and KernelDispatch.dense_eligible(semiring)

    # -- cost model -----------------------------------------------------
    @staticmethod
    def estimated_products(S: SemiringMatrix, T: SemiringMatrix) -> int:
        """Estimated elementary products ``Σ_k colnnz_S(k) · rownnz_T(k)``."""
        col = np.asarray(S.col_nnz(), dtype=np.int64)
        rows = np.fromiter(
            (len(row) for row in T.rows), dtype=np.int64, count=T.n
        )
        return int(col @ rows)

    def _cost_key(self, S: SemiringMatrix, T: SemiringMatrix,
                  products_scale: float) -> Tuple:
        # Identity plus shape/nnz/conversion-state: a mutation through
        # set()/add_entry() changes nnz (or clears the CSR cache) and so
        # misses this key.  A same-nnz in-place rewrite could alias, but the
        # estimate only steers kernel choice — results are unaffected.
        return (
            id(S), id(T), S.n, S.nnz(), T.nnz(), products_scale,
            "csr" in S._cache, "csr" in T._cache,
        )

    def clear_cost_cache(self) -> None:
        """Drop all memoized cost estimates."""
        self._cost_cache.clear()

    def _record_selection(self, choice: str) -> str:
        """Count the selected tier (dict bump + a registry series per tier).

        The registry counter is callback-backed by :attr:`selections`, so
        the per-call cost is one dict increment; the counter child is
        created once per distinct kernel name.
        """
        if choice not in self.selections:
            self.selections[choice] = 0
            from repro.obs.metrics import get_registry
            get_registry().counter(
                "repro_kernel_selected_total",
                "Kernel tiers chosen by KernelDispatch.select",
                labels={"kernel": choice},
            ).set_function(
                lambda d, _k=choice: d.selections.get(_k, 0), self)
        self.selections[choice] += 1
        return choice

    def costs(self, S: SemiringMatrix, T: SemiringMatrix,
              products_scale: float = 1.0) -> Dict[str, float]:
        """Estimated cost of each eligible kernel (in dict-product units).

        ``products_scale`` scales the elementary-product estimate for
        restricted products that only touch a fraction of the cube (the
        subcube calls of the faithful execution modes).  Memoized per
        operand pair (LRU of :attr:`COST_CACHE_SIZE`): iterated squaring
        and per-subcube schedules re-``select()`` over the same operands,
        and the O(n) product estimate only needs to be paid once per pair.
        """
        key = self._cost_key(S, T, products_scale)
        cached = self._cost_cache.get(key)
        if cached is not None:
            self._cost_cache.move_to_end(key)
            return dict(cached)

        products = self.estimated_products(S, T) * products_scale
        nnz = S.nnz() + T.nnz()
        n = S.n
        out = {"dict": products * self.dict_op}
        if self.csr_eligible(S.semiring):
            convert = 0.0
            for operand in (S, T):
                if "csr" not in operand._cache:
                    convert += operand.nnz() * self.csr_convert_per_nnz
            out["csr"] = (
                self.csr_setup + convert + products * self.csr_op + nnz * 0.05
            )
        if self.dense_eligible(S.semiring):
            densify = self.dense_setup + 2 * n * n * self.dense_per_cell
            cube = float(n) ** 3
            out["dense"] = densify + cube * self.dense_op
            out["dense-blocked"] = densify + cube * self.dense_blocked_op
            if self.jit_eligible(S.semiring):
                out["jit"] = densify + cube * self.jit_op

        self._cost_cache[key] = dict(out)
        if len(self._cost_cache) > self.COST_CACHE_SIZE:
            self._cost_cache.popitem(last=False)
        return out

    # -- selection ------------------------------------------------------
    def select(
        self,
        S: SemiringMatrix,
        T: SemiringMatrix,
        kernel: Optional[str] = None,
        allowed: Sequence[str] = ("dict", "csr", "dense"),
        products_scale: float = 1.0,
    ) -> str:
        """Resolve the kernel for one product call.

        Priority: explicit ``kernel`` argument (raises if the semiring
        cannot use it), then the ``REPRO_KERNEL`` environment variable
        (falls back to the cost model if ineligible), then the cost model.
        ``allowed`` restricts the menu for callers that lack a kernel
        variant (e.g. witnessed products have no dense form); listing
        ``"dense"`` admits the whole dense-array family (``dense``,
        ``dense-blocked``, and — with numba — ``jit``).
        ``products_scale`` is forwarded to :meth:`costs`.
        """
        eligible = {"dict"}
        if "csr" in allowed and self.csr_eligible(S.semiring):
            eligible.add("csr")
        if "dense" in allowed and self.dense_eligible(S.semiring):
            eligible.add("dense")
            eligible.add("dense-blocked")
            if self.jit_eligible(S.semiring):
                eligible.add("jit")

        if kernel is not None:
            if kernel not in KERNEL_NAMES:
                raise ValueError(
                    f"unknown kernel {kernel!r}; valid kernels: {KERNEL_NAMES}"
                )
            if kernel != "auto":
                if kernel not in eligible:
                    detail = ""
                    if kernel == "jit" and not _dense.HAVE_NUMBA:
                        detail = " — numba is not installed (perf extra)"
                    raise ValueError(
                        f"kernel {kernel!r} does not support the "
                        f"{S.semiring.name} semiring (or this operation); "
                        f"eligible: {sorted(eligible)}{detail}"
                    )
                return self._record_selection(kernel)

        pinned = os.environ.get(KERNEL_ENV_VAR)
        if pinned and pinned != "auto":
            if pinned not in KERNEL_NAMES:
                raise ValueError(
                    f"{KERNEL_ENV_VAR}={pinned!r} is not a valid kernel; "
                    f"valid kernels: {KERNEL_NAMES}"
                )
            if pinned in eligible:
                return self._record_selection(pinned)
            # Pinned kernel can't run this call (wrong semiring, missing
            # numba, or no such variant): fall through to the cost model
            # over the eligible set.

        costs = self.costs(S, T, products_scale)
        return self._record_selection(min(
            (name for name in costs if name in eligible),
            key=lambda name: costs[name],
        ))


#: Process-wide dispatcher instance (benchmarks may tweak its constants).
DISPATCH = KernelDispatch()


def local_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    keep: Optional[int] = None,
    kernel: Optional[str] = None,
) -> SemiringMatrix:
    """Compute ``P = S · T`` over the matrices' semiring.

    ``keep``, if given, applies ρ-filtering with ρ = ``keep`` to the result
    (requires an ordered semiring).  The kernel tier (sparse dictionaries,
    CSR, or one of the dense-array tiers) is chosen by the cost model
    unless pinned via ``kernel`` or the ``REPRO_KERNEL`` environment
    variable, and never affects the result.
    """
    S._check_compatible(T)
    choice = DISPATCH.select(S, T, kernel)
    if choice == "csr":
        return _csr.csr_product(S, T, keep=keep)
    if choice in DENSE_TIERS:
        product = _numpy_product(S, T, variant=choice)
    else:
        product = sparse_dict_product(S, T)
    if keep is not None:
        product = product.filter_rows(keep)
    return product


def sparse_dict_product(S: SemiringMatrix, T: SemiringMatrix) -> SemiringMatrix:
    """Dictionary-based sparse product (reference implementation)."""
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    result = SemiringMatrix(S.n, semiring)
    t_rows = T.rows
    for i in range(S.n):
        out_row: Dict[int, Any] = {}
        for k, s_ik in S.rows[i].items():
            t_row = t_rows[k]
            if not t_row:
                continue
            for j, t_kj in t_row.items():
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                current = out_row.get(j)
                out_row[j] = value if current is None else add(current, value)
        result.rows[i] = {j: v for j, v in out_row.items() if v != zero}
    return result


def submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
    kernel: Optional[str] = None,
) -> Dict[Tuple[int, int], Any]:
    """Compute the subcube product ``S[row_set, mid_set] · T[mid_set, col_set]``.

    Returns a dictionary keyed by global ``(row, col)`` positions.  This is
    exactly the work a single node does for its assigned subcube in the
    Theorem 8 / Theorem 14 algorithms.  The faithful execution modes call
    this once per subcube over the same ``S`` and ``T``, so the CSR kernel's
    cached operand encoding — and the dispatcher's memoized cost estimate —
    amortise over the whole schedule; the dispatch cost model scales the
    full-product estimate by the subcube's row fraction.
    """
    row_fraction = min(1.0, len(row_set) / max(1, S.n))
    choice = DISPATCH.select(
        S, T, kernel, allowed=("dict", "csr"), products_scale=row_fraction
    )
    if choice == "csr":
        return _csr.csr_submatrix_product(S, T, row_set, mid_set, col_set)
    return _dict_submatrix_product(S, T, row_set, mid_set, col_set)


def _dict_submatrix_product(
    S: SemiringMatrix,
    T: SemiringMatrix,
    row_set: Sequence[int],
    mid_set: Sequence[int],
    col_set: Sequence[int],
) -> Dict[Tuple[int, int], Any]:
    """Reference dictionary evaluation of the subcube product."""
    semiring = S.semiring
    add = semiring.add
    mul = semiring.mul
    zero = semiring.zero
    cols = set(col_set)
    mids = set(mid_set)
    out: Dict[Tuple[int, int], Any] = {}
    for i in row_set:
        s_row = S.rows[i]
        if not s_row:
            continue
        if len(s_row) <= len(mids):
            mid_items = [(k, v) for k, v in s_row.items() if k in mids]
        else:
            mid_items = [(k, s_row[k]) for k in mids if k in s_row]
        for k, s_ik in mid_items:
            t_row = T.rows[k]
            if not t_row:
                continue
            if len(t_row) <= len(cols):
                col_items = [(j, v) for j, v in t_row.items() if j in cols]
            else:
                col_items = [(j, t_row[j]) for j in cols if j in t_row]
            for j, t_kj in col_items:
                value = mul(s_ik, t_kj)
                if value == zero:
                    continue
                key = (i, j)
                current = out.get(key)
                out[key] = value if current is None else add(current, value)
    return out


def _numpy_product(S: SemiringMatrix, T: SemiringMatrix,
                   variant: str = "dense") -> SemiringMatrix:
    """Densify, run one of the dense-array tiers, and decode back."""
    semiring = S.semiring
    # Densify through the cached CSR encoding (vectorised scatter) rather
    # than the per-entry Python loop of to_dense_array.
    A = _csr.to_csr(S).dense()
    B = _csr.to_csr(T).dense()
    if variant == "dense-blocked":
        C = _dense.minplus_blocked(A, B)
    elif variant == "jit":
        C = _dense.minplus_jit(A, B)
    else:
        C = _dense.minplus_matmul_arrays(A, B)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        # Any sum involving the infinity code exceeds it; clamp back.
        np.minimum(C, semiring.inf_code, out=C)
        C[C >= semiring.inf_code] = semiring.inf_code
    return from_dense_array(C, semiring)


def iterated_squaring(
    W: SemiringMatrix,
    power: int,
    keep: Optional[int] = None,
    kernel: Optional[str] = None,
) -> SemiringMatrix:
    """Compute ``W`` to the given power by repeated squaring (local only).

    Used by reference computations in tests; the distributed algorithms
    perform their own squaring through the round-charged multiplication
    routines.
    """
    if power < 1:
        raise ValueError("power must be at least 1")
    result = W if keep is None else W.filter_rows(keep)
    steps = max(0, math.ceil(math.log2(power)))
    for _ in range(steps):
        result = local_product(result, result, keep=keep, kernel=kernel)
    return result
