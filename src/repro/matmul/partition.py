"""Constructive partition lemmas (Lemmas 5-7) and cube partitioning (Lemma 9).

The sparse matrix-multiplication algorithms split the product cube ``V³``
into ``n`` subcubes whose submatrices are all (roughly) equally sparse, so
that one node can be made responsible for each subcube.  The lemmas below
are the deterministic balancing tools used for that split:

* Lemma 5 — partition indices into ``k`` *equal-size* sets with balanced
  weight,
* Lemma 6 — partition indices into ``k`` sets of *consecutive* indices with
  balanced weight,
* Lemma 7 — partition indices into ``k`` consecutive sets balanced with
  respect to *two* weight functions simultaneously (the fencepost merge),
* Lemma 9 — the resulting partition of ``V³`` into subcubes.

Every function is deterministic so that all (simulated) nodes compute the
same partition from the same broadcast information, exactly as the paper
requires.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Tuple

from repro.matmul.matrix import SemiringMatrix


def balanced_equal_size_partition(weights: Sequence[int], parts: int) -> List[List[int]]:
    """Lemma 5: partition ``range(len(weights))`` into ``parts`` sets of
    (almost) equal size with balanced total weight.

    The construction is the classic longest-processing-time greedy: indices
    are sorted by decreasing weight and each is assigned to the currently
    lightest part that still has capacity.  The resulting per-part weight is
    at most ``W/parts + max_weight``, the bound of Lemma 5.
    """
    n = len(weights)
    parts = max(1, min(parts, n))
    capacity = math.ceil(n / parts)
    order = sorted(range(n), key=lambda i: -weights[i])
    part_weights = [0] * parts
    part_sizes = [0] * parts
    assignment: List[List[int]] = [[] for _ in range(parts)]
    for index in order:
        best = None
        for p in range(parts):
            if part_sizes[p] >= capacity:
                continue
            if best is None or part_weights[p] < part_weights[best]:
                best = p
        if best is None:  # pragma: no cover - defensive; capacity always suffices
            best = min(range(parts), key=lambda p: part_sizes[p])
        assignment[best].append(index)
        part_weights[best] += weights[index]
        part_sizes[best] += 1
    for part in assignment:
        part.sort()
    return assignment


def consecutive_partition(weights: Sequence[int], parts: int) -> List[List[int]]:
    """Lemma 6: partition into at most ``parts`` sets of consecutive indices,
    each of weight at most ``W/parts + max_weight``."""
    n = len(weights)
    parts = max(1, parts)
    total = sum(weights)
    threshold = total / parts
    result: List[List[int]] = []
    current: List[int] = []
    current_weight = 0
    for index in range(n):
        current.append(index)
        current_weight += weights[index]
        if current_weight >= threshold and len(result) < parts - 1:
            result.append(current)
            current = []
            current_weight = 0
    if current or not result:
        result.append(current)
    while len(result) < parts:
        result.append([])
    return result


def consecutive_partition_two_weights(
    weights_a: Sequence[int], weights_b: Sequence[int], parts: int
) -> List[List[int]]:
    """Lemma 7: consecutive partition balanced w.r.t. two weight functions.

    Computes the Lemma 6 partitions for each weight function separately and
    merges their fenceposts, taking every other fencepost; each resulting
    part overlaps at most two parts of either partition, so both weight
    bounds hold up to a factor 2 — exactly the argument in the paper.
    """
    n = len(weights_a)
    if len(weights_b) != n:
        raise ValueError("weight sequences must have equal length")
    parts = max(1, parts)
    partition_a = consecutive_partition(weights_a, parts)
    partition_b = consecutive_partition(weights_b, parts)

    fenceposts = []
    for part in partition_a:
        if part:
            fenceposts.append(part[-1])
    for part in partition_b:
        if part:
            fenceposts.append(part[-1])
    fenceposts = sorted(set(fenceposts))
    # Take every other fencepost (the paper's construction), always keeping
    # the last index so the partition covers the whole range.
    chosen = fenceposts[1::2]
    if not chosen or chosen[-1] != n - 1:
        chosen.append(n - 1)

    result: List[List[int]] = []
    start = 0
    for post in chosen:
        result.append(list(range(start, post + 1)))
        start = post + 1
    while len(result) < parts:
        result.append([])
    return result[:max(parts, len(result))]


@dataclasses.dataclass
class CubePartition:
    """The Lemma 9 partition of ``V³`` into subcubes.

    Attributes
    ----------
    row_sets:
        ``C^S_i`` for ``i in range(b)`` — row blocks of ``S``.
    col_sets:
        ``C^T_j`` for ``j in range(a)`` — column blocks of ``T``.
    mid_sets:
        ``mid_sets[(i, j)][k]`` = ``C^{ij}_k`` for ``k in range(c)`` — the
        middle-dimension blocks, one consecutive partition per ``(i, j)``.
    a, b, c:
        The split parameters.
    """

    row_sets: List[List[int]]
    col_sets: List[List[int]]
    mid_sets: Dict[Tuple[int, int], List[List[int]]]
    a: int
    b: int
    c: int

    def subcubes(self) -> List[Tuple[int, int, int, List[int], List[int], List[int]]]:
        """Enumerate subcubes as ``(i, j, k, rows, mids, cols)``."""
        out = []
        for i, rows in enumerate(self.row_sets):
            for j, cols in enumerate(self.col_sets):
                for k, mids in enumerate(self.mid_sets[(i, j)]):
                    out.append((i, j, k, rows, mids, cols))
        return out

    def num_subcubes(self) -> int:
        return self.a * self.b * self.c


def compute_split_parameters(
    n: int, rho_s: int, rho_t: int, rho_p: int
) -> Tuple[int, int, int]:
    """The a, b, c parameters of Theorem 8 (clamped to ``[1, n]``).

    ``a = (ρ_T ρ_P n)^{1/3} / ρ_S^{2/3}``,
    ``b = (ρ_S ρ_P n)^{1/3} / ρ_T^{2/3}``,
    ``c = (ρ_S ρ_T n)^{1/3} / ρ_P^{2/3}``; their product is ``n`` before
    rounding.
    """
    rho_s = max(1, rho_s)
    rho_t = max(1, rho_t)
    rho_p = max(1, rho_p)

    def clamp(value: float) -> int:
        return int(min(n, max(1, math.ceil(value))))

    a = clamp((rho_t * rho_p * n) ** (1 / 3) / rho_s ** (2 / 3))
    b = clamp((rho_s * rho_p * n) ** (1 / 3) / rho_t ** (2 / 3))
    c = clamp((rho_s * rho_t * n) ** (1 / 3) / rho_p ** (2 / 3))
    return a, b, c


def cube_partition(
    S: SemiringMatrix,
    T: SemiringMatrix,
    a: int,
    b: int,
    c: int,
) -> CubePartition:
    """Lemma 9: partition ``V³`` into ``a·b·c`` balanced subcubes.

    The row blocks balance the number of non-zero entries of ``S`` per block,
    the column blocks balance the non-zero entries of ``T`` per block, and
    for every (row block, column block) pair the middle dimension is split
    into consecutive blocks balancing the remaining ``S``-column /
    ``T``-row weights simultaneously (Lemma 7).
    """
    n = S.n

    s_row_weights = [S.row_nnz(v) for v in range(n)]
    t_col_weights = T.col_nnz()

    row_sets = balanced_equal_size_partition(s_row_weights, b)
    col_sets = balanced_equal_size_partition(t_col_weights, a)

    # Column weights of S restricted to each row block, and row weights of T
    # restricted to each column block.
    s_col_by_block: List[List[int]] = []
    for rows in row_sets:
        counts = [0] * n
        for r in rows:
            for col in S.rows[r]:
                counts[col] += 1
        s_col_by_block.append(counts)

    t_row_by_block: List[List[int]] = []
    for cols in col_sets:
        col_set = set(cols)
        counts = [0] * n
        for v in range(n):
            row = T.rows[v]
            if len(row) <= len(col_set):
                counts[v] = sum(1 for j in row if j in col_set)
            else:
                counts[v] = sum(1 for j in col_set if j in row)
        t_row_by_block.append(counts)

    mid_sets: Dict[Tuple[int, int], List[List[int]]] = {}
    for i in range(len(row_sets)):
        for j in range(len(col_sets)):
            mids = consecutive_partition_two_weights(
                s_col_by_block[i], t_row_by_block[j], c
            )
            mid_sets[(i, j)] = mids

    return CubePartition(
        row_sets=row_sets,
        col_sets=col_sets,
        mid_sets=mid_sets,
        a=len(col_sets),
        b=len(row_sets),
        c=c,
    )
