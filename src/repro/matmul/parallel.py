"""Process-parallel row-slab execution for the dense min-plus kernels.

The paper's Congested Clique algorithms are row-parallel by construction:
each of the ``n`` machines owns one row slab of the semiring product and
never writes outside it.  This module exploits that decomposition on real
cores for the build-side workloads (APSP closure, MSSP tables, single
products):

* Operands are shared **read-only** between worker processes as raw
  memory-mapped files in a temporary directory — a spawn-context pool
  (safe under threads, identical semantics on every platform) receives
  picklable :class:`SharedArray` handles, never array payloads.
* Each task computes one contiguous **row slab** of the output with the
  cache-tiled kernel (:func:`repro.matmul.dense.minplus_blocked`) and
  writes it into its disjoint slice of a shared output map, so stitching
  is deterministic regardless of completion order.
* Per-row results depend only on the operands — never on the slab
  boundaries or the worker count — so ``jobs=1`` (which runs every task
  inline, no pool, no pickling) is **bit-identical** to ``jobs=K`` for any
  ``K``.  The oracle build path relies on this for its jobs-parity
  guarantee (same per-shard SHA-256 at any job count).

The iterated-squaring closure (:func:`minplus_closure`) synchronises once
per squaring step: every slab of ``D²`` is computed from the same shared
``D``, the ping/pong buffers swap, and the loop stops at the first step
where no slab changed — a global condition, hence the same step count (and
the same bits) at every job count.  The Bellman-Ford MSSP table
(:func:`mssp_table`) needs no barriers at all: each slab of sources
iterates against the fixed adjacency matrix until its own fixpoint.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import shutil
import tempfile
import uuid
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.matmul.dense import minplus_blocked

#: Spawn context: fork is unsafe in processes that ever started threads
#: (the serving stack does), and spawn keeps worker state explicit.
SPAWN_CONTEXT = multiprocessing.get_context("spawn")


def default_jobs() -> int:
    """A sensible default worker count: the usable CPUs of this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def slab_ranges(n: int, slabs: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``slabs`` contiguous near-equal row ranges."""
    if not 1 <= slabs <= n:
        raise ValueError(f"slabs must be in [1, {n}], got {slabs}")
    per = -(-n // slabs)  # ceil division
    ranges = []
    start = 0
    while start < n:
        stop = min(n, start + per)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclasses.dataclass(frozen=True)
class SharedArray:
    """A picklable handle to a raw array file shared between processes.

    Only the path and the layout cross the process boundary; the payload
    stays in the page cache and is mapped on demand by :meth:`open`.
    """

    path: str
    dtype: str
    shape: Tuple[int, ...]

    def open(self, mode: str = "r") -> np.memmap:
        """Map the file; ``"r"`` for operands, ``"r+"`` for outputs."""
        return np.memmap(self.path, dtype=np.dtype(self.dtype), mode=mode,
                         shape=self.shape)


class SlabExecutor:
    """Run row-slab tasks over memmap-shared arrays, serially or on a pool.

    Use as a context manager::

        with SlabExecutor(jobs=4) as ex:
            W = ex.share("adjacency", adjacency)
            closure, steps = minplus_closure(ex, W)
            dist = np.asarray(closure.open())

    ``jobs=1`` never creates a pool: every task runs inline in submission
    order, which doubles as the bit-exact serial baseline.  An existing
    spawn-context pool can be injected via ``pool=`` (the executor then
    does not close it) — the test suite shares one pool across hypothesis
    examples this way.  The temporary directory holding the shared maps is
    removed on exit, so results needed afterwards must be copied out with
    ``np.asarray``.
    """

    def __init__(self, jobs: int = 1, pool=None, tmp_dir: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._injected_pool = pool
        self._pool = None
        self._tmp_root = tmp_dir
        self._tmp: Optional[str] = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "SlabExecutor":
        self._tmp = tempfile.mkdtemp(prefix="repro-slab-", dir=self._tmp_root)
        if self.jobs > 1:
            pool = self._injected_pool
            self._pool = pool if pool is not None else SPAWN_CONTEXT.Pool(self.jobs)
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None and self._injected_pool is None:
            self._pool.terminate()
            self._pool.join()
        self._pool = None
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None

    def _path(self, name: str) -> str:
        if self._tmp is None:
            raise RuntimeError("SlabExecutor must be entered before use")
        return os.path.join(self._tmp, f"{name}-{uuid.uuid4().hex[:8]}.bin")

    # -- shared arrays --------------------------------------------------
    def share(self, name: str, array: np.ndarray) -> SharedArray:
        """Copy ``array`` into a shared read-only map; returns its handle."""
        array = np.ascontiguousarray(array)
        handle = SharedArray(self._path(name), str(array.dtype), array.shape)
        out = np.memmap(handle.path, dtype=array.dtype, mode="w+",
                        shape=array.shape)
        out[...] = array
        out.flush()
        del out
        return handle

    def empty(self, name: str, dtype, shape: Tuple[int, ...]) -> SharedArray:
        """Allocate an uninitialised shared output map."""
        handle = SharedArray(self._path(name), str(np.dtype(dtype)), tuple(shape))
        np.memmap(handle.path, dtype=np.dtype(dtype), mode="w+",
                  shape=tuple(shape)).flush()
        return handle

    # -- task execution -------------------------------------------------
    def map(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to every task; pooled when ``jobs > 1``.

        ``fn`` must be a module-level function (spawn workers pickle it by
        reference) and tasks must be picklable.  Results come back in task
        order either way.
        """
        tasks = list(tasks)
        if self._pool is None or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return self._pool.map(fn, tasks)


# ----------------------------------------------------------------------
# worker functions (module-level: spawn workers import them by name)
# ----------------------------------------------------------------------
def _product_slab(task) -> bool:
    """One row slab of ``out = A · B``; returns whether it differs from A's."""
    A_h, B_h, out_h, start, stop = task
    A = A_h.open()
    B = B_h.open()
    out = out_h.open("r+")
    rows = np.asarray(A[start:stop])
    block = minplus_blocked(rows, B)
    changed = not np.array_equal(block, rows)
    out[start:stop] = block
    out.flush()
    return changed


def _mssp_slab(task) -> int:
    """Bellman-Ford a slab of source rows to fixpoint; returns iterations.

    ``table[s] = min-plus closure row of source s`` — each row depends only
    on the fixed adjacency ``W``, so slabs converge independently (no
    cross-slab barrier) and the result is independent of the slab split.
    """
    W_h, out_h, sources, start, stop = task
    W = W_h.open()
    out = out_h.open("r+")
    table = np.asarray(W[sources[start:stop]])
    iterations = 0
    # A shortest path has at most n-1 edges; each relaxation extends every
    # row's horizon by one hop, so the loop always terminates.
    for _ in range(max(1, W.shape[0] - 1)):
        relaxed = minplus_blocked(table, W)
        iterations += 1
        if np.array_equal(relaxed, table):
            break
        table = relaxed
    out[start:stop] = table
    out.flush()
    return iterations


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def parallel_minplus_product(
    A: np.ndarray, B: np.ndarray, jobs: int = 1, slabs: Optional[int] = None,
    pool=None,
) -> np.ndarray:
    """Row-slab parallel dense min-plus product of two arrays.

    Bit-identical to ``minplus_blocked(A, B)`` for every ``jobs``/``slabs``
    split (each output row is a function of the operands alone).
    """
    with SlabExecutor(jobs=jobs, pool=pool) as ex:
        A_h = ex.share("A", A)
        B_h = ex.share("B", B)
        out_h = ex.empty("out", A.dtype, (A.shape[0], B.shape[1]))
        ranges = slab_ranges(A.shape[0], min(slabs or max(jobs, 1), A.shape[0]))
        ex.map(_product_slab,
               [(A_h, B_h, out_h, start, stop) for start, stop in ranges])
        return np.asarray(out_h.open())


def minplus_closure(
    executor: SlabExecutor,
    W: SharedArray,
    slabs: Optional[int] = None,
) -> Tuple[SharedArray, int]:
    """All-pairs min-plus closure of ``W`` by parallel iterated squaring.

    ``W`` must carry a zero diagonal (``d(v, v) = 0``), which makes each
    squaring monotone and self-including: after ``t`` steps every shortest
    path of at most ``2^t`` edges is settled, so the loop converges within
    ``ceil(log2(n-1))`` steps and stops one step after the last change.
    Every step is a barrier — all slabs of ``D²`` read the same shared
    ``D`` — so the step count, and therefore every bit of the result, is
    identical at every job count.

    Returns ``(closure_handle, squaring_steps)``; the handle lives in the
    executor's temporary directory and dies with it.
    """
    n = W.shape[0]
    slabs = min(slabs or max(executor.jobs, 1), n)
    ranges = slab_ranges(n, slabs)
    current, scratch = W, executor.empty("closure", W.dtype, W.shape)
    steps = 0
    limit = max(1, math.ceil(math.log2(max(2, n - 1)))) + 1
    for _ in range(limit):
        changed = executor.map(
            _product_slab,
            [(current, current, scratch, start, stop) for start, stop in ranges],
        )
        steps += 1
        current, scratch = scratch, current
        if not any(changed):
            break
    return current, steps


def mssp_table(
    executor: SlabExecutor,
    W: SharedArray,
    sources: Sequence[int],
    slabs: Optional[int] = None,
) -> SharedArray:
    """Exact multi-source shortest-path table ``(len(sources), n)``.

    Row ``i`` is the distance row of ``sources[i]`` — computed by
    barrier-free per-slab Bellman-Ford against the shared adjacency, the
    row-slab decomposition of the paper's MSSP workload.
    """
    sources = np.asarray(sources, dtype=np.int64)
    out = executor.empty("mssp", W.dtype, (len(sources), W.shape[1]))
    if len(sources) == 0:
        return out
    slabs = min(slabs or max(executor.jobs, 1), len(sources))
    executor.map(
        _mssp_slab,
        [(W, out, sources, start, stop)
         for start, stop in slab_ranges(len(sources), slabs)],
    )
    return out


__all__ = [
    "SharedArray",
    "SlabExecutor",
    "default_jobs",
    "minplus_closure",
    "mssp_table",
    "parallel_minplus_product",
    "slab_ranges",
]
