"""Baseline: dense 3D semiring matrix multiplication (CKKLPS 2015).

The classic Congested Clique "3D" algorithm multiplies two dense ``n x n``
matrices over a semiring in ``O(n^{1/3})`` rounds: the product cube is split
into ``n`` subcubes of side ``n^{2/3}``, each node learns the two
``n^{2/3} x n^{2/3}`` input submatrices of its subcube (``n^{4/3}`` entries,
hence ``n^{1/3}`` rounds of routing), computes the partial product locally,
and the partial results are summed with another ``n^{1/3}`` rounds of
routing.

This is the baseline the paper's sparse algorithms are measured against, and
the building block of the exact-APSP-by-repeated-squaring baseline.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cclique.accounting import Clique
from repro.matmul.kernels import local_product
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.results import MatMulResult


def dense_mm(
    S: SemiringMatrix,
    T: SemiringMatrix,
    clique: Optional[Clique] = None,
    label: str = "dense-3d-mm",
) -> MatMulResult:
    """Multiply ``S · T`` with the dense 3D algorithm's round cost."""
    S._check_compatible(T)
    clique = clique or Clique(S.n)
    n = S.n
    words = S.semiring.words_per_element()

    start_rounds = clique.rounds
    with clique.phase(label):
        # Subcube side length n^{2/3}: each node receives two submatrices of
        # n^{4/3} entries each and later ships the same volume of partial
        # sums, for O(n^{1/3}) rounds per step.
        side = max(1, math.ceil(n ** (2 / 3)))
        submatrix_entries = side * side
        clique.charge_broadcast(label="setup")
        clique.charge_routing(
            2 * submatrix_entries,
            2 * submatrix_entries,
            words,
            label="input-delivery",
        )
        product = local_product(S, T)
        clique.charge_routing(
            submatrix_entries,
            submatrix_entries,
            words,
            label="summation",
        )

    params = {
        "side": side,
        "predicted_rounds": n ** (1 / 3),
    }
    return MatMulResult(product, clique.rounds - start_rounds, clique, params)
