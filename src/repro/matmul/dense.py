"""Dense array kernels for the min-plus family, plus the 3D dense baseline.

Two layers live here:

* **Array kernels** — numpy (and optionally numba) implementations of the
  dense min-plus product over the encodings the CSR layer already defines
  (``float64`` with ``inf`` for plain min-plus, order-preserving ``int64``
  codes for the augmented semiring):

  - :func:`minplus_matmul_arrays` — the original row-block broadcast
    kernel (the ``"dense"`` dispatch tier): one ``(block, n, n)``
    temporary per row block, minimum over the middle axis.
  - :func:`minplus_blocked` — the cache-tiled kernel (the
    ``"dense-blocked"`` tier): the product cube is walked in
    ``(TILE_I, TILE_K, TILE_J)`` tiles whose temporaries fit in cache, with
    a running elementwise minimum across the K tiles.  Same values as the
    row-block kernel (min is exact, so reduction order cannot change the
    result), typically 2-3x faster at n >= 512 because the temporaries stop
    thrashing memory bandwidth, and it accepts rectangular operands — the
    row-slab shape the parallel build executor multiplies.
  - :func:`minplus_jit` — a numba-compiled triple loop (the ``"jit"``
    tier).  numba is an optional dependency (the ``perf`` extra): import
    is guarded, :data:`HAVE_NUMBA` reports availability, and the dispatch
    layer simply never offers the tier when numba is absent.

  All three produce bit-identical arrays on their common domain
  (property-tested in ``tests/test_blocked_kernels.py``); the dict kernel
  of :mod:`repro.matmul.kernels` remains the semantic reference.

* **The dense 3D baseline** — :func:`dense_mm`, the classic Congested
  Clique ``O(n^{1/3})``-round dense semiring multiplication (CKKLPS 2015)
  the paper's sparse algorithms are measured against.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.results import MatMulResult
from repro.semiring.augmented import AugmentedMinPlusSemiring
from repro.semiring.base import Semiring

try:  # optional perf extra — never required
    import numba as _numba
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    _numba = None

#: Whether the numba-backed ``"jit"`` kernel tier is available.
HAVE_NUMBA = _numba is not None

#: Row-block size for the numpy broadcast kernel (memory / speed trade-off).
_BLOCK_ROWS = 32

#: Cache-sized tile shape for :func:`minplus_blocked`.  The per-tile
#: temporary is ``TILE_I * TILE_K * TILE_J`` elements (2 MiB of float64 at
#: the defaults) — small enough to stay in L2/L3 while the running minimum
#: streams through the output once per K tile.
TILE_I = 16
TILE_K = 128
TILE_J = 128


def _init_value(dtype: np.dtype):
    """The "no path yet" accumulator value for a kernel output array.

    ``inf`` for floats; for the int64 augmented encoding the int64 maximum
    (strictly above any finite code *and* above ``inf_code``, so decoding
    treats it as infinity and no real sum can lose to it).
    """
    return np.inf if np.dtype(dtype).kind == "f" else np.iinfo(np.int64).max


# ----------------------------------------------------------------------
# dense <-> sparse encoding
# ----------------------------------------------------------------------
def to_dense_array(M: SemiringMatrix) -> np.ndarray:
    """Encode a min-plus-family matrix as a dense numpy array.

    Plain min-plus matrices become ``float64`` arrays with ``inf`` for
    missing entries; augmented matrices become ``int64`` arrays of the
    order-preserving encoding with the infinity code for missing entries.
    """
    semiring = M.semiring
    if isinstance(semiring, AugmentedMinPlusSemiring):
        array = np.full((M.n, M.n), semiring.inf_code, dtype=np.int64)
        for i, j, value in M.entries():
            array[i, j] = semiring.encode(value)
        return array
    array = np.full((M.n, M.n), np.inf, dtype=np.float64)
    for i, j, value in M.entries():
        array[i, j] = value
    return array


def from_dense_array(
    array: np.ndarray, semiring: Semiring
) -> SemiringMatrix:
    """Decode a dense numpy array back into a :class:`SemiringMatrix`."""
    n = array.shape[0]
    result = SemiringMatrix(n, semiring)
    if isinstance(semiring, AugmentedMinPlusSemiring):
        inf_code = semiring.inf_code
        for i in range(n):
            row = array[i]
            nonzero = np.nonzero(row < inf_code)[0]
            result.rows[i] = {
                int(j): semiring.decode(int(row[j])) for j in nonzero
            }
        return result
    for i in range(n):
        row = array[i]
        nonzero = np.nonzero(np.isfinite(row))[0]
        result.rows[i] = {int(j): float(row[j]) for j in nonzero}
    return result


# ----------------------------------------------------------------------
# array kernels
# ----------------------------------------------------------------------
def minplus_matmul_arrays(A: np.ndarray, B: np.ndarray, block: int = _BLOCK_ROWS) -> np.ndarray:
    """Dense min-plus product of two numpy arrays via blocked broadcasting."""
    n = A.shape[0]
    if A.dtype == np.int64:
        # Augmented encoding: clip so inf + inf cannot be mistaken for finite.
        out = np.empty((n, n), dtype=np.int64)
    else:
        out = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block):
        stop = min(n, start + block)
        # shape: (rows, k, cols) -> min over k
        chunk = A[start:stop, :, None] + B[None, :, :]
        out[start:stop] = chunk.min(axis=1)
    return out


def minplus_blocked(
    A: np.ndarray,
    B: np.ndarray,
    tile_i: int = TILE_I,
    tile_k: int = TILE_K,
    tile_j: int = TILE_J,
) -> np.ndarray:
    """Cache-tiled dense min-plus product ``min_k A[i, k] + B[k, j]``.

    Accepts rectangular operands — ``A`` of shape ``(r, m)`` against ``B``
    of shape ``(m, c)`` — which is the shape the row-slab parallel executor
    (:mod:`repro.matmul.parallel`) multiplies.  The tile walk order (ties
    broken by the exact elementwise minimum) makes the result independent
    of the tile sizes, so callers may tune them freely without changing a
    single bit of output.
    """
    rows, mids = A.shape
    mids_b, cols = B.shape
    if mids != mids_b:
        raise ValueError(f"shape mismatch: {A.shape} x {B.shape}")
    out = np.full((rows, cols), _init_value(A.dtype), dtype=A.dtype)
    for i0 in range(0, rows, tile_i):
        i1 = min(rows, i0 + tile_i)
        for k0 in range(0, mids, tile_k):
            k1 = min(mids, k0 + tile_k)
            # One contiguous copy per (i, k) tile; reused across all j tiles.
            a = np.ascontiguousarray(A[i0:i1, k0:k1])[:, :, None]
            for j0 in range(0, cols, tile_j):
                j1 = min(cols, j0 + tile_j)
                tile = a + B[k0:k1, j0:j1][None, :, :]
                np.minimum(
                    out[i0:i1, j0:j1], tile.min(axis=1), out=out[i0:i1, j0:j1]
                )
    return out


# Lazily-compiled numba kernel, shared across dtypes (numba specialises per
# signature on first call).  Compilation happens once per process per dtype.
_JIT_KERNEL = None


def _jit_kernel():
    global _JIT_KERNEL
    if _JIT_KERNEL is None:
        if not HAVE_NUMBA:
            raise RuntimeError(
                "the 'jit' kernel requires numba; install the 'perf' extra "
                "(pip install repro-congested-clique[perf])"
            )

        @_numba.njit(cache=False)
        def _minplus_inner(A, B, out, skip_at):  # pragma: no cover - compiled
            rows, mids = A.shape
            cols = B.shape[1]
            for i in range(rows):
                for k in range(mids):
                    a = A[i, k]
                    if a >= skip_at:
                        continue
                    for j in range(cols):
                        v = a + B[k, j]
                        if v < out[i, j]:
                            out[i, j] = v

        _JIT_KERNEL = _minplus_inner
    return _JIT_KERNEL


def minplus_jit(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Numba-compiled dense min-plus product (requires the ``perf`` extra).

    Bit-identical to :func:`minplus_blocked`: rows of ``A`` at or above the
    encoding's infinity never contribute a *finite* sum, and every finite
    result is a plain ``a + b`` minimum, which the triple loop reproduces
    exactly.  Raises ``RuntimeError`` when numba is not installed — the
    dispatch layer checks :data:`HAVE_NUMBA` and never routes here without
    it.
    """
    rows, mids = A.shape
    mids_b, cols = B.shape
    if mids != mids_b:
        raise ValueError(f"shape mismatch: {A.shape} x {B.shape}")
    init = _init_value(A.dtype)
    out = np.full((rows, cols), init, dtype=A.dtype)
    A = np.ascontiguousarray(A)
    B = np.ascontiguousarray(B)
    _jit_kernel()(A, B, out, init)
    return out


# ----------------------------------------------------------------------
# the dense 3D Congested Clique baseline (CKKLPS 2015)
# ----------------------------------------------------------------------
def dense_mm(
    S: SemiringMatrix,
    T: SemiringMatrix,
    clique: Optional[Clique] = None,
    label: str = "dense-3d-mm",
) -> MatMulResult:
    """Multiply ``S · T`` with the dense 3D algorithm's round cost.

    The classic Congested Clique "3D" algorithm multiplies two dense
    ``n x n`` matrices over a semiring in ``O(n^{1/3})`` rounds: the
    product cube is split into ``n`` subcubes of side ``n^{2/3}``, each
    node learns the two input submatrices of its subcube (``n^{4/3}``
    entries, hence ``n^{1/3}`` rounds of routing), computes the partial
    product locally, and the partial results are summed with another
    ``n^{1/3}`` rounds of routing.
    """
    # Imported here: kernels.py imports this module for the array kernels,
    # so a module-level import would be circular.
    from repro.matmul.kernels import local_product

    S._check_compatible(T)
    clique = clique or Clique(S.n)
    n = S.n
    words = S.semiring.words_per_element()

    start_rounds = clique.rounds
    with clique.phase(label):
        # Subcube side length n^{2/3}: each node receives two submatrices of
        # n^{4/3} entries each and later ships the same volume of partial
        # sums, for O(n^{1/3}) rounds per step.
        side = max(1, math.ceil(n ** (2 / 3)))
        submatrix_entries = side * side
        clique.charge_broadcast(label="setup")
        clique.charge_routing(
            2 * submatrix_entries,
            2 * submatrix_entries,
            words,
            label="input-delivery",
        )
        product = local_product(S, T)
        clique.charge_routing(
            submatrix_entries,
            submatrix_entries,
            words,
            label="summation",
        )

    params = {
        "side": side,
        "predicted_rounds": n ** (1 / 3),
    }
    return MatMulResult(product, clique.rounds - start_rounds, clique, params)
