"""Matrix substrate and Congested Clique matrix-multiplication algorithms.

This package contains the paper's Section 2 in executable form:

* :mod:`repro.matmul.matrix` — sparse matrices over a semiring, densities
  ρ, row filtering.
* :mod:`repro.matmul.kernels` — the local product kernels (sparse-dict,
  CSR, dense) behind the :class:`~repro.matmul.kernels.KernelDispatch`
  cost model.
* :mod:`repro.matmul.csr` — the vectorised CSR kernel layer (numpy
  gathers + segmented min-reductions for the min-plus family and the
  Boolean semiring).
* :mod:`repro.matmul.partition` — the constructive partition lemmas
  (Lemmas 5-7) and the cube partitioning of Lemma 9.
* :mod:`repro.matmul.balancing` — the balancing tools (Lemmas 10, 12, 13).
* :mod:`repro.matmul.dense` — the dense 3D semiring algorithm of
  Censor-Hillel et al. (2015), used as a baseline.
* :mod:`repro.matmul.sparse_clt18` — the sparse algorithm of Censor-Hillel,
  Leitersdorf and Turner (2018), used as a baseline.
* :mod:`repro.matmul.output_sensitive` — **Theorem 8**, output-sensitive
  sparse matrix multiplication.
* :mod:`repro.matmul.filtered` — **Theorem 14**, sparse matrix
  multiplication with on-the-fly output sparsification.
"""

from repro.matmul.matrix import SemiringMatrix
from repro.matmul.results import MatMulResult
from repro.matmul.csr import CSRMatrix, from_csr, to_csr
from repro.matmul.kernels import KERNEL_NAMES, KernelDispatch, local_product
from repro.matmul.dense import dense_mm
from repro.matmul.sparse_clt18 import sparse_mm_clt18
from repro.matmul.output_sensitive import output_sensitive_mm
from repro.matmul.filtered import filtered_mm
from repro.matmul.witness import WitnessedProduct, witnessed_product, witnessed_squaring

__all__ = [
    "SemiringMatrix",
    "MatMulResult",
    "CSRMatrix",
    "to_csr",
    "from_csr",
    "KERNEL_NAMES",
    "KernelDispatch",
    "local_product",
    "dense_mm",
    "sparse_mm_clt18",
    "output_sensitive_mm",
    "filtered_mm",
    "WitnessedProduct",
    "witnessed_product",
    "witnessed_squaring",
]
