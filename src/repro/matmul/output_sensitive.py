"""Theorem 8: output-sensitive sparse matrix multiplication.

Computes ``P = S · T`` over a semiring in
``O((ρ_S ρ_T ρ̂_{ST})^{1/3} / n^{2/3} + 1)`` rounds, where ρ̂_{ST} is the
density of the cancellation-free product pattern.  The algorithm follows the
four steps of Section 2.1:

1. cube partitioning (Lemma 9),
2. per-subcube intermediate products (Lemma 11),
3. balancing of the intermediate products (Lemma 12),
4. balanced summation into the output rows (Lemma 13).

When ρ̂_{ST} is not known in advance the doubling variant described after
Theorem 8 is used: the algorithm restarts with a doubled estimate whenever
the produced output exceeds the current one, at a multiplicative
``O(log n)`` cost.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.cclique.accounting import Clique
from repro.matmul.balancing import (
    assign_subcubes_to_nodes,
    charge_cube_partition,
    charge_duplication,
    charge_input_delivery,
    charge_summation,
    subcube_loads,
)
from repro.matmul.kernels import submatrix_product
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.partition import compute_split_parameters, cube_partition
from repro.matmul.results import MatMulResult


def output_sensitive_mm(
    S: SemiringMatrix,
    T: SemiringMatrix,
    rho_hat: Optional[int] = None,
    clique: Optional[Clique] = None,
    label: str = "theorem8-mm",
    execution: str = "faithful",
    kernel: Optional[str] = None,
) -> MatMulResult:
    """Multiply ``S · T`` with output-sensitive round cost (Theorem 8).

    Parameters
    ----------
    S, T:
        Input matrices over the same semiring.
    rho_hat:
        The output density ρ̂_{ST} if known beforehand (the paper notes all
        its applications know it).  If ``None`` the doubling variant is used.
    clique:
        Accounting context; a fresh one is created if omitted.
    label:
        Phase label under which rounds are charged.
    execution:
        ``"faithful"`` runs the full Lemma 9-13 schedule (cube partition,
        per-subcube products, balancing) and charges the loads it actually
        produces; ``"fast"`` computes the same product with the fast local
        kernels and charges the same formulas from the matrices' measured
        densities.  The two modes charge rounds within a small constant of
        each other (asserted in tests); the distance tools use ``"fast"`` so
        that the polylogarithmic algorithms, which perform hundreds of
        products, stay tractable in wall-clock time.
    kernel:
        Pin the local-product kernel (``"dict"``/``"csr"``/``"dense"``);
        ``None`` lets the cost model choose.  Never affects the result.
    """
    S._check_compatible(T)
    clique = clique or Clique(S.n)
    if execution not in ("faithful", "fast"):
        raise ValueError(f"unknown execution mode: {execution!r}")
    run = _run_with_estimate if execution == "faithful" else _run_fast_with_estimate

    start_rounds = clique.rounds
    if rho_hat is not None:
        with clique.phase(label):
            product, params = run(S, T, max(1, rho_hat), clique, kernel)
        return MatMulResult(product, clique.rounds - start_rounds, clique, params)

    # Doubling variant: restart with doubled estimate until the real output
    # density fits.  Each failed attempt still pays its rounds.
    estimate = 2
    product = None
    params: Dict[str, float] = {}
    with clique.phase(label):
        while True:
            product, params = run(S, T, estimate, clique, kernel)
            actual = product.density()
            params["doubling_estimate"] = estimate
            if actual <= estimate or estimate >= S.n:
                break
            estimate = min(S.n, estimate * 2)
    return MatMulResult(product, clique.rounds - start_rounds, clique, params)


def _run_with_estimate(
    S: SemiringMatrix,
    T: SemiringMatrix,
    rho_hat: int,
    clique: Clique,
    kernel: Optional[str] = None,
) -> Tuple[SemiringMatrix, Dict[str, float]]:
    """One pass of the Theorem 8 algorithm with a fixed ρ̂ estimate."""
    n = S.n
    semiring = S.semiring
    words = semiring.words_per_element()

    rho_s = S.density()
    rho_t = T.density()
    a, b, c = compute_split_parameters(n, rho_s, rho_t, rho_hat)

    # Step 1: cube partitioning (Lemma 9) -- O(1) rounds.
    partition = cube_partition(S, T, a, b, c)
    charge_cube_partition(clique, partition.a, partition.b)

    # Step 2: intermediate products (Lemma 11).
    subcubes = partition.subcubes()
    s_loads, t_loads = subcube_loads(S, T, partition)
    node_assignment = assign_subcubes_to_nodes(len(subcubes), n)
    charge_input_delivery(clique, s_loads, t_loads, node_assignment, words)

    # Local computation of every subcube product.  In the real execution each
    # node computes only its assigned subcubes; the union over nodes is what
    # we compute here, and per-node sizes feed the balancing charges.
    intermediate: Dict[int, Dict[Tuple[int, int], object]] = {}
    product_sizes = []
    for node, assigned in enumerate(node_assignment):
        merged: Dict[Tuple[int, int], object] = {}
        for index in assigned:
            _, _, _, rows, mids, cols = subcubes[index]
            partial = submatrix_product(S, T, rows, mids, cols, kernel=kernel)
            for key, value in partial.items():
                current = merged.get(key)
                merged[key] = value if current is None else semiring.add(current, value)
        intermediate[node] = merged
        product_sizes.append(len(merged))

    # Step 3: balancing the intermediate products (Lemma 12).
    target_per_node = max(1, rho_hat * c)
    charge_duplication(clique, product_sizes, target_per_node, words)

    # Step 4: balanced summation (Lemma 13).
    total_intermediate = sum(product_sizes)
    charge_summation(clique, total_intermediate, words)

    # Assemble the final product (the row-owner of each output row receives
    # the summed entries of that row).
    product = SemiringMatrix(n, semiring)
    for merged in intermediate.values():
        for (i, j), value in merged.items():
            product.add_entry(i, j, value)

    params = {
        "rho_s": rho_s,
        "rho_t": rho_t,
        "rho_hat": rho_hat,
        "a": partition.a,
        "b": partition.b,
        "c": c,
        "subcubes": len(subcubes),
        "predicted_rounds": (rho_s * rho_t * rho_hat) ** (1 / 3) / n ** (2 / 3) + 1,
    }
    return product, params


def _run_fast_with_estimate(
    S: SemiringMatrix,
    T: SemiringMatrix,
    rho_hat: int,
    clique: Clique,
    kernel: Optional[str] = None,
) -> Tuple[SemiringMatrix, Dict[str, float]]:
    """Fast-execution pass: same charges (from measured densities and the
    Theorem 8 load formulas), product computed with the local kernels."""
    from repro.matmul.kernels import local_product

    n = S.n
    semiring = S.semiring
    words = semiring.words_per_element()

    rho_s = S.density()
    rho_t = T.density()
    a, b, c = compute_split_parameters(n, rho_s, rho_t, rho_hat)

    # Step 1: cube partitioning -- constant rounds.
    charge_cube_partition(clique, a, b)

    # Step 2: input delivery.  Every non-zero of S is needed by the a column
    # blocks, every non-zero of T by the b row blocks; Lemma 9 balances these
    # loads evenly over the n nodes.
    s_per_node = math.ceil(S.nnz() * a / n)
    t_per_node = math.ceil(T.nnz() * b / n)
    s_loads = [s_per_node] * n
    t_loads = [t_per_node] * n
    node_assignment = [[v] for v in range(n)]
    charge_input_delivery(clique, s_loads, t_loads, node_assignment, words)

    # Local product via the fast kernels.
    product = local_product(S, T, kernel=kernel)

    # Step 3: balancing of intermediate products.  Each output position is
    # split over the c middle blocks, so the total number of intermediate
    # values is at most nnz(P) * c, and Lemma 12 balances them to
    # O(rho_hat * c) per node.
    total_intermediate = min(product.nnz() * c, max(1, rho_hat) * n * c)
    per_node_products = [math.ceil(total_intermediate / n)] * n
    target_per_node = max(1, rho_hat * c)
    charge_duplication(clique, per_node_products, target_per_node, words)

    # Step 4: balanced summation.
    charge_summation(clique, total_intermediate, words)

    params = {
        "rho_s": rho_s,
        "rho_t": rho_t,
        "rho_hat": rho_hat,
        "a": a,
        "b": b,
        "c": c,
        "execution": "fast",
        "predicted_rounds": (rho_s * rho_t * rho_hat) ** (1 / 3) / n ** (2 / 3) + 1,
    }
    return product, params
