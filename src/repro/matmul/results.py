"""Result containers for the matrix-multiplication algorithms."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.cclique.accounting import Clique
from repro.matmul.matrix import SemiringMatrix


@dataclasses.dataclass
class MatMulResult:
    """Output of a Congested Clique matrix multiplication.

    Attributes
    ----------
    product:
        The computed product matrix (possibly ρ-filtered, for the filtered
        algorithm).
    rounds:
        Rounds charged by this multiplication alone.
    clique:
        The accounting context the charges were recorded in (shared with the
        caller when one was passed in).
    params:
        Algorithm parameters actually used (densities, a/b/c split, etc.),
        for reporting in the benchmark tables.
    """

    product: SemiringMatrix
    rounds: float
    clique: Clique
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatMulResult(nnz={self.product.nnz()}, rounds={self.rounds:.1f}, "
            f"params={self.params})"
        )
