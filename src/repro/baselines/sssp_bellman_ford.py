"""Baseline: plain distributed Bellman-Ford SSSP.

One relaxation per round (every node broadcasts its tentative distance), so
the round count equals the number of iterations to convergence, which is
bounded by the shortest-path diameter of the graph — up to Θ(n) on paths.
This is the naive baseline both Theorem 33 (Õ(n^{1/6}) exact SSSP) and the
Õ(n^{1/3}) matrix-multiplication SSSP of prior work improve on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.results import SSSPResult
from repro.graphs.graph import Graph


def sssp_bellman_ford(
    graph: Graph,
    source: int,
    clique: Optional[Clique] = None,
    label: str = "sssp-bellman-ford",
) -> SSSPResult:
    """Exact SSSP by plain Bellman-Ford (one round per relaxation)."""
    n = graph.n
    clique = clique or Clique(n)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    start_rounds = clique.rounds

    distances = np.full(n, np.inf)
    distances[source] = 0.0
    iterations = 0
    with clique.phase(label):
        while iterations < n:
            iterations += 1
            clique.charge_broadcast(label="relaxation-round")
            updated = distances.copy()
            changed = False
            for u in range(n):
                du = distances[u]
                if not np.isfinite(du):
                    continue
                for v, w in graph.neighbors(u).items():
                    nd = du + w
                    if nd < updated[v] - 1e-12:
                        updated[v] = nd
                        changed = True
            distances = updated
            if not changed:
                break

    return SSSPResult(
        source=source,
        distances=distances,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        details={"iterations": iterations},
    )
