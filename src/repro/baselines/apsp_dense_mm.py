"""Baseline: exact APSP by iterated squaring of the distance matrix.

The classic Congested Clique approach (Censor-Hillel, Kaski, Korhonen,
Lenzen, Paz, Suomela 2015): the distance matrix is the ``ceil(log2 n)``-th
min-plus square of the weight matrix, and each dense semiring square costs
``O(n^{1/3})`` rounds, for ``Õ(n^{1/3})`` rounds in total.  This is the
exact-APSP comparator for the paper's (2 + ε) and (3 + ε) approximations.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.results import APSPResult
from repro.distance.products import weight_matrix
from repro.graphs.graph import Graph
from repro.matmul.dense import dense_mm


def apsp_dense_mm(
    graph: Graph,
    clique: Optional[Clique] = None,
    label: str = "apsp-dense-mm",
) -> APSPResult:
    """Exact APSP via ``ceil(log2 n)`` dense min-plus squarings."""
    n = graph.n
    clique = clique or Clique(n)
    start_rounds = clique.rounds

    with clique.phase(label):
        current = weight_matrix(graph)
        squarings = max(1, math.ceil(math.log2(max(2, n))))
        for _ in range(squarings):
            result = dense_mm(current, current, clique=clique, label="squaring")
            current = result.product

    estimates = np.full((n, n), np.inf)
    for i in range(n):
        for j, value in current.rows[i].items():
            estimates[i, j] = value
    np.fill_diagonal(estimates, 0.0)

    return APSPResult(
        estimates=estimates,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        approximation_label="exact",
        details={
            "squarings": squarings,
            "predicted_rounds": n ** (1 / 3) * math.log2(max(2, n)),
        },
    )
