"""Prior-work baselines the paper compares against.

* :mod:`repro.baselines.apsp_dense_mm` — exact APSP by iterated squaring of
  the distance matrix with the dense 3D multiplication (Censor-Hillel et
  al. 2015): Õ(n^{1/3}) rounds.
* :mod:`repro.baselines.apsp_spanner` — (2k − 1)-approximate APSP by
  building a multiplicative spanner and broadcasting it to every node
  (Parter–Yogev-style): Õ(n^{1/k}) rounds.
* :mod:`repro.baselines.sssp_bellman_ford` — plain distributed Bellman-Ford
  SSSP: one round per relaxation, shortest-path-diameter many rounds.
"""

from repro.baselines.apsp_dense_mm import apsp_dense_mm
from repro.baselines.apsp_spanner import apsp_spanner, build_greedy_spanner
from repro.baselines.sssp_bellman_ford import sssp_bellman_ford

__all__ = [
    "apsp_dense_mm",
    "apsp_spanner",
    "build_greedy_spanner",
    "sssp_bellman_ford",
]
