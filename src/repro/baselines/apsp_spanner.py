"""Baseline: (2k − 1)-approximate APSP via spanners.

The paper's Section 1.1 notes that with the Congested Clique spanner
constructions one gets a (2k − 1)-approximation of APSP in Õ(n^{1/k})
rounds: build a (2k − 1)-spanner with O(n^{1+1/k}) edges and have every node
learn the whole spanner (broadcasting m' edges to everyone costs
``ceil(m' / n)`` rounds, since each node can relay n edges per round to all
others), then compute distances locally.

The greedy spanner construction itself now lives in
:mod:`repro.oracle.spanner` (it backs the first-class ``spanner-greedy``
oracle strategy); this baseline keeps the one-shot dense-output APSP view
of the same trade-off and re-exports :func:`build_greedy_spanner` for
backward compatibility.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.cclique.accounting import Clique
from repro.core.results import APSPResult
from repro.graphs.graph import Graph
from repro.graphs.reference import all_pairs_dijkstra
from repro.oracle.spanner import build_greedy_spanner

__all__ = ["apsp_spanner", "build_greedy_spanner"]


def apsp_spanner(
    graph: Graph,
    k: int = 2,
    clique: Optional[Clique] = None,
    label: str = "apsp-spanner",
) -> APSPResult:
    """(2k − 1)-approximate APSP by broadcasting a greedy spanner."""
    n = graph.n
    clique = clique or Clique(n)
    start_rounds = clique.rounds

    with clique.phase(label):
        spanner = build_greedy_spanner(graph, k)
        spanner_edges = spanner.num_edges()
        # The spanner construction itself: the paper cites Parter-Yogev with
        # Õ(1)-round constructions for k >= 2; we charge a polylog constant.
        clique.charge_rounds_formula(
            math.ceil(math.log2(max(2, n))), label="spanner-construction"
        )
        # Every node must learn all spanner edges: each node can forward n
        # edge descriptions per round (one per outgoing link), so m' edges
        # reach everyone in ceil(m'/n) rounds once they are spread evenly.
        clique.charge_routing(
            max(1, math.ceil(spanner_edges / n)) * n,
            max(1, math.ceil(spanner_edges / n)) * n,
            words_per_message=3,
            total_messages=spanner_edges * n,
            label="spanner-broadcast",
        )
        # Local computation of all-pairs distances on the spanner is free.
        estimates_list = all_pairs_dijkstra(spanner)

    estimates = np.array(estimates_list)
    np.fill_diagonal(estimates, 0.0)

    return APSPResult(
        estimates=estimates,
        rounds=clique.rounds - start_rounds,
        clique=clique,
        approximation_label=f"{2 * k - 1}",
        details={
            "k": k,
            "spanner_edges": spanner_edges,
            "predicted_rounds": n ** (1 / k),
        },
    )
