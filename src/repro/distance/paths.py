"""Path recovery and routing tables.

Distance *estimates* answer "how far", but a deployed system usually needs
"which way": an actual node sequence, or at least the next hop.  The paper
points out (Section 3.1) that its matrix-multiplication tools yield
witnesses for free; this module turns those witnesses — and the outputs of
the headline algorithms — into usable paths and routing tables:

* :func:`k_nearest_paths` — exact shortest paths from every node to each of
  its k nearest nodes, recovered from witnessed filtered squaring.
* :func:`sssp_tree` / :func:`extract_path` — the exact shortest-path tree of
  the Theorem 33 SSSP, with per-node predecessors.
* :func:`routing_table_from_estimates` — next-hop routing tables consistent
  with any APSP estimate matrix (each hop strictly decreases the estimated
  remaining distance, so forwarding always terminates).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.distance.products import augmented_weight_matrix
from repro.graphs.graph import Graph, INF
from repro.matmul.witness import expand_path, witnessed_squaring


# ----------------------------------------------------------------------
# k-nearest paths via witnessed squaring
# ----------------------------------------------------------------------
def k_nearest_paths(graph: Graph, k: int) -> Dict[int, Dict[int, List[int]]]:
    """Exact shortest paths from every node to its k nearest nodes.

    Returns ``paths[v][u]`` = node list from ``v`` to ``u`` for every ``u``
    in ``v``'s k-nearest set.  This is the local (per-node) computation a
    node would run after the Theorem 18 k-nearest algorithm, using the
    witnesses the multiplication already produced; its cost in rounds is the
    same as k-nearest itself, so no additional accounting is introduced.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, graph.n)
    W, _semiring = augmented_weight_matrix(graph)
    squarings = max(1, math.ceil(math.log2(k))) if k > 1 else 1
    power, witness_levels = witnessed_squaring(W, keep=k, squarings=squarings)

    paths: Dict[int, Dict[int, List[int]]] = {}
    for v in range(graph.n):
        paths[v] = {}
        for u in power.rows[v]:
            node_sequence = expand_path(v, u, witness_levels)
            paths[v][u] = _splice_consecutive_duplicates(node_sequence)
    return paths


def _splice_consecutive_duplicates(path: Sequence[int]) -> List[int]:
    out: List[int] = []
    for node in path:
        if not out or out[-1] != node:
            out.append(node)
    return out


def path_weight(graph: Graph, path: Sequence[int]) -> float:
    """Total weight of a node sequence (``INF`` if some edge is missing)."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        w = graph.weight(a, b)
        if w == INF:
            return INF
        total += w
    return total


# ----------------------------------------------------------------------
# SSSP trees
# ----------------------------------------------------------------------
def sssp_tree(graph: Graph, source: int, distances: Sequence[float]) -> List[int]:
    """Predecessor array of a shortest-path tree consistent with ``distances``.

    ``distances`` must be exact (e.g. the output of Theorem 33's SSSP); the
    predecessor of ``v`` is a neighbour ``u`` with
    ``distances[u] + w(u, v) == distances[v]``.  The source's predecessor is
    itself; unreachable nodes get predecessor ``-1``.
    """
    predecessors = [-1] * graph.n
    predecessors[source] = source
    for v in range(graph.n):
        if v == source or distances[v] == INF or math.isinf(distances[v]):
            continue
        best: Optional[int] = None
        for u, w in graph.neighbors(v).items():
            if abs(distances[u] + w - distances[v]) < 1e-9:
                if best is None or u < best:
                    best = u
        if best is None:
            raise ValueError(
                f"distances are not consistent with the graph at node {v}"
            )
        predecessors[v] = best
    return predecessors


def extract_path(predecessors: Sequence[int], source: int, target: int) -> List[int]:
    """Walk the predecessor array from ``target`` back to ``source``."""
    if predecessors[target] == -1:
        return []
    path = [target]
    current = target
    visited = {target}
    while current != source:
        current = predecessors[current]
        if current in visited or current == -1:
            raise ValueError("predecessor array contains a cycle or a gap")
        visited.add(current)
        path.append(current)
    path.reverse()
    return path


# ----------------------------------------------------------------------
# routing tables from APSP estimates
# ----------------------------------------------------------------------
def routing_table_from_estimates(
    graph: Graph, estimates: np.ndarray, verify_consistency: bool = True
) -> List[Dict[int, int]]:
    """Next-hop routing tables from a distance (estimate) matrix.

    For every (source ``v``, destination ``u``) pair with a finite estimate,
    the table stores a neighbour ``x`` of ``v`` minimising
    ``w(v, x) + estimate[x, u]``.

    Greedy forwarding over such tables is guaranteed to terminate when the
    estimate matrix is *locally consistent*: for every ``v != u`` with a
    finite estimate, ``estimate[v, u] >= min_x (w(v, x) + estimate[x, u])``.
    Exact distance matrices (Theorem 33 SSSP, the dense-MM APSP baseline,
    Dijkstra ground truth) always satisfy this with equality; approximate
    APSP estimates may not, in which case forwarding could revisit a node —
    :func:`forward_route` detects that and raises.  With
    ``verify_consistency=True`` (the default) this function checks the
    property up front and raises ``ValueError`` if it fails, so callers can
    fall back to an exact matrix.

    Returns ``tables[v][u] = next hop``.
    """
    n = graph.n
    if estimates.shape != (n, n):
        raise ValueError("estimate matrix shape does not match the graph")
    if verify_consistency:
        _check_local_consistency(graph, estimates)
    tables: List[Dict[int, int]] = [dict() for _ in range(n)]
    for v in range(n):
        neighbors = graph.neighbors(v)
        if not neighbors:
            continue
        for u in range(n):
            if u == v or not np.isfinite(estimates[v, u]):
                continue
            best_hop = None
            best_value = math.inf
            for x, w in neighbors.items():
                candidate = w + estimates[x, u]
                if candidate < best_value - 1e-12 or (
                    abs(candidate - best_value) <= 1e-12
                    and (best_hop is None or x < best_hop)
                ):
                    best_value = candidate
                    best_hop = x
            if best_hop is not None:
                tables[v][u] = best_hop
    return tables


def _check_local_consistency(graph: Graph, estimates: np.ndarray) -> None:
    """Raise ``ValueError`` if the estimate matrix is not locally consistent."""
    n = graph.n
    for v in range(n):
        neighbors = graph.neighbors(v)
        if not neighbors:
            continue
        for u in range(n):
            if u == v or not np.isfinite(estimates[v, u]):
                continue
            lookahead = min(
                (w + estimates[x, u] for x, w in neighbors.items()), default=math.inf
            )
            if estimates[v, u] < lookahead - 1e-9:
                raise ValueError(
                    "estimate matrix is not locally consistent at "
                    f"(v={v}, u={u}): estimate {estimates[v, u]} is below the "
                    f"best one-step lookahead {lookahead}; build routing "
                    "tables from an exact distance matrix instead"
                )


def forward_route(
    graph: Graph,
    tables: Sequence[Dict[int, int]],
    source: int,
    target: int,
    max_hops: Optional[int] = None,
) -> List[int]:
    """Follow the next-hop tables from ``source`` to ``target``.

    Returns the node sequence (ending at ``target``); raises if forwarding
    loops or dead-ends (which cannot happen for tables built from a locally
    consistent estimate matrix — see
    :func:`routing_table_from_estimates`).
    """
    if max_hops is None:
        max_hops = graph.n + 1
    path = [source]
    current = source
    for _ in range(max_hops):
        if current == target:
            return path
        next_hop = tables[current].get(target)
        if next_hop is None:
            raise ValueError(f"no route from {current} towards {target}")
        path.append(next_hop)
        current = next_hop
    raise ValueError(f"forwarding from {source} to {target} exceeded {max_hops} hops")
