"""Distance tools (Section 3 of the paper).

Built on the sparse matrix-multiplication algorithms of Section 2, these are
the reusable building blocks from which the headline shortest-path
algorithms are assembled:

* :mod:`repro.distance.products` — the augmented weight matrix and distance
  products over the augmented min-plus semiring (Section 3.1).
* :mod:`repro.distance.k_nearest` — Theorem 18: distances to the k nearest
  nodes.
* :mod:`repro.distance.source_detection` — Theorem 19: the (S, d, k)-source
  detection problem.
* :mod:`repro.distance.through_sets` — Theorem 20: distances through node
  sets.
* :mod:`repro.distance.hitting_set` — Lemma 4: deterministic hitting sets.
"""

from repro.distance.products import (
    augmented_weight_matrix,
    weight_matrix,
    distances_from_augmented,
)
from repro.distance.k_nearest import k_nearest, KNearestResult
from repro.distance.source_detection import (
    source_detection,
    SourceDetectionResult,
)
from repro.distance.through_sets import distance_through_sets, ThroughSetsResult
from repro.distance.hitting_set import greedy_hitting_set, random_hitting_set
from repro.distance.paths import (
    k_nearest_paths,
    sssp_tree,
    extract_path,
    routing_table_from_estimates,
    forward_route,
    path_weight,
)

__all__ = [
    "k_nearest_paths",
    "sssp_tree",
    "extract_path",
    "routing_table_from_estimates",
    "forward_route",
    "path_weight",
    "augmented_weight_matrix",
    "weight_matrix",
    "distances_from_augmented",
    "k_nearest",
    "KNearestResult",
    "source_detection",
    "SourceDetectionResult",
    "distance_through_sets",
    "ThroughSetsResult",
    "greedy_hitting_set",
    "random_hitting_set",
]
