"""Theorem 18: the k-nearest problem.

For every node ``v`` compute the ``k`` nodes closest to ``v`` (ties broken
first by hop count, then by node id) together with their distances, in
``O((k / n^{2/3} + log n) · log k)`` rounds.

The algorithm (Section 3.2) filters the augmented weight matrix to the ``k``
smallest entries per row and squares it ``ceil(log2 k)`` times with the
ρ-filtered multiplication of Theorem 14 (ρ = k).  Consistency of the
augmented semiring ordering (Lemma 17) guarantees that the filtered powers
agree with the true powers on every surviving entry, i.e. each node ends up
with the exact distances to its ``k`` nearest nodes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.cclique.accounting import Clique
from repro.distance.products import augmented_weight_matrix
from repro.graphs.graph import Graph
from repro.matmul.filtered import filtered_mm
from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import AugmentedMinPlusSemiring


@dataclasses.dataclass
class KNearestResult:
    """Output of the k-nearest computation.

    Attributes
    ----------
    neighbors:
        ``neighbors[v]`` maps each of the (up to) ``k`` nearest nodes ``u``
        to ``(distance, hops)``.  The node itself is included with distance
        0 (it is trivially its own nearest node).
    matrix:
        The filtered augmented matrix ``W^k`` (rows are the k-nearest sets).
    rounds:
        Rounds charged for the computation.
    clique:
        The accounting context used.
    """

    neighbors: List[Dict[int, Tuple[float, int]]]
    matrix: SemiringMatrix
    rounds: float
    clique: Clique

    def nearest_set(self, v: int) -> List[int]:
        """The k-nearest node ids of ``v`` sorted by (distance, hops, id)."""
        items = sorted(
            self.neighbors[v].items(), key=lambda kv: (kv[1][0], kv[1][1], kv[0])
        )
        return [node for node, _ in items]

    def distance(self, v: int, u: int) -> float:
        """Distance from ``v`` to ``u`` if ``u`` is among the k nearest."""
        entry = self.neighbors[v].get(u)
        return entry[0] if entry is not None else math.inf


def k_nearest(
    graph: Graph,
    k: int,
    clique: Optional[Clique] = None,
    execution: str = "fast",
    label: str = "k-nearest",
    kernel: Optional[str] = None,
) -> KNearestResult:
    """Solve the k-nearest problem on ``graph`` (Theorem 18).

    Parameters
    ----------
    graph:
        Input graph (directed or undirected, non-negative integer weights).
    k:
        How many nearest nodes to find per node (including the node itself).
    clique:
        Accounting context; created if omitted.
    execution:
        Passed through to the filtered multiplication ("fast" or
        "faithful").
    kernel:
        Pin the local-product kernel; ``None`` lets the cost model choose.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    clique = clique or Clique(graph.n)
    k = min(k, graph.n)

    W, semiring = augmented_weight_matrix(graph)
    start_rounds = clique.rounds

    with clique.phase(label):
        # Step 1: each node locally keeps the k smallest entries of its row
        # (purely local, no rounds).
        current = W.filter_rows(k)

        # Step 2: ceil(log2 k) filtered squarings; after i squarings the
        # matrix equals the k-filtered version of W^(2^i).
        squarings = max(1, math.ceil(math.log2(k))) if k > 1 else 1
        universe = _weight_universe_size(graph, semiring)
        for _ in range(squarings):
            result = filtered_mm(
                current,
                current,
                rho=k,
                weight_universe_size=universe,
                clique=clique,
                label="filtered-squaring",
                execution=execution,
                kernel=kernel,
            )
            current = result.product

    neighbors: List[Dict[int, Tuple[float, int]]] = []
    for v in range(graph.n):
        row = {}
        for u, entry in current.rows[v].items():
            row[u] = (entry[0], int(entry[1]))
        neighbors.append(row)

    return KNearestResult(
        neighbors=neighbors,
        matrix=current,
        rounds=clique.rounds - start_rounds,
        clique=clique,
    )


def _weight_universe_size(graph: Graph, semiring: AugmentedMinPlusSemiring) -> int:
    """Size of the value universe for the filtering binary search.

    Finite augmented values are pairs (path weight, hops) with path weight
    at most ``n · max_weight`` and hops at most ``2 n``, so the universe has
    at most ``(n · max_weight + 1) · (2 n + 2)`` elements — polynomial in
    ``n``, giving the paper's ``O(log n)`` search cost.
    """
    max_weight = max(1.0, graph.max_weight())
    return int((graph.n * max_weight + 1) * (2 * graph.n + 2))
