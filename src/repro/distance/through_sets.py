"""Theorem 20: the distance-through-sets problem.

Every node ``v`` holds a set ``W_v`` together with distance estimates
``δ(v, w)`` and ``δ(w, v)`` for each ``w ∈ W_v``; the task is to compute,
for every pair ``(v, u)``, the best estimate achievable through a common
intermediate node: ``min_{w ∈ W_v ∩ W_u} δ(v, w) + δ(w, u)``.

This reduces to a single distance product of two matrices of density
``ρ = Σ_v |W_v| / n``, so the round cost is ``O(ρ^{2/3} / n^{1/3} + 1)``
(Theorem 8 with a dense output estimate).  The weighted APSP algorithms use
it to combine the k-nearest balls of the two endpoints (Line 3 of the
Section 6.2 algorithm).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cclique.accounting import Clique
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.output_sensitive import output_sensitive_mm
from repro.semiring.minplus import MIN_PLUS


@dataclasses.dataclass
class ThroughSetsResult:
    """Output of the distance-through-sets computation.

    ``estimates[v]`` maps ``u`` to the best distance estimate through a
    common node of ``W_v`` and ``W_u`` (absent if the sets do not intersect
    or no finite estimate exists).
    """

    estimates: List[Dict[int, float]]
    rounds: float
    clique: Clique

    def estimate(self, v: int, u: int) -> float:
        return self.estimates[v].get(u, math.inf)


def distance_through_sets(
    n: int,
    node_sets: Sequence[Dict[int, Tuple[float, float]]],
    clique: Optional[Clique] = None,
    execution: str = "fast",
    label: str = "distance-through-sets",
    kernel: Optional[str] = None,
) -> ThroughSetsResult:
    """Solve the distance-through-sets problem (Theorem 20).

    Parameters
    ----------
    n:
        Number of nodes.
    node_sets:
        ``node_sets[v]`` maps each ``w ∈ W_v`` to the pair of estimates
        ``(δ(v, w), δ(w, v))``.  For undirected inputs the two coincide.
    clique:
        Accounting context; created if omitted.
    """
    if len(node_sets) != n:
        raise ValueError("node_sets must have one entry per node")
    clique = clique or Clique(n)

    # Build the two matrices of the product W1 ⋆ W2 (plain min-plus): W1
    # holds δ(v, w) in row v, W2 holds δ(w, u) in column u.
    W1 = SemiringMatrix(n, MIN_PLUS)
    W2 = SemiringMatrix(n, MIN_PLUS)
    for v, members in enumerate(node_sets):
        for w, (to_w, from_w) in members.items():
            if to_w != math.inf:
                current = W1.rows[v].get(w)
                if current is None or to_w < current:
                    W1.rows[v][w] = float(to_w)
            if from_w != math.inf:
                current = W2.rows[w].get(v)
                if current is None or from_w < current:
                    W2.rows[w][v] = float(from_w)

    start_rounds = clique.rounds
    with clique.phase(label):
        result = output_sensitive_mm(
            W1,
            W2,
            rho_hat=n,
            clique=clique,
            label="product",
            execution=execution,
            kernel=kernel,
        )

    estimates: List[Dict[int, float]] = []
    for v in range(n):
        estimates.append({u: value for u, value in result.product.rows[v].items()})

    return ThroughSetsResult(
        estimates=estimates,
        rounds=clique.rounds - start_rounds,
        clique=clique,
    )
