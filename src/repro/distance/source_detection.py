"""Theorem 19: the (S, d, k)-source detection problem.

Given a source set ``S``, every node must learn its ``k`` nearest sources
reachable within ``d`` hops, together with the corresponding ``d``-hop
bounded distances.  Two variants are provided, matching the two running
times of Theorem 19:

* the *k-nearest-sources* variant, which keeps only ``k`` sources per node
  throughout and runs ``d`` filtered multiplications
  (``O((m^{1/3} k^{2/3} / n + log n) · d)`` rounds), and
* the *all-sources* variant, which computes the full ``n x |S|`` d-hop
  distance table with the output-sensitive multiplication
  (``O((m^{1/3} |S|^{2/3} / n + 1) · d)`` rounds).

Both work on an arbitrary augmented weight matrix, so the hopset and MSSP
algorithms can run them on ``G ∪ H`` rather than on ``G`` itself.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cclique.accounting import Clique
from repro.distance.products import augmented_weight_matrix
from repro.graphs.graph import Graph
from repro.matmul.filtered import filtered_mm
from repro.matmul.matrix import SemiringMatrix
from repro.matmul.output_sensitive import output_sensitive_mm
from repro.semiring.augmented import AugmentedMinPlusSemiring


@dataclasses.dataclass
class SourceDetectionResult:
    """Output of source detection.

    Attributes
    ----------
    distances:
        ``distances[v]`` maps source ids to ``(distance, hops)`` using paths
        of at most ``d`` hops (only the ``k`` nearest sources are present in
        the k-limited variant).
    rounds:
        Rounds charged.
    clique:
        Accounting context used.
    """

    distances: List[Dict[int, Tuple[float, int]]]
    rounds: float
    clique: Clique

    def distance(self, v: int, source: int) -> float:
        entry = self.distances[v].get(source)
        return entry[0] if entry is not None else math.inf


def source_detection(
    graph_or_matrix: Graph | SemiringMatrix,
    sources: Sequence[int],
    d: int,
    k: Optional[int] = None,
    clique: Optional[Clique] = None,
    semiring: Optional[AugmentedMinPlusSemiring] = None,
    execution: str = "fast",
    early_stop: bool = False,
    label: str = "source-detection",
    kernel: Optional[str] = None,
) -> SourceDetectionResult:
    """Solve (S, d, k)-source detection (Theorem 19).

    Parameters
    ----------
    graph_or_matrix:
        Either a :class:`Graph` or an already-built augmented weight matrix
        (useful for hopset-augmented graphs).
    sources:
        The source set ``S``.
    d:
        Hop bound; ``d`` multiplications are performed.
    k:
        If given, keep only the ``k`` nearest sources per node (first
        variant); otherwise compute distances to all sources (second
        variant).
    semiring:
        Required when passing a matrix; ignored when passing a graph.
    early_stop:
        Stop the hop iterations as soon as the table stabilises (one extra
        broadcast per iteration to detect it); never changes the result,
        only reduces the measured rounds below the worst-case bound.
    kernel:
        Pin the local-product kernel; ``None`` lets the cost model choose.
    """
    if d <= 0:
        raise ValueError("hop bound d must be positive")
    if not sources:
        raise ValueError("source set must be non-empty")

    if isinstance(graph_or_matrix, Graph):
        W, semiring = augmented_weight_matrix(graph_or_matrix)
        n = graph_or_matrix.n
    else:
        if semiring is None:
            raise ValueError("semiring must be provided when passing a matrix")
        W = graph_or_matrix
        n = W.n

    clique = clique or Clique(n)
    source_list = sorted(set(sources))
    source_set = set(source_list)
    start_rounds = clique.rounds

    with clique.phase(label):
        # The initial matrix U1: the weight matrix restricted to columns in S
        # (including the trivial self-entries of the sources themselves).
        current = W.restrict_columns(source_list)
        if k is not None:
            current = current.filter_rows(k)

        universe = _universe_from_semiring(semiring)
        for _ in range(d):
            if k is not None:
                result = filtered_mm(
                    W,
                    current,
                    rho=min(k, n),
                    weight_universe_size=universe,
                    clique=clique,
                    label="hop-iteration",
                    execution=execution,
                    kernel=kernel,
                )
            else:
                result = output_sensitive_mm(
                    W,
                    current,
                    rho_hat=max(1, len(source_list)),
                    clique=clique,
                    label="hop-iteration",
                    execution=execution,
                    kernel=kernel,
                )
            # The product may momentarily contain non-source columns only if
            # W had entries outside S's columns in `current`; restricting is
            # a purely local cleanup.
            updated = result.product.restrict_columns(source_list)
            if early_stop:
                clique.charge_broadcast(label="stability-check")
                if updated.equals(current):
                    current = updated
                    break
            current = updated

    distances: List[Dict[int, Tuple[float, int]]] = []
    for v in range(n):
        row = {}
        for u, entry in current.rows[v].items():
            if u in source_set:
                row[u] = (entry[0], int(entry[1]))
        distances.append(row)

    return SourceDetectionResult(
        distances=distances,
        rounds=clique.rounds - start_rounds,
        clique=clique,
    )


def _universe_from_semiring(semiring: AugmentedMinPlusSemiring) -> int:
    """Value-universe size for the filtering binary search."""
    return max(2, int(semiring.weight_bound) * int(semiring.hop_base))
