"""Distance products and the augmented weight matrix (Section 3.1).

The augmented weight matrix ``W`` of a graph has ``W[u, u] = (0, 0)``,
``W[u, v] = (w(u, v), 1)`` for edges, and ``(∞, ∞)`` otherwise, over the
augmented min-plus semiring.  Its ``d``-th distance-product power gives, for
every pair, the weight of the shortest path using at most ``d`` hops
*together with* that path's hop count — the consistency property (Lemma 17)
that the k-nearest and source-detection tools rely on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph, INF
from repro.matmul.matrix import SemiringMatrix
from repro.semiring.augmented import (
    AugmentedEntry,
    AugmentedMinPlusSemiring,
    augmented_semiring_for,
)
from repro.semiring.minplus import MIN_PLUS


def weight_matrix(graph: Graph) -> SemiringMatrix:
    """The plain min-plus weight matrix of ``graph`` (0 diagonal)."""
    matrix = SemiringMatrix(graph.n, MIN_PLUS)
    for u in range(graph.n):
        matrix.rows[u][u] = 0.0
        for v, w in graph.neighbors(u).items():
            matrix.rows[u][v] = float(w)
    return matrix


def augmented_weight_matrix(
    graph: Graph,
    semiring: Optional[AugmentedMinPlusSemiring] = None,
) -> Tuple[SemiringMatrix, AugmentedMinPlusSemiring]:
    """The augmented weight matrix ``W`` of ``graph`` and its semiring.

    Returns ``(W, semiring)``; the semiring is sized so that every value the
    distance computations can produce (path weights up to ``n · max_weight``
    and hop counts up to ``2 n``) is representable in its integer encoding.
    """
    if semiring is None:
        semiring = augmented_semiring_for(graph.n, max(1.0, graph.max_weight()))
    matrix = SemiringMatrix(graph.n, semiring)
    for u in range(graph.n):
        matrix.rows[u][u] = semiring.one
        for v, w in graph.neighbors(u).items():
            matrix.rows[u][v] = AugmentedEntry(float(w), 1)
    return matrix, semiring


def matrix_from_edges(
    n: int,
    edges: Dict[Tuple[int, int], float],
    semiring: AugmentedMinPlusSemiring,
    include_diagonal: bool = True,
) -> SemiringMatrix:
    """Augmented matrix from an explicit edge-weight dictionary."""
    matrix = SemiringMatrix(n, semiring)
    if include_diagonal:
        for u in range(n):
            matrix.rows[u][u] = semiring.one
    for (u, v), w in edges.items():
        entry = AugmentedEntry(float(w), 1)
        current = matrix.rows[u].get(v)
        if current is None or entry < current:
            matrix.rows[u][v] = entry
    return matrix


def distances_from_augmented(matrix: SemiringMatrix) -> List[Dict[int, float]]:
    """Strip hop counts: per-row dictionaries of plain distances."""
    out: List[Dict[int, float]] = []
    for i in range(matrix.n):
        row = {}
        for j, entry in matrix.rows[i].items():
            weight = entry[0]
            if weight != math.inf:
                row[j] = weight
        out.append(row)
    return out


def dense_distances_from_augmented(matrix: SemiringMatrix) -> List[List[float]]:
    """Dense ``n x n`` distance list-of-lists (``INF`` for absent entries)."""
    n = matrix.n
    dense = [[INF] * n for _ in range(n)]
    for i in range(n):
        for j, entry in matrix.rows[i].items():
            dense[i][j] = entry[0]
    return dense
