"""Hitting sets (Lemma 4).

Given subsets ``S_v`` of size at least ``k`` (one per node), a hitting set
``A`` contains at least one node of every ``S_v``.  The paper uses the
deterministic Congested Clique construction of Parter and Yogev, which
produces a hitting set of size ``O(n log n / k)`` in ``O((log log n)^3)``
rounds; we reproduce the same size bound with a deterministic greedy
(set-cover) construction and charge the stated number of rounds, and also
provide the classic seeded random construction for comparison.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set

from repro.cclique.accounting import Clique


def greedy_hitting_set(
    sets: Sequence[Sequence[int]],
    universe_size: int,
    clique: Optional[Clique] = None,
    label: str = "hitting-set",
) -> List[int]:
    """Deterministic hitting set via greedy set cover.

    Parameters
    ----------
    sets:
        The subsets to hit (empty subsets are ignored).
    universe_size:
        Number of nodes ``n``.
    clique:
        If given, the Lemma 4 round cost ``O((log log n)^3)`` is charged.

    Returns
    -------
    A sorted list of chosen nodes.  The greedy rule (always pick the node
    covering the most not-yet-hit subsets) guarantees a set of size at most
    ``(ln m + 1) · OPT`` where ``m`` is the number of subsets; since
    ``OPT <= ceil(n / k)`` for subsets of size ``>= k`` this matches the
    ``O(n log n / k)`` bound of Lemma 4.
    """
    if clique is not None:
        clique.charge_hitting_set(label=label)

    import heapq

    alive: Dict[int, Set[int]] = {}
    for index, subset in enumerate(sets):
        if subset:
            alive[index] = set(subset)

    membership: Dict[int, Set[int]] = {}
    for index, subset in alive.items():
        for node in subset:
            membership.setdefault(node, set()).add(index)

    # Lazy-deletion max-heap keyed by (uncovered count, node id) so the
    # selection is deterministic; counts are refreshed on pop.
    covered: Set[int] = set()
    heap = [(-len(indices), node) for node, indices in membership.items()]
    heapq.heapify(heap)
    chosen: List[int] = []
    remaining = len(alive)
    while remaining > 0 and heap:
        neg_count, node = heapq.heappop(heap)
        current = sum(1 for index in membership[node] if index not in covered)
        if current == 0:
            continue
        if -neg_count != current:
            heapq.heappush(heap, (-current, node))
            continue
        chosen.append(node)
        for index in membership[node]:
            if index not in covered:
                covered.add(index)
                remaining -= 1
    return sorted(chosen)


def random_hitting_set(
    sets: Sequence[Sequence[int]],
    universe_size: int,
    k: int,
    seed: Optional[int] = None,
    clique: Optional[Clique] = None,
    label: str = "hitting-set",
) -> List[int]:
    """Randomized hitting set: include each node with probability ``ln n / k``.

    Retries with doubled probability until every subset is hit, so the
    result is always a valid hitting set (the first attempt succeeds with
    high probability, matching the textbook argument quoted in the paper).
    """
    if clique is not None:
        clique.charge_hitting_set(label=label)
    rng = random.Random(seed)
    n = universe_size
    probability = min(1.0, math.log(max(2, n)) / max(1, k))
    non_empty = [set(subset) for subset in sets if subset]
    while True:
        chosen = {node for node in range(n) if rng.random() < probability}
        if all(subset & chosen for subset in non_empty):
            return sorted(chosen)
        probability = min(1.0, probability * 2)


def verify_hitting_set(sets: Sequence[Sequence[int]], hitting_set: Sequence[int]) -> bool:
    """Return ``True`` if every non-empty subset contains a chosen node."""
    chosen = set(hitting_set)
    return all((not subset) or (set(subset) & chosen) for subset in sets)
