"""Process-parallel oracle builds: K row shards built on K cores.

The sharded artifact format (PR 4) already splits every oracle payload
into contiguous row ranges — exactly the slab decomposition the paper's
Congested Clique algorithms assign to their ``n`` machines.  This module
builds those shards **concurrently**: the distance closure, the ball
derivation, and the shard files themselves are all row-slab tasks executed
on a :class:`repro.matmul.parallel.SlabExecutor`, so build time scales
with cores while each worker holds one slab of rows, never the artifact.

Two entry points (both also reachable through
``OracleBuilder(..., jobs=K)`` and ``repro oracle build --jobs K``):

* :func:`build_parallel` — in-memory :class:`OracleArtifact`, for callers
  that want the classic artifact object but a faster build.
* :func:`build_sharded_parallel` — shard files written **directly** by the
  workers (each worker streams its own ``oracle.shard-K.npz``), so the
  full payload is never materialised in any single process.

Determinism contract — ``jobs=K`` is *bit-identical* to ``jobs=1``:

* the closure's iterated squaring steps are global barriers, so the step
  count (and every float) is independent of the slab split;
* ball rows are per-row stable argsorts of closure rows — no cross-row
  state;
* the hitting set runs in the parent on the full ball table (sorted,
  deterministic greedy);
* shard bytes come from :func:`repro.oracle.sharding.write_shard_payload`,
  whose output is a pure function of the payload (fixed zip timestamps).

The tests assert per-shard SHA-256 equality between jobs=1 and jobs=4
builds; CI gates the build-time ratio.

The distances computed here are **exact** (full min-plus closure), which
satisfies every strategy's advertised stretch guarantee a fortiori.  The
trade is explicit: the classic ``jobs=None`` path simulates the paper's
round-efficient approximations and reports their round counts; the
parallel path optimises wall-clock on real cores and records
``rounds=0.0`` with ``build.mode = "parallel"`` so artifacts remain
self-describing.
"""

from __future__ import annotations

import math
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.matmul.parallel import (
    SlabExecutor,
    minplus_closure,
    slab_ranges,
)
from repro.oracle.artifact import OracleArtifact
from repro.oracle.sharding import (
    _row_ranges,
    shard_entry,
    shard_manifest_path,
    shard_payload_name,
    write_shard_manifest,
    write_shard_payload,
)
from repro.oracle.strategies import get_strategy
from repro.distance.hitting_set import greedy_hitting_set

__all__ = ["build_parallel", "build_sharded_parallel", "weight_matrix"]


def weight_matrix(graph: Graph) -> np.ndarray:
    """The graph's dense adjacency: ``inf`` off-edges, zero diagonal."""
    W = np.full((graph.n, graph.n), np.inf, dtype=np.float64)
    np.fill_diagonal(W, 0.0)
    for u in range(graph.n):
        for v, weight in graph.adj[u].items():
            W[u, v] = float(weight)
    return W


def _default_k(n: int) -> int:
    """The landmark-mssp default ball size (matches the classic builder)."""
    return max(2, min(n, math.ceil(math.sqrt(n))))


# ----------------------------------------------------------------------
# slab workers (module-level for spawn pickling)
# ----------------------------------------------------------------------
def _balls_slab(task) -> None:
    """Derive the k-nearest ball rows for one slab of nodes.

    Stable argsort on the closure row orders by ``(distance, node id)`` —
    the same tie-break the classic builder applies — and unreachable slots
    are padded with ``-1`` / ``inf``, which the query engine skips.
    """
    D_h, idx_h, dist_h, k, start, stop = task
    rows = np.asarray(D_h.open()[start:stop])
    order = np.argsort(rows, axis=1, kind="stable")[:, :k].astype(np.int64)
    dists = np.take_along_axis(rows, order, axis=1)
    order[~np.isfinite(dists)] = -1
    idx = idx_h.open("r+")
    dist = dist_h.open("r+")
    idx[start:stop] = order
    dist[start:stop] = dists
    idx.flush()
    dist.flush()


def _write_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Write one shard file from shared sources; returns its manifest entry.

    ``task["sources"]`` maps each member name to how its rows are produced:
    ``("slab", handle)`` slices the shard's row range, ``("cols", handle,
    cols)`` additionally gathers columns (the landmark table is a column
    gather of the closure — never materialised whole), and ``("array",
    values)`` embeds a small common array (shard 0 only).  Member order is
    ``task["order"]``, kept identical to the serial writer's so the bytes
    match byte-for-byte.
    """
    path = Path(task["path"])
    start, stop = task["start"], task["stop"]
    payload: Dict[str, np.ndarray] = {}
    for name in task["order"]:
        source = task["sources"][name]
        if source[0] == "slab":
            payload[name] = np.asarray(source[1].open()[start:stop])
        elif source[0] == "cols":
            payload[name] = np.asarray(source[1].open()[start:stop][:, source[2]])
        else:  # "array"
            payload[name] = source[1]
    write_shard_payload(path, payload)
    return shard_entry(task["index"], path, start, stop)


# ----------------------------------------------------------------------
# build pipeline
# ----------------------------------------------------------------------
def _generic_payload(
    executor: SlabExecutor,
    graph: Graph,
    spec,
    k: Optional[int],
    epsilon: float,
    phases: Dict[str, float],
):
    """Fallback payload for registry strategies without a native slab path.

    The strategy's classic build function runs once in the parent — it is
    deterministic and kernel-independent, so the payload bytes cannot
    depend on the job count — and the resulting arrays are shared to the
    workers as memmaps, which then write their shard files concurrently
    exactly like the native paths.  Per-shard SHA-256 therefore stays
    identical at any ``jobs``; only the shard writes parallelise.
    """
    from repro.oracle.build import OracleBuilder

    tick = time.perf_counter()
    builder = OracleBuilder(strategy=spec.name, epsilon=epsilon, k=k)
    arrays, rounds, detail, build_phases = spec.resolve_build()(builder, graph)
    phases.update(build_phases)
    phases["share"] = time.perf_counter() - tick

    sharded: Dict[str, Any] = {}
    common: Dict[str, Any] = {}
    layout: Dict[str, Any] = {}
    for name, array in arrays.items():
        array = np.asarray(array)
        layout[name] = {"dtype": array.dtype.name, "shape": list(array.shape)}
        if name in spec.row_sharded_arrays:
            sharded[name] = ("slab", executor.share(f"payload-{name}", array))
        else:
            common[name] = ("array", array)
    return sharded, common, layout, detail, float(rounds)


def _parallel_payload(
    executor: SlabExecutor,
    graph: Graph,
    spec,
    k: Optional[int],
    epsilon: float,
    phases: Dict[str, float],
):
    """Run the compute phases; returns shared-source descriptors + layouts.

    Returns ``(sharded_sources, common_sources, layout, detail, rounds)``
    where the source descriptors are the ``("slab"|"cols"|"array", ...)``
    tuples the shard writer and the in-memory materialiser both consume,
    and ``layout`` maps every array name to its manifest ``{dtype,
    shape}``.  Dispatch is by the spec's ``query_kind``: dense strategies
    take the min-plus closure slab path, ``landmark-mssp`` its native
    ball/landmark slab path, everything else the deterministic
    :func:`_generic_payload` fallback.
    """
    n = graph.n
    if spec.name != "landmark-mssp" and spec.query_kind != "dense":
        return _generic_payload(executor, graph, spec, k, epsilon, phases)

    tick = time.perf_counter()
    W = executor.share("weights", weight_matrix(graph))
    closure, steps = minplus_closure(executor, W)
    phases["closure"] = time.perf_counter() - tick
    detail: Dict[str, Any] = {"squarings": steps}

    if spec.query_kind == "dense":
        layout = {"dist": {"dtype": "float64", "shape": [n, n]}}
        return {"dist": ("slab", closure)}, {}, layout, detail, 0.0

    k_val = k if k is not None else _default_k(n)
    if not 1 <= k_val <= n:
        raise ValueError(f"ball size k={k_val} out of range [1, {n}]")

    tick = time.perf_counter()
    idx_h = executor.empty("ball-idx", np.int64, (n, k_val))
    dist_h = executor.empty("ball-dist", np.float64, (n, k_val))
    executor.map(
        _balls_slab,
        [(closure, idx_h, dist_h, k_val, start, stop)
         for start, stop in slab_ranges(n, min(max(executor.jobs, 1), n))],
    )
    phases["balls"] = time.perf_counter() - tick

    tick = time.perf_counter()
    ball_idx = np.asarray(idx_h.open())
    ball_sets = [set(int(u) for u in row if u >= 0) for row in ball_idx]
    landmarks = np.asarray(
        greedy_hitting_set(ball_sets, n), dtype=np.int64)
    phases["hitting-set"] = time.perf_counter() - tick

    detail.update({"k": k_val, "num_landmarks": int(len(landmarks))})
    sharded = {
        "landmark_dist": ("cols", closure, landmarks),
        "ball_idx": ("slab", idx_h),
        "ball_dist": ("slab", dist_h),
    }
    common = {"landmarks": ("array", landmarks)}
    layout = {
        "landmark_dist": {"dtype": "float64", "shape": [n, len(landmarks)]},
        "ball_idx": {"dtype": "int64", "shape": [n, k_val]},
        "ball_dist": {"dtype": "float64", "shape": [n, k_val]},
        "landmarks": {"dtype": "int64", "shape": [len(landmarks)]},
    }
    return sharded, common, layout, detail, 0.0


def _metadata(
    graph: Graph,
    spec,
    epsilon: float,
    k: Optional[int],
    rounds: float,
    seconds: float,
    jobs: int,
    phases: Dict[str, float],
    detail: Dict[str, Any],
    extra_metadata: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    max_weight = graph.max_weight()
    native = spec.query_kind == "dense" or spec.name == "landmark-mssp"
    metadata: Dict[str, Any] = {
        "strategy": spec.name,
        "n": graph.n,
        "num_edges": graph.num_edges(),
        "epsilon": epsilon,
        "max_weight": max_weight,
        "stretch": spec.guarantee(epsilon, max_weight, k).as_dict(),
        "query_kind": spec.query_kind,
        "build": {
            "rounds": rounds,
            "seconds": seconds,
            "kernel": "dense-blocked" if native else "classic",
            "hot_primitives": list(spec.hot_primitives),
            "mode": "parallel",
            "jobs": jobs,
            "phases": {name: round(value, 6) for name, value in phases.items()},
            **detail,
        },
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return metadata


def _validate_build_inputs(graph: Graph, epsilon: float, jobs: int) -> None:
    if graph.directed:
        raise ValueError("distance oracles require an undirected graph")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")


def build_parallel(
    graph: Graph,
    strategy: str = "landmark-mssp",
    epsilon: float = 0.5,
    k: Optional[int] = None,
    jobs: int = 1,
    pool=None,
) -> OracleArtifact:
    """Parallel build returning a classic in-memory artifact.

    Same payload bits as :func:`build_sharded_parallel` at the same
    parameters — only the packaging differs.
    """
    _validate_build_inputs(graph, epsilon, jobs)
    spec = get_strategy(strategy)
    phases: Dict[str, float] = {}
    start = time.perf_counter()
    with SlabExecutor(jobs=jobs, pool=pool) as executor:
        sharded, common, _layout, detail, rounds = _parallel_payload(
            executor, graph, spec, k, float(epsilon), phases)
        tick = time.perf_counter()
        arrays: Dict[str, np.ndarray] = {}
        for name, source in {**sharded, **common}.items():
            if source[0] == "slab":
                arrays[name] = np.asarray(source[1].open())
            elif source[0] == "cols":
                arrays[name] = np.asarray(source[1].open()[:, source[2]])
            else:
                arrays[name] = source[1]
        phases["materialize"] = time.perf_counter() - tick
    seconds = time.perf_counter() - start
    from repro.oracle.build import record_build_phases
    record_build_phases(spec.name, phases)
    metadata = _metadata(graph, spec, float(epsilon), k, rounds, seconds,
                         jobs, phases, detail, None)
    artifact = OracleArtifact(metadata=metadata, arrays=arrays)
    artifact.validate()
    return artifact


def build_sharded_parallel(
    graph: Graph,
    path,
    num_shards: int,
    strategy: str = "landmark-mssp",
    epsilon: float = 0.5,
    k: Optional[int] = None,
    jobs: int = 1,
    pool=None,
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> Tuple[Path, List[Path], Dict[str, Any]]:
    """Build a sharded artifact with ``jobs`` workers writing shards directly.

    Returns ``(manifest_path, shard_paths, metadata)``.  Each shard file is
    written by whichever worker drew its row range — the parent only runs
    the hitting set and assembles the manifest from the workers' returned
    entries (ordered by shard index, so the manifest is deterministic too).
    """
    _validate_build_inputs(graph, epsilon, jobs)
    spec = get_strategy(strategy)
    manifest_path = shard_manifest_path(path)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    base = manifest_path.name[: -len(".shards.json")]

    phases: Dict[str, float] = {}
    start = time.perf_counter()
    with SlabExecutor(jobs=jobs, pool=pool) as executor:
        sharded, common, layout, detail, rounds = _parallel_payload(
            executor, graph, spec, k, float(epsilon), phases)

        tick = time.perf_counter()
        tasks = []
        shard_paths: List[Path] = []
        for index, (row_start, row_stop) in enumerate(
                _row_ranges(graph.n, num_shards)):
            order = list(spec.row_sharded_arrays)
            sources: Dict[str, Any] = {name: sharded[name] for name in order}
            if index == 0:
                for name in sorted(common):
                    order.append(name)
                    sources[name] = common[name]
            shard_file = manifest_path.with_name(shard_payload_name(base, index))
            shard_paths.append(shard_file)
            tasks.append({
                "path": str(shard_file),
                "index": index,
                "start": row_start,
                "stop": row_stop,
                "order": order,
                "sources": sources,
            })
        entries = executor.map(_write_shard, tasks)
        phases["shard-write"] = time.perf_counter() - tick

    seconds = time.perf_counter() - start
    from repro.oracle.build import record_build_phases
    record_build_phases(spec.name, phases)
    metadata = _metadata(graph, spec, float(epsilon), k, rounds, seconds,
                         jobs, phases, detail, extra_metadata)
    write_shard_manifest(
        manifest_path,
        metadata,
        entries,
        {name: layout[name] for name in spec.row_sharded_arrays},
        {name: layout[name] for name in sorted(common)},
    )
    return manifest_path, shard_paths, metadata
