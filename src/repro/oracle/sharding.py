"""Sharded, memory-mappable on-disk format for large oracle artifacts.

The monolithic format (:mod:`repro.oracle.artifact`) reads its whole
compressed payload into RAM, so cold-start time and resident memory grow
as O(n²) for the dense strategies even when a workload touches a handful
of pairs.  This module is the alternative for large n: one artifact
becomes a set of *row shards* plus a JSON manifest, mirroring how the
paper's Congested Clique algorithms hand each node a bandwidth slice of
the all-pairs object instead of the whole thing:

* ``<name>.shard-K.npz`` — shard ``K`` holds rows ``[row_start, row_stop)``
  of every row-sharded payload array (see
  :attr:`repro.oracle.strategies.StrategySpec.row_sharded_arrays`), written
  **uncompressed** so the arrays can be memory-mapped in place.  Small
  non-row arrays (e.g. the landmark id vector) travel whole inside shard 0.
* ``<name>.shards.json`` — the manifest: the same metadata the monolithic
  sidecar carries (strategy, n, epsilon, stretch, build provenance), plus
  per-shard row ranges, byte sizes, and SHA-256 checksums.  Everything the
  serving registry needs to route to the artifact lives here — no shard
  file is touched at registration time.

``numpy`` cannot memory-map members of an ``.npz`` through ``np.load``
(the zip wrapper always reads them into RAM), so :func:`_mmap_npz` maps
the uncompressed members directly: it locates each member's data offset
inside the zip and hands it to ``np.memmap``.  Opening a shard therefore
costs two file headers, not the payload — rows fault in lazily as queries
touch them, which is what makes n in the tens of thousands servable on
laptop-class RAM.

Checksums are verified *per shard*: eagerly at load with ``verify="eager"``
(reads every shard once — what the tests use), or on a shard's first open
with the default ``verify="lazy"`` (a skewed workload never pays for the
shards it never touches), or not at all with ``verify="none"``.
"""

from __future__ import annotations

import hashlib
import json
import time
import zipfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.oracle.artifact import (
    FORMAT_VERSION,
    ArtifactError,
    OracleArtifact,
    artifact_paths,
)
from repro.oracle.strategies import StretchGuarantee, get_strategy

PathLike = Union[str, Path]


class ShardIntegrityError(ArtifactError):
    """A shard whose bytes are quarantined or condemned.

    Raised when a quarantined shard fails its forced re-verification (the
    file on disk really is rotten) and on every subsequent open until the
    recheck window elapses.  The serving stack maps this to the wire
    error ``ERR_DATA_INTEGRITY`` so clients see a typed failure instead
    of NaN distances.
    """


#: Bump on any incompatible shard/manifest layout change.
SHARD_MANIFEST_VERSION = 1

#: Manifest suffix replacing the payload's ``.npz``.
SHARD_MANIFEST_SUFFIX = ".shards.json"

#: Accepted ``verify=`` modes for :meth:`ShardedOracleArtifact.load`.
VERIFY_MODES = ("eager", "lazy", "none")


def shard_manifest_path(path: PathLike) -> Path:
    """Normalise ``path`` (base, ``.npz``, or manifest) to the manifest path."""
    path = Path(path)
    if path.name.endswith(SHARD_MANIFEST_SUFFIX):
        return path
    payload, _ = artifact_paths(path)
    return payload.with_name(payload.name[: -len(".npz")] + SHARD_MANIFEST_SUFFIX)


def shard_payload_name(base: str, index: int) -> str:
    """File name of shard ``index`` for an artifact with stem ``base``."""
    return f"{base}.shard-{index}.npz"


def _sha256_file(path: Path, chunk: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _row_ranges(n: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``num_shards`` contiguous near-equal ranges."""
    if not 1 <= num_shards <= n:
        raise ValueError(f"num_shards must be in [1, {n}], got {num_shards}")
    per = -(-n // num_shards)  # ceil division
    ranges = []
    start = 0
    while start < n:
        stop = min(n, start + per)
        ranges.append((start, stop))
        start = stop
    return ranges


def _mmap_npz(path: Path) -> Dict[str, np.ndarray]:
    """Memory-map every array of an *uncompressed* ``.npz`` without reading it.

    ``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
    zip archives, so this walks the zip structure itself: for each stored
    (uncompressed) member it parses the ``.npy`` header through the zip
    reader, computes the member's absolute data offset from the local file
    header, and maps the raw buffer with ``np.memmap``.  The return values
    are read-only views over the page cache — no payload bytes are copied.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if not info.filename.endswith(".npy"):
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                raise ArtifactError(
                    f"shard member {info.filename!r} in {path} is compressed; "
                    "sharded payloads must be written uncompressed (np.savez) "
                    "to be memory-mappable"
                )
            with archive.open(info.filename) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                else:
                    raise ArtifactError(
                        f"unsupported .npy format version {version} for "
                        f"{info.filename!r} in {path}"
                    )
                header_len = member.tell()
            # The local file header may carry a different extra field than
            # the central directory's copy, so read its lengths from disk.
            raw.seek(info.header_offset)
            local = raw.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ArtifactError(f"corrupt zip local header in {path}")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            offset = info.header_offset + 30 + name_len + extra_len + header_len
            name = info.filename[: -len(".npy")]
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=offset, shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
#: Fixed zip member timestamp (the zip epoch) for deterministic payloads.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def write_shard_payload(path: PathLike, payload: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz``-compatible shard file with **deterministic bytes**.

    ``np.savez`` stamps each zip member with the current local time, so two
    byte-identical array sets written at different moments (or by different
    build workers) hash differently.  This writer pins every member to the
    zip epoch and stores the arrays uncompressed with zip64 headers — the
    exact layout ``np.savez`` produces minus the timestamps — so
    :func:`_mmap_npz` maps the members unchanged and the shard's SHA-256 is
    a pure function of the payload.  The parallel build relies on this for
    its jobs-parity guarantee (jobs=K reproduces the jobs=1 bytes).

    Member order follows ``payload``'s iteration order; callers that need
    byte parity across code paths must present arrays in the same order.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, array in payload.items():
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            with archive.open(info, "w", force_zip64=True) as member:
                np.lib.format.write_array(
                    member, np.asanyarray(array), allow_pickle=False)


def shard_entry(index: int, shard_file: Path, row_start: int,
                row_stop: int) -> Dict[str, Any]:
    """Manifest entry for a written shard file (stats and hashes it)."""
    return {
        "index": index,
        "path": Path(shard_file).name,
        "row_start": int(row_start),
        "row_stop": int(row_stop),
        "bytes": Path(shard_file).stat().st_size,
        "sha256": _sha256_file(Path(shard_file)),
    }


def write_shard_manifest(
    manifest_path: Path,
    metadata: Dict[str, Any],
    shard_entries: List[Dict[str, Any]],
    sharded_arrays: Dict[str, Dict[str, Any]],
    common_arrays: Dict[str, Dict[str, Any]],
) -> Path:
    """Assemble and write the ``.shards.json`` manifest; returns its path."""
    manifest = {
        "shard_manifest_version": SHARD_MANIFEST_VERSION,
        "metadata": {**metadata, "format_version": FORMAT_VERSION},
        "num_shards": len(shard_entries),
        "shards": shard_entries,
        "sharded_arrays": sharded_arrays,
        "common_arrays": common_arrays,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest_path


def array_layout(arrays: Dict[str, Any], names) -> Dict[str, Dict[str, Any]]:
    """The manifest's ``{name: {dtype, shape}}`` description of ``names``."""
    return {
        name: {"dtype": str(arrays[name].dtype),
               "shape": list(arrays[name].shape)}
        for name in names
    }


def write_sharded_artifact(
    metadata: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
    path: PathLike,
    num_shards: int,
) -> Tuple[Path, List[Path]]:
    """Write ``arrays`` as row shards plus a manifest; returns the paths.

    Row-sharded arrays (per the strategy spec) are sliced by node range and
    each slice is streamed straight into its shard file — slicing yields
    views, and the deterministic writer streams them to disk chunk-wise, so
    peak extra memory stays O(one write buffer) regardless of artifact
    size.  The remaining (small) arrays are stored whole in shard 0.
    """
    spec = get_strategy(str(metadata["strategy"]))
    missing = [name for name in spec.required_arrays if name not in arrays]
    if missing:
        raise ArtifactError(
            f"artifact for strategy {spec.name!r} is missing payload arrays "
            f"{missing}; present: {sorted(arrays)}"
        )
    n = int(metadata["n"])
    for name in spec.row_sharded_arrays:
        if arrays[name].shape[0] != n:
            raise ArtifactError(
                f"row-sharded array {name!r} has leading axis "
                f"{arrays[name].shape[0]}, expected n={n}"
            )
    manifest_path = shard_manifest_path(path)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    base = manifest_path.name[: -len(SHARD_MANIFEST_SUFFIX)]

    common_names = [name for name in sorted(arrays)
                    if name not in spec.row_sharded_arrays]
    ranges = _row_ranges(n, num_shards)
    shard_entries = []
    shard_files = []
    for index, (start, stop) in enumerate(ranges):
        payload = {name: arrays[name][start:stop]
                   for name in spec.row_sharded_arrays}
        if index == 0:
            payload.update({name: arrays[name] for name in common_names})
        shard_file = manifest_path.with_name(shard_payload_name(base, index))
        write_shard_payload(shard_file, payload)
        shard_entries.append(shard_entry(index, shard_file, start, stop))
        shard_files.append(shard_file)

    write_shard_manifest(
        manifest_path,
        metadata,
        shard_entries,
        array_layout(arrays, spec.row_sharded_arrays),
        array_layout(arrays, common_names),
    )
    return manifest_path, shard_files


class _MappedRows:
    """Row-slice adapter presenting a sharded array to the shard writer.

    Quacks like the ndarray the writer needs — ``shape``, ``dtype``, and
    row-range slicing — but each ``[start:stop]`` gathers only that range
    from the source's memory-mapped shards, so re-sharding never holds
    more than one destination shard of rows in RAM.
    """

    def __init__(self, artifact: "ShardedOracleArtifact", name: str):
        self._artifact = artifact
        self._name = name
        self.dtype = np.dtype(artifact._sharded_arrays[name][0])
        self.shape = artifact.array_shape(name)

    def __getitem__(self, rows: slice) -> np.ndarray:
        return self._artifact.rows(
            self._name, np.arange(rows.start, rows.stop, dtype=np.int64))


def shard_artifact(source: PathLike, destination: PathLike,
                   num_shards: int) -> Tuple[Path, List[Path]]:
    """Re-shard an existing artifact (monolithic or sharded) on disk.

    The source is read through :func:`load_artifact`: a monolithic
    ``.npz`` pays one full decompression, while a sharded source stays
    memory-mapped and is gathered one destination shard at a time (via
    :class:`_MappedRows`), so peak memory for sharded-to-sharded copies
    is one shard of rows, never the payload.
    """
    artifact = load_artifact(source, verify="eager")
    metadata = dict(artifact.metadata)
    if isinstance(artifact, ShardedOracleArtifact):
        arrays: Dict[str, Any] = {
            name: _MappedRows(artifact, name)
            for name in artifact.sharded_array_names
        }
        for name in artifact._common_arrays:
            arrays[name] = artifact.common(name)
    else:
        arrays = artifact.arrays
    metadata.pop("payload_sha256", None)
    metadata.pop("payload_arrays", None)
    return write_sharded_artifact(metadata, arrays, destination, num_shards)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class ShardedOracleArtifact:
    """A sharded artifact opened for querying: metadata now, rows on demand.

    Loading parses the manifest and stats the shard files — nothing else.
    Shards open lazily (``faults`` counts the opens) and their arrays are
    memory-mapped, so the only payload bytes that ever become resident are
    the rows a query actually gathers.  The row accessors (:meth:`row`,
    :meth:`rows`, :meth:`gather`, :meth:`iter_shards`) return values
    bit-identical to the same accesses on the monolithic arrays — shards
    store exact row slices, never re-encoded data.
    """

    def __init__(self, manifest_path: Path, manifest: Dict[str, Any],
                 verify: str = "lazy"):
        if verify not in VERIFY_MODES:
            raise ValueError(f"verify must be one of {VERIFY_MODES}, got {verify!r}")
        self.manifest_path = manifest_path
        self.metadata: Dict[str, Any] = manifest["metadata"]
        self.verify = verify
        self._spec = get_strategy(str(self.metadata["strategy"]))
        self._shards: List[Dict[str, Any]] = sorted(
            manifest["shards"], key=lambda item: int(item["index"]))
        self._sharded_arrays: Dict[str, Tuple[np.dtype, Tuple[int, ...]]] = {
            name: (np.dtype(info["dtype"]), tuple(info["shape"]))
            for name, info in manifest["sharded_arrays"].items()
        }
        self._common_arrays: Dict[str, Tuple[np.dtype, Tuple[int, ...]]] = {
            name: (np.dtype(info["dtype"]), tuple(info["shape"]))
            for name, info in manifest.get("common_arrays", {}).items()
        }
        self._row_starts = np.asarray(
            [int(item["row_start"]) for item in self._shards], dtype=np.int64)
        self._open: Dict[int, Dict[str, np.ndarray]] = {}
        self._verified: Dict[int, bool] = {}
        self._common_cache: Dict[str, np.ndarray] = {}
        #: Number of shard files opened (and page-mapped) so far.
        self.faults = 0
        #: Shards dropped for re-verification (see :meth:`quarantine`).
        self.quarantines = 0
        #: Shards whose next open must re-verify the checksum regardless
        #: of the artifact's verify mode.
        self._suspect: set = set()
        #: Condemned shards: index -> monotonic instant the re-verify
        #: failed.  Opens raise :class:`ShardIntegrityError` immediately
        #: (no repeated hashing) until ``condemned_recheck`` seconds have
        #: passed, after which one more verify is attempted — a repaired
        #: file heals without a process restart.
        self._condemned: Dict[int, float] = {}
        self.condemned_recheck = 30.0
        self._check_layout()
        if verify == "eager":
            for index in range(self.num_shards):
                self.verify_shard(index)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: PathLike, verify: str = "lazy") -> "ShardedOracleArtifact":
        """Open a sharded artifact from its manifest (or base) path."""
        manifest_path = shard_manifest_path(path)
        if not manifest_path.exists():
            raise ArtifactError(f"shard manifest not found: {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"unparseable shard manifest {manifest_path}: {exc}") from exc
        version = manifest.get("shard_manifest_version")
        if version != SHARD_MANIFEST_VERSION:
            raise ArtifactError(
                f"shard manifest {manifest_path} has shard_manifest_version="
                f"{version!r}; this build reads version {SHARD_MANIFEST_VERSION}"
            )
        metadata = manifest.get("metadata", {})
        fmt = metadata.get("format_version")
        if fmt != FORMAT_VERSION:
            raise ArtifactError(
                f"shard manifest {manifest_path} carries format_version="
                f"{fmt!r}; this build reads version {FORMAT_VERSION}"
            )
        return cls(manifest_path, manifest, verify=verify)

    def _check_layout(self) -> None:
        """Cheap structural checks: schema, contiguous ranges, files present."""
        missing = [name for name in self._spec.required_arrays
                   if name not in self._sharded_arrays
                   and name not in self._common_arrays]
        if missing:
            raise ArtifactError(
                f"sharded artifact for strategy {self.strategy!r} is missing "
                f"payload arrays {missing}"
            )
        expected_start = 0
        for item in self._shards:
            if int(item["row_start"]) != expected_start:
                raise ArtifactError(
                    f"shard manifest {self.manifest_path} has non-contiguous "
                    f"row ranges at shard {item['index']}"
                )
            expected_start = int(item["row_stop"])
            if not self.shard_file(int(item["index"])).exists():
                raise ArtifactError(
                    f"missing shard file {item['path']!r} referenced by "
                    f"{self.manifest_path}"
                )
        if expected_start != self.n:
            raise ArtifactError(
                f"shard manifest {self.manifest_path} covers rows "
                f"[0, {expected_start}), expected [0, {self.n})"
            )

    # ------------------------------------------------------------------
    # metadata accessors (mirror OracleArtifact)
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        return str(self.metadata["strategy"])

    @property
    def n(self) -> int:
        return int(self.metadata["n"])

    @property
    def epsilon(self) -> float:
        return float(self.metadata["epsilon"])

    @property
    def stretch(self) -> StretchGuarantee:
        return StretchGuarantee.from_dict(self.metadata["stretch"])

    @property
    def build_rounds(self) -> float:
        return float(self.metadata["build"]["rounds"])

    @property
    def query_kind(self) -> str:
        """Engine kernel family serving this payload (manifest-recorded;
        falls back to the registered spec for pre-PR10 artifacts)."""
        kind = self.metadata.get("query_kind")
        if kind is not None:
            return str(kind)
        return self._spec.query_kind

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def row_ranges(self) -> List[Tuple[int, int]]:
        return [(int(item["row_start"]), int(item["row_stop"]))
                for item in self._shards]

    @property
    def array_names(self) -> List[str]:
        return sorted(self._sharded_arrays) + sorted(self._common_arrays)

    @property
    def sharded_array_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sharded_arrays))

    def array_shape(self, name: str) -> Tuple[int, ...]:
        """Logical (unsharded) shape of a payload array."""
        if name in self._sharded_arrays:
            return self._sharded_arrays[name][1]
        if name in self._common_arrays:
            return self._common_arrays[name][1]
        raise KeyError(f"unknown payload array {name!r}; "
                       f"known: {self.array_names}")

    @property
    def mapped_bytes(self) -> int:
        """Total payload bytes addressable through the shard maps."""
        return sum(int(item["bytes"]) for item in self._shards)

    def validate(self) -> None:
        """Schema check, for symmetry with :meth:`OracleArtifact.validate`."""
        self._check_layout()

    def shard_file(self, index: int) -> Path:
        return self.manifest_path.with_name(str(self._shards[index]["path"]))

    # ------------------------------------------------------------------
    # shard access
    # ------------------------------------------------------------------
    def verify_shard(self, index: int) -> None:
        """Stream shard ``index`` once and compare its SHA-256 checksum."""
        item = self._shards[index]
        path = self.shard_file(index)
        if not path.exists():
            raise ArtifactError(
                f"missing shard file {item['path']!r} referenced by "
                f"{self.manifest_path}"
            )
        if _sha256_file(path) != item["sha256"]:
            raise ArtifactError(
                f"shard checksum mismatch for {path}: the file does not match "
                f"its manifest entry (corrupt or partially written)"
            )
        self._verified[index] = True

    def quarantine(self, index: int) -> None:
        """Drop shard ``index``'s mapping so the next open re-verifies it.

        The serving layer calls this when a gather through the shard
        produced impossible distances (NaN/negative): the cached memory
        map and verification state are discarded, and the next
        :meth:`open_shard` streams the file's checksum again no matter
        the artifact's verify mode — re-mmapping from disk if the file
        is sound, condemning the shard (typed
        :class:`ShardIntegrityError` on every open) if it is not.
        """
        self._open.pop(index, None)
        self._verified.pop(index, None)
        self._condemned.pop(index, None)
        self._suspect.add(index)
        if index == 0:
            self._common_cache.clear()
        self.quarantines += 1

    def open_shard(self, index: int) -> Dict[str, np.ndarray]:
        """Memory-mapped arrays of shard ``index`` (opened and cached lazily)."""
        opened = self._open.get(index)
        if opened is not None:
            return opened
        condemned_at = self._condemned.get(index)
        if condemned_at is not None:
            if time.monotonic() - condemned_at < self.condemned_recheck:
                raise ShardIntegrityError(
                    f"shard {index} of {self.manifest_path.name} is "
                    f"condemned: its file failed checksum re-verification "
                    f"(repair or restore the shard file to recover)")
            # Recheck window elapsed: give the (possibly repaired) file
            # one more chance below.
            self._condemned.pop(index, None)
            self._suspect.add(index)
        if index in self._suspect or (
                self.verify == "lazy" and not self._verified.get(index)):
            try:
                self.verify_shard(index)
            except ArtifactError as exc:
                if index in self._suspect:
                    self._condemned[index] = time.monotonic()
                if isinstance(exc, ShardIntegrityError):
                    raise
                raise ShardIntegrityError(str(exc)) from exc
            self._suspect.discard(index)
        path = self.shard_file(index)
        if not path.exists():
            raise ArtifactError(
                f"missing shard file {path.name!r} referenced by "
                f"{self.manifest_path}"
            )
        arrays = _mmap_npz(path)
        start, stop = self.row_ranges[index]
        for name in self._sharded_arrays:
            dtype, shape = self._sharded_arrays[name]
            block = arrays.get(name)
            if block is None or block.shape[0] != stop - start \
                    or block.shape[1:] != shape[1:] or block.dtype != dtype:
                raise ArtifactError(
                    f"shard {path.name} does not contain rows "
                    f"[{start}, {stop}) of array {name!r} as the manifest "
                    f"declares"
                )
        self._open[index] = arrays
        self.faults += 1
        return arrays

    def shard_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Shard index owning each row in ``rows`` (vectorised)."""
        return np.searchsorted(self._row_starts, rows, side="right") - 1

    # ------------------------------------------------------------------
    # row accessors
    # ------------------------------------------------------------------
    def row(self, name: str, index: int) -> np.ndarray:
        """Row ``index`` of sharded array ``name`` — a zero-copy mapped view."""
        shard = int(self.shard_of_rows(np.asarray([index], dtype=np.int64))[0])
        return self.open_shard(shard)[name][index - int(self._row_starts[shard])]

    def rows(self, name: str, indices: np.ndarray) -> np.ndarray:
        """Rows ``indices`` of ``name``, gathered shard by shard.

        One fancy-index per touched shard; untouched shards are never
        opened.  Returns a fresh array (the gather is the copy).
        """
        indices = np.asarray(indices, dtype=np.int64)
        dtype, shape = self._sharded_arrays[name]
        out = np.empty((len(indices),) + shape[1:], dtype=dtype)
        shard_ids = self.shard_of_rows(indices)
        for shard in np.unique(shard_ids):
            selection = np.nonzero(shard_ids == shard)[0]
            block = self.open_shard(int(shard))[name]
            out[selection] = block[indices[selection] - int(self._row_starts[shard])]
        return out

    def gather(self, name: str, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Elementwise ``array[rows[i], cols[i]]`` without materialising rows.

        Advanced indexing on the memory map touches only the pages holding
        the requested elements — the zero-copy point-query kernel for the
        dense strategies.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        dtype, _ = self._sharded_arrays[name]
        out = np.empty(len(rows), dtype=dtype)
        shard_ids = self.shard_of_rows(rows)
        for shard in np.unique(shard_ids):
            selection = np.nonzero(shard_ids == shard)[0]
            block = self.open_shard(int(shard))[name]
            out[selection] = block[rows[selection] - int(self._row_starts[shard]),
                                   cols[selection]]
        return out

    def iter_shards(self, name: str) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_start, mapped_block)`` per shard, for full scans."""
        for index, (start, _stop) in enumerate(self.row_ranges):
            yield start, self.open_shard(index)[name]

    def common(self, name: str) -> np.ndarray:
        """A non-sharded array, read from shard 0 once and cached."""
        cached = self._common_cache.get(name)
        if cached is None:
            if name not in self._common_arrays:
                raise KeyError(f"{name!r} is not a common array; "
                               f"common: {sorted(self._common_arrays)}")
            cached = np.asarray(self.open_shard(0)[name])
            self._common_cache[name] = cached
        return cached

    def materialize(self, name: str) -> np.ndarray:
        """The full array, concatenated across shards (for re-sharding)."""
        if name in self._common_arrays:
            return self.common(name)
        return self.rows(name, np.arange(self.n, dtype=np.int64))

    def resident_bytes(self) -> int:
        """Payload bytes held resident by this object (common arrays only).

        Mapped shard pages live in the page cache and are reclaimable; the
        engine's row-block cache accounts for its own copies.
        """
        return sum(array.nbytes for array in self._common_cache.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedOracleArtifact(strategy={self.strategy!r}, n={self.n}, "
                f"shards={self.num_shards}, faults={self.faults})")


def load_artifact(path: PathLike, verify: str = "lazy",
                  ) -> Union[OracleArtifact, "ShardedOracleArtifact"]:
    """Load whichever artifact lives at ``path`` — monolithic or sharded.

    A path naming a shard manifest (``*.shards.json``) always loads the
    sharded artifact.  A bare/``.npz`` path prefers the monolithic payload
    when it exists and falls back to a shard manifest next to it.
    ``verify`` applies to sharded artifacts only — the monolithic loader
    always verifies its single checksum.
    """
    path = Path(path)
    if path.name.endswith(SHARD_MANIFEST_SUFFIX):
        return ShardedOracleArtifact.load(path, verify=verify)
    payload, _ = artifact_paths(path)
    if payload.exists():
        return OracleArtifact.load(payload)
    manifest = shard_manifest_path(payload)
    if manifest.exists():
        return ShardedOracleArtifact.load(manifest, verify=verify)
    raise ArtifactError(
        f"oracle artifact not found: {payload} (no payload and no "
        f"{manifest.name} shard manifest)"
    )


__all__ = [
    "SHARD_MANIFEST_SUFFIX",
    "SHARD_MANIFEST_VERSION",
    "ShardIntegrityError",
    "ShardedOracleArtifact",
    "array_layout",
    "load_artifact",
    "shard_artifact",
    "shard_entry",
    "shard_manifest_path",
    "shard_payload_name",
    "write_shard_manifest",
    "write_shard_payload",
    "write_sharded_artifact",
]
