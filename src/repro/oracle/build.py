"""Building oracle artifacts from graphs (the expensive half of the split).

:class:`OracleBuilder` runs one of the paper's Congested Clique
computations once and packages the result as an
:class:`~repro.oracle.artifact.OracleArtifact`: the simulated round count
of the build is recorded in the artifact metadata, so the build/serve
trade-off each strategy makes (rounds and artifact size at build time vs
accuracy and work at query time) stays visible end to end.

Dispatch is registry-driven: the builder resolves the strategy's
:class:`~repro.oracle.strategies.StrategySpec` and calls its ``build_fn``
— a ``(builder, graph) -> (arrays, rounds, detail, phases)`` function.
The three built-in builds living in this module:

* :func:`build_dense_arrays` wraps :func:`repro.core.apsp_weighted`
  (Theorem 28).
* :func:`build_landmark_arrays` composes :func:`repro.distance.k_nearest`
  (Theorem 18, exact √n-balls), :func:`repro.distance.hitting_set.
  greedy_hitting_set` (Lemma 4 landmarks) and :func:`repro.core.mssp`
  (Theorem 3, the (1 + ε) landmark table) under a single accounting
  context, mirroring the pipeline of Section 6.1.
* :func:`build_exact_arrays` wraps :func:`repro.baselines.apsp_dense_mm`.

``spanner-greedy`` and ``hopset-landmark`` live in their own modules
(:mod:`repro.oracle.spanner`, :mod:`repro.oracle.hopset_landmark`) and
plug in through the same registry path.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.baselines.apsp_dense_mm import apsp_dense_mm
from repro.cclique.accounting import Clique
from repro.core.apsp_weighted import apsp_weighted
from repro.core.mssp import mssp
from repro.distance.hitting_set import greedy_hitting_set
from repro.distance.k_nearest import k_nearest
from repro.graphs.graph import Graph
from repro.obs.metrics import get_registry
from repro.oracle import parallel_build, sharding
from repro.oracle.artifact import OracleArtifact
from repro.oracle.strategies import get_strategy


def record_build_phases(strategy: str, phases: Dict[str, float]) -> None:
    """Publish per-phase build wall-clock onto the obs registry.

    One ``repro_build_phase_seconds_total{strategy,phase}`` counter per
    phase name — builds are rare, so these are plain imperative adds (the
    per-phase dicts in artifact metadata stay the canonical record; this
    mirrors them onto ``/metricsz`` so long-running build fleets can be
    watched).  Both the classic simulated path and the parallel executor
    (:mod:`repro.oracle.parallel_build`) report through here.
    """
    registry = get_registry()
    for phase, seconds in phases.items():
        registry.counter(
            "repro_build_phase_seconds_total",
            "Wall-clock seconds spent per oracle build phase",
            labels={"strategy": strategy, "phase": phase},
        ).inc(float(seconds))


@dataclasses.dataclass
class BuildReport:
    """What a build cost and what the resulting artifact guarantees."""

    strategy: str
    n: int
    num_edges: int
    epsilon: float
    rounds: float
    seconds: float
    multiplicative_stretch: float
    additive_stretch: float
    detail: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Worker processes the build ran on (1 for the classic simulated path).
    jobs: int = 1
    #: ``"simulated-clique"`` (round-accounted classic path) or
    #: ``"parallel"`` (multi-core exact build, rounds not simulated).
    mode: str = "simulated-clique"
    #: Per-phase wall-clock seconds, in execution order.
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)

    def summary(self, verbose: bool = False) -> str:
        lines = [
            f"strategy          : {self.strategy}",
            f"graph             : n={self.n}, m={self.num_edges}",
            f"epsilon           : {self.epsilon}",
            f"simulated rounds  : {self.rounds:.0f}",
            f"build wall-clock  : {self.seconds:.2f}s",
            f"stretch guarantee : {self.multiplicative_stretch:g}x"
            + (f" + {self.additive_stretch:g}" if self.additive_stretch else ""),
        ]
        for key, value in sorted(self.detail.items()):
            lines.append(f"{key:<18}: {value}")
        if verbose:
            lines.append(f"workers           : {self.jobs} ({self.mode})")
            for name, seconds in self.phases.items():
                lines.append(f"phase {name:<12}: {seconds:.2f}s")
        return "\n".join(lines)


class OracleBuilder:
    """Build a distance-oracle artifact from a graph.

    Parameters
    ----------
    strategy:
        Any name registered on :data:`repro.oracle.strategies.REGISTRY`
        (see :data:`~repro.oracle.strategies.STRATEGY_NAMES`).
    epsilon:
        Stretch parameter for the approximate strategies (ignored by the
        strategies whose guarantee does not depend on it).
    k:
        Ball size for the landmark strategies — defaults to
        ``ceil(sqrt(n))`` like the paper's APSP pipeline — and the
        spanner parameter for ``spanner-greedy`` (defaults to 2, i.e. a
        3-spanner).
    kernel:
        Pin the local-product kernel used by the build's matrix products
        (``"dict"``/``"csr"``/``"dense"``/``"dense-blocked"``/``"jit"``);
        ``None`` lets the cost model choose per product.  Recorded in the
        artifact's build metadata so benchmark artifacts are
        self-describing.
    jobs:
        ``None`` (default) runs the classic single-process build that
        simulates the paper's Congested Clique rounds.  Any integer >= 1
        switches to the multi-core row-slab build
        (:mod:`repro.oracle.parallel_build`): ``jobs`` worker processes
        with ``rounds=0.0`` recorded.  ``jobs=1`` runs the parallel code
        path inline — the byte-exact serial baseline the parity tests and
        benchmarks compare against.
    pool:
        Optional pre-started spawn-context pool for the parallel path
        (test hook: shares one pool across many small builds).
    """

    def __init__(self, strategy: str = "landmark-mssp", epsilon: float = 0.5,
                 k: Optional[int] = None, kernel: Optional[str] = None,
                 jobs: Optional[int] = None, pool=None):
        self.spec = get_strategy(strategy)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.epsilon = float(epsilon)
        self.k = k
        self.kernel = kernel
        self.jobs = jobs
        self.pool = pool

    def build(self, graph: Graph) -> OracleArtifact:
        """Run the strategy's build computation and package the artifact."""
        if graph.directed:
            raise ValueError("distance oracles require an undirected graph")
        if self.jobs is not None:
            return parallel_build.build_parallel(
                graph, strategy=self.spec.name, epsilon=self.epsilon,
                k=self.k, jobs=self.jobs, pool=self.pool)
        start = time.perf_counter()
        build_fn = self.spec.resolve_build()
        arrays, rounds, detail, phases = build_fn(self, graph)
        seconds = time.perf_counter() - start
        record_build_phases(self.spec.name, phases)

        max_weight = graph.max_weight()
        guarantee = self.spec.guarantee(self.epsilon, max_weight, self.k)
        metadata: Dict[str, Any] = {
            "strategy": self.spec.name,
            "query_kind": self.spec.query_kind,
            "n": graph.n,
            "num_edges": graph.num_edges(),
            "epsilon": self.epsilon,
            "max_weight": max_weight,
            "stretch": guarantee.as_dict(),
            "build": {"rounds": rounds, "seconds": seconds,
                      "kernel": self.kernel or "auto",
                      "hot_primitives": list(self.spec.hot_primitives),
                      "mode": "simulated-clique",
                      "jobs": 1,
                      "phases": {name: round(value, 6)
                                 for name, value in phases.items()},
                      **detail},
        }
        artifact = OracleArtifact(metadata=metadata, arrays=arrays)
        artifact.validate()
        return artifact

    def build_sharded(self, graph: Graph, path, num_shards: int,
                      extra_metadata: Optional[Dict[str, Any]] = None):
        """Build and persist directly as a sharded artifact.

        Returns ``(artifact, manifest_path, shard_paths)``.  On the classic
        path the shard writer streams row slices (views) of the freshly
        built arrays to disk one shard at a time, so no second full copy of
        the payload is ever materialised.  With ``jobs=K`` the K workers
        write their shard files directly (no full payload in any process)
        and the returned artifact is the loaded
        :class:`~repro.oracle.sharding.ShardedOracleArtifact` — same
        metadata accessors, rows served from the maps.
        """
        if self.jobs is not None:
            manifest_path, shard_paths, _metadata = (
                parallel_build.build_sharded_parallel(
                    graph, path, num_shards, strategy=self.spec.name,
                    epsilon=self.epsilon, k=self.k, jobs=self.jobs,
                    pool=self.pool, extra_metadata=extra_metadata))
            artifact = sharding.load_artifact(manifest_path, verify="none")
            return artifact, manifest_path, shard_paths
        artifact = self.build(graph)
        if extra_metadata:
            artifact.metadata.update(extra_metadata)
        manifest_path, shard_paths = artifact.save_sharded(path, num_shards)
        return artifact, manifest_path, shard_paths

    def report(self, artifact) -> BuildReport:
        """Summarise a built artifact (round counts, stretch, detail).

        Accepts a monolithic :class:`OracleArtifact` or a loaded
        :class:`~repro.oracle.sharding.ShardedOracleArtifact` — both carry
        the same metadata schema.
        """
        build = artifact.metadata["build"]
        skip = ("rounds", "seconds", "jobs", "mode", "phases")
        detail = {k: v for k, v in build.items() if k not in skip}
        stretch = artifact.stretch
        return BuildReport(
            strategy=artifact.strategy,
            n=artifact.n,
            num_edges=int(artifact.metadata["num_edges"]),
            epsilon=artifact.epsilon,
            rounds=float(build["rounds"]),
            seconds=float(build["seconds"]),
            multiplicative_stretch=stretch.multiplicative,
            additive_stretch=stretch.additive,
            detail=detail,
            jobs=int(build.get("jobs", 1)),
            mode=str(build.get("mode", "simulated-clique")),
            phases={name: float(value)
                    for name, value in build.get("phases", {}).items()},
        )


def default_ball_size(builder: OracleBuilder, n: int) -> int:
    """Resolve and validate the builder's ball size (ceil(sqrt(n)) default)."""
    k = builder.k if builder.k is not None else max(
        2, min(n, math.ceil(math.sqrt(n))))
    if not 1 <= k <= n:
        raise ValueError(f"ball size k={k} out of range [1, {n}]")
    return k


def pack_balls(neighbors, n: int, k: int):
    """Pack per-node ``{u: (dist, hops)}`` dicts into padded ball arrays.

    Rows are sorted by ``(dist, hops, id)`` — the classic tie-break —
    truncated to ``k`` slots, and padded with ``-1`` / ``inf`` (which the
    query engine skips).
    """
    ball_idx = np.full((n, k), -1, dtype=np.int64)
    ball_dist = np.full((n, k), np.inf, dtype=np.float64)
    for v in range(n):
        entries = sorted(
            neighbors[v].items(), key=lambda kv: (kv[1][0], kv[1][1], kv[0])
        )[:k]
        for slot, (u, (dist, _hops)) in enumerate(entries):
            ball_idx[v, slot] = u
            ball_dist[v, slot] = dist
    return ball_idx, ball_dist


# ----------------------------------------------------------------------
# built-in build functions (referenced by dotted path from the registry)
# ----------------------------------------------------------------------
def build_dense_arrays(builder: OracleBuilder, graph: Graph):
    """``dense-apsp``: Theorem 28, one dense (2+ε, (1+ε)W) matrix."""
    tick = time.perf_counter()
    result = apsp_weighted(graph, epsilon=builder.epsilon)
    phases = {"apsp": time.perf_counter() - tick}
    arrays = {"dist": np.asarray(result.estimates, dtype=np.float64)}
    detail = {
        "variant": result.details.get("variant", "two_plus_eps"),
        "hitting_set_size": result.details.get("hitting_set_size"),
    }
    return arrays, result.rounds, detail, phases


def build_exact_arrays(builder: OracleBuilder, graph: Graph):
    """``exact-fallback``: exact APSP by iterated min-plus squaring."""
    tick = time.perf_counter()
    result = apsp_dense_mm(graph)
    phases = {"apsp": time.perf_counter() - tick}
    arrays = {"dist": np.asarray(result.estimates, dtype=np.float64)}
    detail = {"squarings": result.details["squarings"]}
    return arrays, result.rounds, detail, phases


def build_landmark_arrays(builder: OracleBuilder, graph: Graph):
    """``landmark-mssp``: balls + hitting-set landmarks + (1+ε) MSSP table."""
    n = graph.n
    k = default_ball_size(builder, n)
    clique = Clique(n)
    phases: Dict[str, float] = {}

    with clique.phase("oracle-build"):
        # Exact balls: every node's k nearest nodes (Theorem 18).
        tick = time.perf_counter()
        knn = k_nearest(graph, k, clique=clique, label="k-nearest",
                        kernel=builder.kernel)
        phases["k-nearest"] = time.perf_counter() - tick

        # Landmarks: a hitting set of the balls (Lemma 4), announced.
        tick = time.perf_counter()
        ball_sets = [knn.nearest_set(v) for v in range(n)]
        landmarks = greedy_hitting_set(ball_sets, n, clique=clique, label="hitting-set")
        clique.charge_broadcast(label="landmark-announce")
        phases["hitting-set"] = time.perf_counter() - tick

        # The (1 + eps) landmark table (Theorem 3; hopset built inside).
        tick = time.perf_counter()
        table = mssp(graph, landmarks, epsilon=builder.epsilon, clique=clique,
                     label="mssp-landmarks", kernel=builder.kernel)
        phases["mssp"] = time.perf_counter() - tick

    tick = time.perf_counter()
    ball_idx, ball_dist = pack_balls(knn.neighbors, n, k)
    phases["pack-balls"] = time.perf_counter() - tick

    arrays = {
        "landmarks": np.asarray(table.sources, dtype=np.int64),
        "landmark_dist": np.asarray(table.distances, dtype=np.float64),
        "ball_idx": ball_idx,
        "ball_dist": ball_dist,
    }
    detail = {
        "k": k,
        "num_landmarks": len(table.sources),
        "beta": table.details.get("beta"),
        "hopset_edges": table.details.get("hopset_edges"),
    }
    return arrays, clique.rounds, detail, phases


def build_oracle(
    graph: Graph,
    strategy: str = "landmark-mssp",
    epsilon: float = 0.5,
    k: Optional[int] = None,
    kernel: Optional[str] = None,
    jobs: Optional[int] = None,
) -> OracleArtifact:
    """One-call convenience wrapper around :class:`OracleBuilder`."""
    return OracleBuilder(strategy=strategy, epsilon=epsilon, k=k,
                         kernel=kernel, jobs=jobs).build(graph)
