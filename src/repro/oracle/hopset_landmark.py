"""``hopset-landmark``: hopset-accelerated exact landmark tables.

The hopset machinery of :mod:`repro.hopsets` (the paper's Section 4/5
(β, ε)-hopsets) already computes everything a Thorup–Zwick-style oracle
needs — exact k-nearest balls, a hitting set, per-node pivots — and its
edges H are *real path lengths* in G, so d_{G∪H} = d_G exactly.  This
strategy exploits both facts:

* **landmarks** are the hopset's hitting set; their distance table is
  computed by vectorised Bellman–Ford over the edges of G ∪ H run to
  convergence.  Because hopset edges shortcut long shortest paths, the
  iteration count collapses from the graph's hop diameter to roughly the
  hopset's β (recorded as ``bf_iterations`` in the build detail) — the
  hopset's honest role here is convergence acceleration, not
  approximation, so the table is **exact**.
* **balls** are the per-node bunches the hopset already derived:
  every k-nearest neighbour closer than the pivot, plus the pivot itself.
  Bunch distances come from the exact k-nearest computation.

Exact table + pivot argument ⇒ pure multiplicative stretch 3 (tighter
than ``landmark-mssp``'s 3(1 + ε)) with the same array schema, so the
engine serves it through the existing landmark kernels unchanged —
monolithic, sharded, and batched.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.cclique.accounting import Clique
from repro.graphs.graph import Graph
from repro.hopsets import build_hopset
from repro.oracle.build import default_ball_size


def union_edge_arrays(graph: Graph, hopset_edges):
    """Directed ``(src, dst, weight)`` arrays for every edge of G ∪ H."""
    src: List[int] = []
    dst: List[int] = []
    weight: List[float] = []
    for u in range(graph.n):
        for v, w in graph.neighbors(u).items():
            src.append(u)
            dst.append(v)
            weight.append(float(w))
    for u, v, w in hopset_edges:
        src.append(int(u))
        dst.append(int(v))
        weight.append(float(w))
        src.append(int(v))
        dst.append(int(u))
        weight.append(float(w))
    return (np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(weight, dtype=np.float64))


def landmark_table(graph: Graph, hopset_edges, landmarks: np.ndarray):
    """Exact distances from every landmark via Bellman–Ford over G ∪ H.

    Returns ``(table, iterations)`` with ``table`` shaped ``(n,
    len(landmarks))``.  Runs to a fixed point (capped at n iterations —
    non-negative weights converge in at most n − 1), so the result equals
    d_{G∪H} = d_G regardless of β; the hopset only shortens the run.
    """
    n = graph.n
    num_landmarks = len(landmarks)
    dist = np.full((num_landmarks, n), np.inf, dtype=np.float64)
    if num_landmarks:
        dist[np.arange(num_landmarks), landmarks] = 0.0
    src, dst, weight = union_edge_arrays(graph, hopset_edges)
    iterations = 0
    if src.size and num_landmarks:
        # Group candidate relaxations by destination once, then each
        # iteration is two vectorised passes: gather + segmented min.
        order = np.argsort(dst, kind="stable")
        src, dst, weight = src[order], dst[order], weight[order]
        targets, starts = np.unique(dst, return_index=True)
        for iterations in range(1, n + 1):
            candidates = dist[:, src] + weight
            relaxed = np.minimum.reduceat(candidates, starts, axis=1)
            new = dist.copy()
            new[:, targets] = np.minimum(new[:, targets], relaxed)
            if np.array_equal(new, dist):
                break
            dist = new
    return np.ascontiguousarray(dist.T), iterations


def build_hopset_landmark_arrays(builder, graph: Graph):
    """``hopset-landmark`` build fn: ``(arrays, rounds, detail, phases)``."""
    n = graph.n
    k = default_ball_size(builder, n)
    clique = Clique(n)
    phases: Dict[str, float] = {}

    with clique.phase("hopset-oracle-build"):
        tick = time.perf_counter()
        hopset = build_hopset(graph, epsilon=builder.epsilon, clique=clique,
                              k=k, label="oracle-hopset")
        clique.charge_broadcast(label="landmark-announce")
        phases["hopset"] = time.perf_counter() - tick

    landmarks = np.asarray(sorted(hopset.hitting_set), dtype=np.int64)

    tick = time.perf_counter()
    table, iterations = landmark_table(graph, hopset.edges, landmarks)
    phases["landmark-table"] = time.perf_counter() - tick

    # Balls are the hopset's bunches: k-nearest members strictly closer
    # than the pivot, plus the pivot itself (exact distances throughout).
    tick = time.perf_counter()
    knn = hopset.k_nearest_result
    pivots = hopset.pivots
    pivot_dist = hopset.pivot_distances
    bunches: List[Dict[int, float]] = []
    for v in range(n):
        bunch = {int(u): float(d)
                 for u, (d, _hops) in knn.neighbors[v].items()
                 if d < pivot_dist[v]}
        bunch[int(pivots[v])] = float(pivot_dist[v])
        bunch[v] = 0.0
        bunches.append(bunch)
    width = max(len(bunch) for bunch in bunches) if bunches else 1
    ball_idx = np.full((n, width), -1, dtype=np.int64)
    ball_dist = np.full((n, width), np.inf, dtype=np.float64)
    for v, bunch in enumerate(bunches):
        for slot, (u, d) in enumerate(
                sorted(bunch.items(), key=lambda kv: (kv[1], kv[0]))):
            ball_idx[v, slot] = u
            ball_dist[v, slot] = d
    phases["pack-balls"] = time.perf_counter() - tick

    arrays = {
        "landmarks": landmarks,
        "landmark_dist": table,
        "ball_idx": ball_idx,
        "ball_dist": ball_dist,
    }
    detail = {
        "k": k,
        "ball_width": width,
        "num_landmarks": int(len(landmarks)),
        "beta": hopset.beta,
        "hopset_edges": len(hopset.edges),
        "bf_iterations": iterations,
    }
    return arrays, clique.rounds, detail, phases
