"""The serve half of the oracle split: point, batch, and k-nearest queries.

:class:`QueryEngine` wraps a loaded
:class:`~repro.oracle.artifact.OracleArtifact` and answers distance
queries in microseconds.  All strategies share the same front end — an LRU
cache over normalised pairs, per-query latency recording, and a
``stats()`` snapshot — and differ only in the per-strategy kernels:

Which kernel family serves an artifact is the strategy's declared
``query_kind`` (:mod:`repro.oracle.strategies`), so registered strategies
plug in without touching this module:

* ``"dense"`` (dense-apsp / exact-fallback) — a single matrix lookup.
* ``"landmark"`` (landmark-mssp / hopset-landmark) — exact ball lookup
  for near pairs, otherwise the best landmark route
  ``min_a  d(u, a) + d(a, v)`` over the landmark table (a vectorised min
  over the landmark axis).
* ``"spanner"`` (spanner-greedy) — the landmark kernels plus a direct
  spanner-edge override: pairs joined by a spanner edge are answered with
  at most that edge's weight, read straight from the spanner CSR.

Both artifact representations are served behind the same front end: a
monolithic :class:`~repro.oracle.artifact.OracleArtifact` keeps its tables
fully resident, while a :class:`~repro.oracle.sharding.
ShardedOracleArtifact` stays memory-mapped — point queries read hot rows
through a bounded :class:`~repro.oracle.cache.RowBlockCache` and batch
misses gather directly from the mapped shards (one fancy-index per touched
shard, touching only the pages the requested rows live on).  The sharded
kernels compute the same float operations in the same order as the
monolithic ones, so answers are bit-identical between the two paths.

Estimates are always *overestimates* of the true distance (every stored
table is an overestimate and routes only compose them), so the engine's
answers inherit the artifact's advertised stretch guarantee unchanged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.obs.metrics import get_registry
from repro.oracle.artifact import OracleArtifact
from repro.oracle.cache import LatencyRecorder, LRUCache, RowBlockCache
from repro.oracle.sharding import ShardedOracleArtifact
from repro.oracle.strategies import get_strategy

#: Rows per cached block and blocks kept per sharded array — the hot-row
#: working set a sharded engine keeps resident (the serving registry's
#: cost model mirrors these numbers).
ROW_BLOCK_ROWS = 64
ROW_BLOCK_CAPACITY = 32


class QueryEngine:
    """Serve distance queries from a built oracle artifact.

    Parameters
    ----------
    artifact:
        A validated artifact: an in-memory
        :class:`~repro.oracle.build.OracleBuilder` /
        :meth:`~repro.oracle.artifact.OracleArtifact.load` result, or a
        memory-mapped :class:`~repro.oracle.sharding.ShardedOracleArtifact`.
    cache_size:
        Maximum number of cached point answers (0 disables caching).
    latency_window:
        How many recent per-query latencies feed the percentile stats.
    block_rows / block_capacity:
        Shape of the hot-row block cache used by the sharded kernels
        (ignored for monolithic artifacts).
    """

    def __init__(self, artifact: Union[OracleArtifact, ShardedOracleArtifact],
                 cache_size: int = 65536, latency_window: int = 65536,
                 block_rows: int = ROW_BLOCK_ROWS,
                 block_capacity: int = ROW_BLOCK_CAPACITY):
        artifact.validate()
        self.artifact = artifact
        self.n = artifact.n
        self.strategy = artifact.strategy
        self.cache = LRUCache(cache_size)
        self.latency = LatencyRecorder(latency_window)
        self._queries = 0
        self._batch_sizes: Dict[int, int] = {}
        self._block_caches: Dict[str, RowBlockCache] = {}
        self._sharded = isinstance(artifact, ShardedOracleArtifact)

        self.query_kind = get_strategy(self.strategy).query_kind
        if self._sharded:
            self._init_sharded(artifact, block_rows, block_capacity)
        elif self.query_kind == "dense":
            self._dist_matrix = np.asarray(artifact.arrays["dist"], dtype=np.float64)
            self._point = self._point_dense
            self._point_batch = self._point_batch_dense
            self._row = self._row_dense
        else:  # "landmark" and the "spanner" overlay on top of it
            self._landmark_dist = np.asarray(
                artifact.arrays["landmark_dist"], dtype=np.float64
            )
            # Balls as per-node dicts for O(1) near-pair lookups, plus the
            # reverse index (who has u in their ball) for row queries.
            ball_idx = np.asarray(artifact.arrays["ball_idx"])
            ball_dist = np.asarray(artifact.arrays["ball_dist"], dtype=np.float64)
            self._ball: List[Dict[int, float]] = [dict() for _ in range(self.n)]
            self._rev_ball: List[List[Tuple[int, float]]] = [[] for _ in range(self.n)]
            for v in range(self.n):
                for u, d in zip(ball_idx[v], ball_dist[v]):
                    if u < 0:
                        continue
                    u = int(u)
                    self._ball[v][u] = float(d)
                    self._rev_ball[u].append((v, float(d)))
            self._point = self._point_landmark
            self._point_batch = self._point_batch_landmark
            self._row = self._row_landmark
            if self.query_kind == "spanner":
                self._init_spanner_overlay(
                    lambda name: np.asarray(artifact.arrays[name]))
                self._point = self._point_spanner
                self._point_batch = self._point_batch_spanner
                self._row = self._row_spanner

        self._register_metrics()

    def _init_spanner_overlay(self, fetch) -> None:
        """Index the spanner CSR for the direct-edge override kernels.

        ``fetch(name)`` returns a common payload array — the in-memory
        dict for monolithic artifacts, :meth:`~repro.oracle.sharding.
        ShardedOracleArtifact.common` for sharded ones, so both paths
        index the *identical* bytes and stay bit-compatible.
        """
        self._csr_indptr = np.asarray(fetch("spanner_indptr"), dtype=np.int64)
        self._csr_indices = np.asarray(fetch("spanner_indices"), dtype=np.int64)
        self._csr_weights = np.asarray(fetch("spanner_weights"), dtype=np.float64)
        # Normalised-pair edge map: every query reaches the kernels with
        # u <= v, so one direction suffices for O(1) point overrides.
        self._edge_map: Dict[Tuple[int, int], float] = {}
        for u in range(self.n):
            for slot in range(int(self._csr_indptr[u]),
                              int(self._csr_indptr[u + 1])):
                v = int(self._csr_indices[slot])
                if u < v:
                    self._edge_map[(u, v)] = float(self._csr_weights[slot])

    def _register_metrics(self) -> None:
        """Expose engine state on the process registry via weakref callbacks.

        Every series reads the counters the hot paths already maintain
        (``self._queries``, the LRU hit/miss totals, shard-fault counts),
        so instrumentation adds zero work per query; the latency recorder
        is *attached*, not copied, so ``/metricsz`` sees the live window.
        """
        registry = get_registry()
        labels = {"strategy": self.strategy}
        registry.counter(
            "repro_engine_queries_total",
            "Point/batch/k-nearest queries answered by oracle engines",
            labels=labels,
        ).set_function(lambda e: e._queries, self)
        registry.counter(
            "repro_engine_cache_hits_total",
            "Answer-LRU hits", labels=labels,
        ).set_function(lambda e: e.cache.hits, self)
        registry.counter(
            "repro_engine_cache_misses_total",
            "Answer-LRU misses", labels=labels,
        ).set_function(lambda e: e.cache.misses, self)
        registry.counter(
            "repro_engine_shard_faults_total",
            "Shard open faults across sharded artifacts", labels=labels,
        ).set_function(lambda e: e.memory_stats()["shard_faults"], self)
        registry.gauge(
            "repro_engine_mapped_bytes",
            "Payload bytes memory-mapped (sharded artifacts)", labels=labels,
        ).set_function(lambda e: e.memory_stats()["mapped_bytes"], self)
        registry.gauge(
            "repro_engine_resident_bytes",
            "Payload bytes resident in memory", labels=labels,
        ).set_function(lambda e: e.memory_stats()["resident_bytes"], self)
        registry.counter(
            "repro_rowblock_cache_hits_total",
            "Hot-row block cache hits", labels=labels,
        ).set_function(
            lambda e: sum(c.hits for c in e._block_caches.values()), self)
        registry.counter(
            "repro_rowblock_cache_misses_total",
            "Hot-row block cache misses", labels=labels,
        ).set_function(
            lambda e: sum(c.misses for c in e._block_caches.values()), self)
        registry.gauge(
            "repro_rowblock_cache_bytes",
            "Bytes held by hot-row block caches", labels=labels,
        ).set_function(
            lambda e: sum(c.nbytes for c in e._block_caches.values()), self)
        registry.recorder(
            "repro_engine_latency_us",
            "Per-query engine latency", labels=labels,
        ).attach(self.latency)

    def _init_sharded(self, artifact: ShardedOracleArtifact, block_rows: int,
                      block_capacity: int) -> None:
        """Wire the zero-copy kernels: mapped shards + hot-row block caches."""
        def block_cache(name: str) -> RowBlockCache:
            cache = RowBlockCache(
                lambda start, stop, _name=name: artifact.rows(
                    _name, np.arange(start, stop, dtype=np.int64)),
                artifact.n, block_rows=block_rows, capacity=block_capacity,
            )
            self._block_caches[name] = cache
            return cache

        if self.query_kind == "dense":
            self._dist_rows = block_cache("dist")
            self._point = self._point_dense_sharded
            self._point_batch = self._point_batch_dense_sharded
            self._row = self._row_dense_sharded
        else:  # "landmark" and the "spanner" overlay on top of it
            self._num_landmarks = artifact.array_shape("landmark_dist")[1]
            self._ld_rows = block_cache("landmark_dist")
            self._ball_idx_rows = block_cache("ball_idx")
            self._ball_dist_rows = block_cache("ball_dist")
            self._point = self._point_landmark_sharded
            self._point_batch = self._point_batch_landmark_sharded
            self._row = self._row_landmark_sharded
            if self.query_kind == "spanner":
                self._init_spanner_overlay(artifact.common)
                self._point = self._point_spanner_sharded
                self._point_batch = self._point_batch_spanner_sharded
                self._row = self._row_spanner_sharded

    # ------------------------------------------------------------------
    # public query API
    # ------------------------------------------------------------------
    def dist(self, u: int, v: int) -> float:
        """Estimated distance between ``u`` and ``v`` (cached)."""
        started = time.perf_counter_ns()
        self._check_node(u)
        self._check_node(v)
        self._queries += 1
        if u == v:
            self.latency.record(time.perf_counter_ns() - started)
            return 0.0
        key = (u, v) if u < v else (v, u)
        value = self.cache.get(key)
        if value is LRUCache.MISS:
            value = self._point(key[0], key[1])
            self.cache.put(key, value)
        self.latency.record(time.perf_counter_ns() - started)
        return value

    def batch(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Estimated distances for many ``(u, v)`` pairs.

        Each pair goes through the same cache as :meth:`dist`, but all
        cache misses are resolved with one vectorised gather over the
        strategy's tables instead of a per-pair Python loop, so cold
        batches run at numpy speed and repeated batches over a working
        set are served at cache speed.  Results are identical to calling
        :meth:`dist` per pair.  Each pair contributes one latency sample
        equal to its amortised share of the batch — the batch path
        smooths the tail by construction, and the percentiles report
        that honestly.
        """
        started = time.perf_counter_ns()
        count = len(pairs)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        lo = np.empty(count, dtype=np.int64)
        hi = np.empty(count, dtype=np.int64)
        for index, (u, v) in enumerate(pairs):
            if u > v:
                u, v = v, u
            lo[index] = u
            hi[index] = v
        if int(lo.min()) < 0 or int(hi.max()) >= self.n:
            for u, v in pairs:
                self._check_node(u)
                self._check_node(v)
        self._queries += count
        bucket = 1 << (count - 1).bit_length()
        self._batch_sizes[bucket] = self._batch_sizes.get(bucket, 0) + 1

        out = self.batch_core(lo, hi)

        per_query = (time.perf_counter_ns() - started) // count
        self.latency.record_many(per_query, count)
        return out

    def batch_core(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """The synchronous batch kernel behind :meth:`batch`.

        Takes already-normalised pair arrays (``lo[i] <= hi[i]``, both in
        range) and resolves them through the cache plus one deduplicated
        vectorised gather: repeated pairs inside the batch are computed
        once and fanned out.  No validation, counters, or latency samples
        — callers such as :meth:`batch` and the serving layer
        (:mod:`repro.serve`) wrap this core with their own bookkeeping.
        """
        count = len(lo)
        out = np.zeros(count, dtype=np.float64)
        cache = self.cache
        miss_positions = []
        for index in range(count):
            low, high = int(lo[index]), int(hi[index])
            if low == high:
                continue
            value = cache.get((low, high))
            if value is LRUCache.MISS:
                miss_positions.append(index)
            else:
                out[index] = value
        if len(miss_positions) == 1:
            # Single-miss fast path: no dedup machinery for point lookups.
            index = miss_positions[0]
            low, high = int(lo[index]), int(hi[index])
            value = self._point(low, high)
            out[index] = value
            cache.put((low, high), value)
        elif miss_positions:
            miss = np.asarray(miss_positions, dtype=np.int64)
            miss_lo, miss_hi = lo[miss], hi[miss]
            # Deduplicate the gather: each distinct missing pair is
            # resolved once, then scattered to every occurrence.
            keys = miss_lo * np.int64(self.n) + miss_hi
            _, first, inverse = np.unique(keys, return_index=True,
                                          return_inverse=True)
            values = self._point_batch(miss_lo[first], miss_hi[first])
            out[miss] = values[inverse]
            for index, value in zip(first.tolist(), values.tolist()):
                cache.put((int(miss_lo[index]), int(miss_hi[index])), value)
        return out

    def k_nearest(self, u: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nodes with the smallest estimated distance from ``u``.

        Returns ``(node, distance)`` pairs sorted by (distance, node id);
        unreachable nodes are never reported, so fewer than ``k`` entries
        may come back on disconnected graphs.
        """
        started = time.perf_counter_ns()
        self._check_node(u)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._queries += 1
        row = self._row(u).copy()
        row[u] = np.inf  # a node is not its own neighbour
        order = np.lexsort((np.arange(self.n), row))
        result: List[Tuple[int, float]] = []
        for v in order[:k]:
            if not np.isfinite(row[v]):
                break
            result.append((int(v), float(row[v])))
        self.latency.record(time.perf_counter_ns() - started)
        return result

    def stats(self) -> Dict[str, object]:
        """Serving statistics: query counts, cache hit rate, latency.

        ``queries_total`` is a monotonic counter over every point, batch,
        and k-nearest query the engine has ever answered;
        ``batch_sizes`` is a histogram of :meth:`batch` call sizes keyed
        by the power-of-two bucket the size falls into (a batch of 100
        pairs lands in bucket ``"128"``).  Both exist so aggregators such
        as :class:`repro.serve.DistanceServer` can fold engine stats into
        their own without reaching for private attributes.
        """
        return {
            "strategy": self.strategy,
            "n": self.n,
            "queries": self._queries,
            "queries_total": self._queries,
            "batch_sizes": {str(bucket): count for bucket, count
                            in sorted(self._batch_sizes.items())},
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "cache_size": len(self.cache),
            "latency": self.latency.snapshot(),
            "memory": self.memory_stats(),
        }

    def memory_stats(self) -> Dict[str, object]:
        """Resident vs mapped payload bytes (plus shard-fault counters).

        For a monolithic artifact everything is resident and nothing is
        mapped; for a sharded artifact residency is the common arrays plus
        the hot-row block caches, while the full payload stays mapped on
        disk.  ``repro loadgen --report-residency`` and the serving
        registry's cost model both read this snapshot.
        """
        if self._sharded:
            artifact = self.artifact
            block_bytes = sum(cache.nbytes
                              for cache in self._block_caches.values())
            return {
                "sharded": True,
                "num_shards": artifact.num_shards,
                "shard_faults": artifact.faults,
                "mapped_bytes": artifact.mapped_bytes,
                "resident_bytes": artifact.resident_bytes() + block_bytes,
                "row_block_cache": {
                    "blocks": sum(len(cache)
                                  for cache in self._block_caches.values()),
                    "bytes": block_bytes,
                    "hits": sum(cache.hits
                                for cache in self._block_caches.values()),
                    "misses": sum(cache.misses
                                  for cache in self._block_caches.values()),
                },
            }
        resident = sum(np.asarray(array).nbytes
                       for array in self.artifact.arrays.values())
        return {"sharded": False, "num_shards": 1, "shard_faults": 0,
                "mapped_bytes": 0, "resident_bytes": resident}

    def clear_cache(self) -> None:
        """Drop cached answers (hit/miss counters are kept)."""
        self.cache.clear()

    def quarantine_rows(self, rows: Sequence[int]) -> List[int]:
        """Purge every cache that may hold data derived from ``rows``.

        Called by the serving layer when a gather touching ``rows``
        produced impossible distances (NaN/negative).  The answer LRU is
        cleared wholesale (its keys are pairs, not rows — there is no
        cheap way to tell which entries are tainted), the row-block
        caches drop only the blocks covering ``rows``, and — for sharded
        artifacts — each implicated shard is quarantined so its next
        open re-verifies the checksum.  Returns the quarantined shard
        indices (empty for monolithic artifacts, whose single payload
        was checksum-verified at load).
        """
        self.cache.clear()
        if not self._sharded:
            return []
        for cache in self._block_caches.values():
            cache.invalidate_rows(rows)
        row_array = np.asarray(list(rows), dtype=np.int64)
        if row_array.size == 0:
            return []
        shards = sorted(
            int(s) for s in np.unique(self.artifact.shard_of_rows(row_array)))
        for shard in shards:
            self.artifact.quarantine(shard)
        return shards

    # ------------------------------------------------------------------
    # strategy kernels
    # ------------------------------------------------------------------
    def _point_dense(self, u: int, v: int) -> float:
        return float(self._dist_matrix[u, v])

    def _point_batch_dense(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self._dist_matrix[us, vs]

    def _row_dense(self, u: int) -> np.ndarray:
        return self._dist_matrix[u]

    def _point_landmark(self, u: int, v: int) -> float:
        # Ball distances are exact and routes only compose overestimates,
        # so a ball hit can never be beaten by a landmark route.
        near = self._ball[u].get(v)
        if near is None:
            near = self._ball[v].get(u)
        if near is not None:
            return near
        return float(np.min(self._landmark_dist[u] + self._landmark_dist[v]))

    def _point_batch_landmark(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        # One gather over the (1 + ε) MSSP table resolves every pair's best
        # landmark route at once; the exact-ball overrides (a sparse O(1)
        # dict hit per pair) are applied on top, mirroring _point_landmark.
        count = len(us)
        out = np.empty(count, dtype=np.float64)
        chunk = max(1, (1 << 20) // max(1, self._landmark_dist.shape[1]))
        for start in range(0, count, chunk):
            stop = min(count, start + chunk)
            out[start:stop] = np.min(
                self._landmark_dist[us[start:stop]]
                + self._landmark_dist[vs[start:stop]],
                axis=1,
            )
        for index, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
            near = self._ball[u].get(v)
            if near is None:
                near = self._ball[v].get(u)
            if near is not None:
                out[index] = near
        return out

    def _row_landmark(self, u: int) -> np.ndarray:
        # Best landmark route to every node, then overlay the exact balls.
        row = np.min(self._landmark_dist + self._landmark_dist[u], axis=1)
        for v, d in self._ball[u].items():
            if d < row[v]:
                row[v] = d
        for v, d in self._rev_ball[u]:
            if d < row[v]:
                row[v] = d
        row[u] = 0.0
        return row

    # ------------------------------------------------------------------
    # spanner kernels: the landmark kernels plus a direct spanner-edge
    # override.  The override helpers are shared verbatim between the
    # monolithic and sharded variants, so the two paths stay bit-identical.
    # ------------------------------------------------------------------
    def _edge_override_point(self, u: int, v: int, value: float) -> float:
        direct = self._edge_map.get((u, v))
        if direct is not None and direct < value:
            return direct
        return value

    def _edge_override_batch(self, us: np.ndarray, vs: np.ndarray,
                             out: np.ndarray) -> np.ndarray:
        edge_map = self._edge_map
        for index, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
            direct = edge_map.get((u, v))
            if direct is not None and direct < out[index]:
                out[index] = direct
        return out

    def _edge_override_row(self, u: int, row: np.ndarray) -> np.ndarray:
        for slot in range(int(self._csr_indptr[u]),
                          int(self._csr_indptr[u + 1])):
            v = int(self._csr_indices[slot])
            w = float(self._csr_weights[slot])
            if w < row[v]:
                row[v] = w
        return row

    def _point_spanner(self, u: int, v: int) -> float:
        return self._edge_override_point(u, v, self._point_landmark(u, v))

    def _point_batch_spanner(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self._edge_override_batch(
            us, vs, self._point_batch_landmark(us, vs))

    def _row_spanner(self, u: int) -> np.ndarray:
        return self._edge_override_row(u, self._row_landmark(u))

    # ------------------------------------------------------------------
    # sharded (memory-mapped) strategy kernels — bit-identical siblings of
    # the in-memory kernels above
    # ------------------------------------------------------------------
    def _point_dense_sharded(self, u: int, v: int) -> float:
        return float(self._dist_rows.row(u)[v])

    def _point_batch_dense_sharded(self, us: np.ndarray,
                                   vs: np.ndarray) -> np.ndarray:
        # Elementwise gather straight off the shard maps: only the pages
        # holding the requested entries are ever faulted in.
        return self.artifact.gather("dist", us, vs)

    def _row_dense_sharded(self, u: int) -> np.ndarray:
        return self.artifact.row("dist", u)

    def _point_landmark_sharded(self, u: int, v: int) -> float:
        # Same probe order as _point_landmark: u's exact ball, then v's,
        # then the best landmark route.
        ball_u = self._ball_idx_rows.row(u)
        hit = np.nonzero(ball_u == v)[0]
        if hit.size:
            return float(self._ball_dist_rows.row(u)[hit[0]])
        ball_v = self._ball_idx_rows.row(v)
        hit = np.nonzero(ball_v == u)[0]
        if hit.size:
            return float(self._ball_dist_rows.row(v)[hit[0]])
        return float(np.min(self._ld_rows.row(u) + self._ld_rows.row(v)))

    def _point_batch_landmark_sharded(self, us: np.ndarray,
                                      vs: np.ndarray) -> np.ndarray:
        # Everything runs inside one ~1M-element chunk loop so transient
        # gathers stay bounded no matter the batch size — the sharded
        # path must not spike residency to answer a big batch.
        artifact = self.artifact
        count = len(us)
        out = np.empty(count, dtype=np.float64)
        chunk = max(1, (1 << 20) // max(1, self._num_landmarks))
        for start in range(0, count, chunk):
            stop = min(count, start + chunk)
            us_chunk, vs_chunk = us[start:stop], vs[start:stop]
            part = np.min(
                artifact.rows("landmark_dist", us_chunk)
                + artifact.rows("landmark_dist", vs_chunk),
                axis=1,
            )
            # Exact-ball overrides, u's ball first then v's, mirroring
            # _point_landmark / _point_batch_landmark.  Node ids are >= 0,
            # so the -1 ball padding can never match.
            match_u = artifact.rows("ball_idx", us_chunk) == vs_chunk[:, None]
            has_u = match_u.any(axis=1)
            if has_u.any():
                rows = np.nonzero(has_u)[0]
                ball_du = artifact.rows("ball_dist", us_chunk[rows])
                part[rows] = ball_du[np.arange(rows.size),
                                     np.argmax(match_u[rows], axis=1)]
            rest = np.nonzero(~has_u)[0]
            if rest.size:
                match_v = (artifact.rows("ball_idx", vs_chunk[rest])
                           == us_chunk[rest][:, None])
                has_v = np.nonzero(match_v.any(axis=1))[0]
                if has_v.size:
                    ball_dv = artifact.rows("ball_dist",
                                            vs_chunk[rest[has_v]])
                    part[rest[has_v]] = ball_dv[np.arange(has_v.size),
                                                np.argmax(match_v[has_v],
                                                          axis=1)]
            out[start:stop] = part
        return out

    def _row_landmark_sharded(self, u: int) -> np.ndarray:
        # A row query genuinely needs every node's best estimate, so it
        # scans all shards — but one shard at a time, never materialising
        # the full landmark table.
        artifact = self.artifact
        ld_u = np.asarray(self._ld_rows.row(u))
        row = np.empty(self.n, dtype=np.float64)
        for start, block in artifact.iter_shards("landmark_dist"):
            row[start:start + block.shape[0]] = np.min(block + ld_u, axis=1)
        ball_u = self._ball_idx_rows.row(u)
        dist_u = self._ball_dist_rows.row(u)
        for slot in range(len(ball_u)):
            v = int(ball_u[slot])
            if v >= 0 and dist_u[slot] < row[v]:
                row[v] = float(dist_u[slot])
        for index, (start, _stop) in enumerate(artifact.row_ranges):
            shard = artifact.open_shard(index)
            hit_rows, hit_slots = np.nonzero(shard["ball_idx"] == u)
            if hit_rows.size:
                exact = shard["ball_dist"][hit_rows, hit_slots]
                row[start + hit_rows] = np.minimum(row[start + hit_rows], exact)
        row[u] = 0.0
        return row

    def _point_spanner_sharded(self, u: int, v: int) -> float:
        return self._edge_override_point(
            u, v, self._point_landmark_sharded(u, v))

    def _point_batch_spanner_sharded(self, us: np.ndarray,
                                     vs: np.ndarray) -> np.ndarray:
        return self._edge_override_batch(
            us, vs, self._point_batch_landmark_sharded(us, vs))

    def _row_spanner_sharded(self, u: int) -> np.ndarray:
        return self._edge_override_row(u, self._row_landmark_sharded(u))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise ValueError(f"node {u} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryEngine(strategy={self.strategy!r}, n={self.n}, "
                f"queries={self._queries})")


def measure_throughput(engine: QueryEngine,
                       pairs: Sequence[Tuple[int, int]]) -> Dict[str, float]:
    """Time a cold pass then a cached pass of ``pairs`` through ``engine``.

    The shared measurement protocol behind ``repro oracle bench`` and the
    benchmark harness: the first pass populates the cache (``cold_qps``),
    the second replays the same working set (``cached_qps``).
    """
    if not pairs:
        raise ValueError("need at least one query pair to measure throughput")
    start = time.perf_counter()
    engine.batch(pairs)
    cold_qps = len(pairs) / max(1e-9, time.perf_counter() - start)
    start = time.perf_counter()
    engine.batch(pairs)
    cached_qps = len(pairs) / max(1e-9, time.perf_counter() - start)
    return {"cold_qps": cold_qps, "cached_qps": cached_qps}
