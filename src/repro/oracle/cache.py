"""Query-side caching and latency bookkeeping for the oracle engine.

Three small, dependency-free pieces:

* :class:`LRUCache` — a bounded least-recently-used map over query keys.
  Point queries on a warm oracle are dominated by Python dict overhead, so
  the cache is an ``OrderedDict`` moved-to-end on hit: O(1) per operation
  and fast enough for well over 10^5 queries/sec.
* :class:`RowBlockCache` — a bounded LRU of contiguous row *blocks* copied
  out of a larger (typically memory-mapped) table.  Point queries against
  a sharded artifact go through it so a Zipf-hot row costs one page fault
  ever, while total residency stays capped at ``capacity`` blocks.
* :class:`LatencyRecorder` — a bounded ring of per-query latencies (in
  nanoseconds) from which ``stats()`` derives P50/P95/P99.  Bounding the
  ring keeps a long-lived serving engine at O(1) memory no matter how many
  queries it has answered.  The implementation now lives in
  :mod:`repro.obs.metrics` (it gained ``merge()`` for cross-worker
  aggregation and backs the registry's recorder metric kind); it is
  re-exported here so every historical import site keeps working.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..obs.metrics import LatencyRecorder

__all__ = ["LRUCache", "LatencyRecorder", "RowBlockCache"]


class LRUCache:
    """A least-recently-used cache with hit/miss counters."""

    __slots__ = ("capacity", "hits", "misses", "_data")

    #: Sentinel distinguishing "missing" from a cached ``None``/``inf``.
    MISS = object()

    def __init__(self, capacity: int = 65536):
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Any:
        """Return the cached value or :data:`MISS`; counts the outcome."""
        if self.capacity == 0:
            self.misses += 1
            return self.MISS
        value = self._data.get(key, self.MISS)
        if value is self.MISS:
            self.misses += 1
        else:
            self.hits += 1
            self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RowBlockCache:
    """LRU of contiguous row blocks fetched on demand from a backing table.

    ``fetch(start, stop)`` must return rows ``[start, stop)`` as an
    in-memory array (for sharded artifacts that is one cross-shard gather).
    Rows are served as views into the cached block, so repeated hot-row
    accesses cost a dict hit, not a disk fault; at most ``capacity``
    blocks stay resident.
    """

    __slots__ = ("block_rows", "capacity", "total_rows", "hits", "misses",
                 "_fetch", "_blocks")

    def __init__(self, fetch: Callable[[int, int], Any], total_rows: int,
                 block_rows: int = 64, capacity: int = 32):
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._fetch = fetch
        self.total_rows = int(total_rows)
        self.block_rows = int(block_rows)
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._blocks: "OrderedDict[int, Any]" = OrderedDict()

    def row(self, index: int) -> Any:
        """Row ``index``, a view into the (possibly freshly fetched) block."""
        block_id = index // self.block_rows
        block = self._blocks.get(block_id)
        if block is None:
            self.misses += 1
            start = block_id * self.block_rows
            stop = min(start + self.block_rows, self.total_rows)
            block = self._fetch(start, stop)
            self._blocks[block_id] = block
            if len(self._blocks) > self.capacity:
                self._blocks.popitem(last=False)
        else:
            self.hits += 1
            self._blocks.move_to_end(block_id)
        return block[index - block_id * self.block_rows]

    @property
    def nbytes(self) -> int:
        return sum(block.nbytes for block in self._blocks.values())

    def invalidate_rows(self, rows) -> int:
        """Drop every cached block holding one of ``rows``.

        The surgical cousin of :meth:`clear`, used by the shard-integrity
        quarantine: when a shard's mapping is suspect, only the blocks
        copied out of it need to go — the rest of the hot set stays warm.
        Returns the number of blocks dropped.
        """
        dropped = 0
        for index in {int(row) // self.block_rows for row in rows}:
            if self._blocks.pop(index, None) is not None:
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)
