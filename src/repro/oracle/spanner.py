"""``spanner-greedy``: a first-class oracle strategy over a greedy spanner.

The paper's Section 1.1 (and Parter–Yogev, the PAPERS.md blueprint) trade
stretch for size: a (2k − 1)-spanner keeps O(n^{1+1/k}) edges.  This
module turns that trade into a servable artifact **without a dense
table**:

1. build the classic greedy (2k − 1)-spanner (Althöfer et al.; promoted
   here from ``repro.baselines.apsp_spanner``, which now delegates);
2. compute every node's ``ceil(sqrt(n))``-nearest ball *in the spanner
   metric* by truncated Dijkstra;
3. pick a greedy hitting set of those balls as landmarks and store each
   landmark's **exact** spanner distances to all nodes (one sparse
   Dijkstra per landmark).

The payload is the spanner CSR (common arrays, whole in shard 0) plus the
Õ(n^{3/2}) landmark table and ball rows (row-sharded) — asymptotically
the landmark-mssp footprint, never n².

Stretch is known a priori from ``k`` alone, which is what lets the
planner select this strategy before building: ball hits return exact
spanner distances (≤ (2k − 1)·d); for ``v`` outside ``u``'s ball the
hitting-set pivot satisfies d_S(u, p(u)) ≤ d_S(u, v), so the landmark
route is ≤ 3·d_S(u, v) ≤ 3(2k − 1)·d(u, v).  The query engine's
``spanner`` kernels additionally short-circuit pairs joined by a direct
spanner edge (the CSR is right there), which only tightens answers.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.cclique.accounting import Clique
from repro.distance.hitting_set import greedy_hitting_set
from repro.graphs.graph import Graph, INF
from repro.graphs.reference import dijkstra


def build_greedy_spanner(graph: Graph, k: int) -> Graph:
    """The greedy (2k − 1)-spanner of ``graph``.

    Edges are scanned in non-decreasing weight order and added whenever the
    current spanner distance between the endpoints exceeds (2k − 1) times
    the edge weight; the result has at most ``n^{1+1/k}`` edges (girth
    argument) and stretch at most ``2k − 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    spanner = Graph(graph.n, directed=False)
    stretch = 2 * k - 1
    edges = sorted(graph.edges(), key=lambda e: (e[2], e[0], e[1]))
    for u, v, w in edges:
        limit = stretch * w
        if bounded_distance(spanner, u, v, limit) > limit:
            spanner.add_edge(u, v, w)
    return spanner


def bounded_distance(graph: Graph, source: int, target: int,
                     limit: float) -> float:
    """Dijkstra from ``source`` pruned at ``limit`` (early exit on target)."""
    dist = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if u == target:
            return d
        if d > limit:
            return INF
        for v, w in graph.neighbors(u).items():
            nd = d + w
            if nd <= limit and nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist.get(target, INF)


def spanner_csr(spanner: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack the spanner adjacency as ``(indptr, indices, weights)`` CSR.

    Both directions of every undirected edge appear; neighbour columns are
    sorted, so the layout is a pure function of the edge set.
    """
    n = spanner.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices: List[int] = []
    weights: List[float] = []
    for u in range(n):
        neighbours = sorted(spanner.neighbors(u).items())
        indptr[u + 1] = indptr[u] + len(neighbours)
        for v, w in neighbours:
            indices.append(v)
            weights.append(float(w))
    return (indptr,
            np.asarray(indices, dtype=np.int64),
            np.asarray(weights, dtype=np.float64))


def nearest_in_spanner(spanner: Graph, source: int, count: int) -> Dict[int, float]:
    """The ``count`` nearest nodes to ``source`` in the spanner metric.

    Truncated Dijkstra: settles nodes in ``(distance, node id)`` order and
    stops after ``count`` of them, so the ball (which includes ``source``
    itself at distance 0) is deterministic under ties.
    """
    ball: Dict[int, float] = {}
    dist = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap and len(ball) < count:
        d, u = heapq.heappop(heap)
        if u in ball or d > dist.get(u, INF):
            continue
        ball[u] = d
        for v, w in spanner.neighbors(u).items():
            nd = d + w
            if v not in ball and nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return ball


def build_spanner_arrays(builder, graph: Graph):
    """``spanner-greedy`` build fn: ``(arrays, rounds, detail, phases)``.

    ``builder.k`` is the spanner parameter (default 2 → a 3-spanner with
    overall stretch 3(2k − 1) = 9); ball width is the usual
    ``ceil(sqrt(n))``.
    """
    n = graph.n
    stretch_k = 2 if builder.k is None else int(builder.k)
    if stretch_k < 1:
        raise ValueError(
            f"spanner parameter k={stretch_k} must be at least 1")
    ball_width = max(2, min(n, math.ceil(math.sqrt(n))))
    clique = Clique(n)
    phases: Dict[str, float] = {}

    with clique.phase("spanner-oracle-build"):
        tick = time.perf_counter()
        spanner = build_greedy_spanner(graph, stretch_k)
        spanner_edges = spanner.num_edges()
        # Round accounting mirrors the apsp_spanner baseline: a polylog
        # construction (Parter-Yogev) plus broadcasting all m' spanner
        # edges so every node can answer locally.
        clique.charge_rounds_formula(
            math.ceil(math.log2(max(2, n))), label="spanner-construction")
        clique.charge_routing(
            max(1, math.ceil(spanner_edges / max(1, n))) * n,
            max(1, math.ceil(spanner_edges / max(1, n))) * n,
            words_per_message=3,
            total_messages=spanner_edges * n,
            label="spanner-broadcast",
        )
        phases["spanner"] = time.perf_counter() - tick

        # Balls in the *spanner* metric — local computation once every
        # node holds the spanner, so only the hitting set costs rounds.
        tick = time.perf_counter()
        balls = [nearest_in_spanner(spanner, v, ball_width) for v in range(n)]
        phases["balls"] = time.perf_counter() - tick

        tick = time.perf_counter()
        ball_sets = [set(ball) for ball in balls]
        landmarks = greedy_hitting_set(ball_sets, n, clique=clique,
                                       label="hitting-set")
        clique.charge_broadcast(label="landmark-announce")
        phases["hitting-set"] = time.perf_counter() - tick

    # Exact spanner distances from every landmark (sparse Dijkstras) —
    # exactness here is what caps far-pair stretch at 3(2k-1).
    tick = time.perf_counter()
    landmark_ids = np.asarray(sorted(landmarks), dtype=np.int64)
    landmark_dist = np.empty((n, len(landmark_ids)), dtype=np.float64)
    for column, landmark in enumerate(landmark_ids.tolist()):
        landmark_dist[:, column] = dijkstra(spanner, landmark)
    phases["landmark-dist"] = time.perf_counter() - tick

    tick = time.perf_counter()
    ball_idx = np.full((n, ball_width), -1, dtype=np.int64)
    ball_dist = np.full((n, ball_width), np.inf, dtype=np.float64)
    for v in range(n):
        entries = sorted(balls[v].items(), key=lambda kv: (kv[1], kv[0]))
        for slot, (u, d) in enumerate(entries):
            ball_idx[v, slot] = u
            ball_dist[v, slot] = d
    indptr, indices, weights = spanner_csr(spanner)
    phases["pack"] = time.perf_counter() - tick

    arrays = {
        "spanner_indptr": indptr,
        "spanner_indices": indices,
        "spanner_weights": weights,
        "landmarks": landmark_ids,
        "landmark_dist": landmark_dist,
        "ball_idx": ball_idx,
        "ball_dist": ball_dist,
    }
    detail = {
        "k": stretch_k,
        "ball_width": ball_width,
        "num_landmarks": int(len(landmark_ids)),
        "spanner_edges": spanner_edges,
    }
    return arrays, clique.rounds, detail, phases
