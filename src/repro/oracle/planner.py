"""Stretch-budget fleet planner: pick the cheapest strategy mix a-priori.

Operators rarely ask for "a landmark oracle"; they ask for *answers within
2.5x under 200 MB of RAM*.  This module turns that request into a build
plan **before any build runs**, using only the declarative metadata every
registered :class:`~repro.oracle.strategies.StrategySpec` carries:

* ``guarantee_fn`` says which strategies are *admissible* for each
  requested :class:`~repro.serve.router.StretchBudget` (same
  ``budget_admits`` predicate the router applies at serve time, so the
  planner can never promise an artifact the router would refuse);
* ``estimate_fn`` prices each admissible strategy (payload floats, query
  cost, build cost) so the planner can reject candidates that bust the
  latency or resident-memory budgets and rank the survivors;
* payload size against ``shard_target_bytes`` decides whether the
  artifact is built monolithic or sharded, and with how many shards.

:func:`plan_fleet` produces a :class:`FleetPlan` — one
:class:`PlanChoice` per budget, deduplicated into a minimal build list.
:func:`execute_plan` runs those builds through the ordinary
:class:`~repro.oracle.build.OracleBuilder` (``jobs`` supported), registers
the artifacts, re-checks admissibility against the *actual* built
guarantees, and pins everything to a registry manifest that ``repro net
serve`` / ``repro serve`` boot unmodified.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.oracle.strategies import (
    CostEstimate,
    StrategyRegistry,
    StrategySpec,
    StretchGuarantee,
    REGISTRY,
)
from repro.serve.router import StretchBudget

__all__ = [
    "DEFAULT_SHARD_TARGET_BYTES",
    "FleetPlan",
    "PlanChoice",
    "PlanError",
    "parse_budget",
    "plan_fleet",
    "execute_plan",
]

#: Above this estimated payload size an artifact is built sharded, split
#: into roughly this many bytes per shard (4 MiB — small enough that a
#: serving worker's hot set is a handful of shards, large enough that
#: shard-count overhead stays trivial).
DEFAULT_SHARD_TARGET_BYTES = 4 * 1024 * 1024


class PlanError(ValueError):
    """No registered strategy can satisfy a requested budget."""


def parse_budget(text: str) -> StretchBudget:
    """Parse ``"mult"`` or ``"mult+add"`` into a :class:`StretchBudget`.

    ``"3"`` means stretch at most 3x with no additive slack;
    ``"2.5+13.5"`` additionally allows an absolute slack of 13.5;
    ``"inf"`` admits anything (the additive bound opens up too).
    """
    raw = text.strip()
    mult_text, sep, add_text = raw.partition("+")
    try:
        multiplicative = float(mult_text)
        if sep:
            additive = float(add_text)
        else:
            additive = math.inf if math.isinf(multiplicative) else 0.0
    except ValueError as exc:
        raise PlanError(
            f"unparseable stretch budget {text!r} (expected 'mult' or "
            f"'mult+add', e.g. '3' or '2.5+13.5')") from exc
    if multiplicative < 1.0:
        raise PlanError(
            f"stretch budget {text!r} has multiplicative < 1; estimates "
            f"can never undercut the true distance")
    if additive < 0.0:
        raise PlanError(f"stretch budget {text!r} has negative additive slack")
    return StretchBudget(multiplicative=multiplicative, additive=additive)


@dataclasses.dataclass(frozen=True)
class PlanChoice:
    """The planner's pick for one stretch budget."""

    budget: StretchBudget
    strategy: str
    guarantee: StretchGuarantee
    estimate: CostEstimate
    num_shards: int

    @property
    def sharded(self) -> bool:
        return self.num_shards > 1

    def describe(self) -> str:
        budget = f"<= {self.budget.multiplicative:g}x"
        if self.budget.additive not in (0.0, math.inf):
            budget += f"+{self.budget.additive:g}"
        guarantee = f"{self.guarantee.multiplicative:g}x"
        if self.guarantee.additive:
            guarantee += f"+{self.guarantee.additive:g}"
        layout = (f"{self.num_shards} shards" if self.sharded else "monolithic")
        return (f"budget {budget}: {self.strategy} (guarantee {guarantee}, "
                f"~{self.estimate.payload_bytes / 1e6:.2f} MB, {layout}, "
                f"query cost {self.estimate.query_cost:g})")


@dataclasses.dataclass(frozen=True)
class FleetPlan:
    """One :class:`PlanChoice` per requested budget, plus the graph shape.

    ``builds()`` deduplicates the choices into the minimal list of
    ``(strategy, num_shards)`` builds — two budgets served by the same
    strategy share one artifact.
    """

    n: int
    m: int
    max_weight: float
    epsilon: float
    choices: Tuple[PlanChoice, ...]

    def builds(self) -> Tuple[Tuple[str, int], ...]:
        seen: Dict[Tuple[str, int], None] = {}
        for choice in self.choices:
            seen.setdefault((choice.strategy, choice.num_shards))
        return tuple(seen)

    def summary(self) -> str:
        lines = [
            f"fleet plan for n={self.n} m={self.m} "
            f"max_weight={self.max_weight:g} epsilon={self.epsilon:g}:"
        ]
        lines.extend("  " + choice.describe() for choice in self.choices)
        builds = ", ".join(
            f"{strategy}{'' if shards == 1 else f' x{shards} shards'}"
            for strategy, shards in self.builds())
        lines.append(f"  builds: {builds}")
        return "\n".join(lines)


def _shard_count(payload_bytes: float, shard_target_bytes: float,
                 n: int) -> int:
    if payload_bytes <= shard_target_bytes:
        return 1
    return max(1, min(n, math.ceil(payload_bytes / shard_target_bytes)))


def _resident_floats(estimate: CostEstimate, n: int, sharded: bool) -> float:
    """Mirror of ``StrategySpec.serving_costs`` on a-priori estimates."""
    if not sharded:
        return estimate.payload_floats
    from repro.oracle.engine import ROW_BLOCK_CAPACITY, ROW_BLOCK_ROWS
    hot_rows = min(n, ROW_BLOCK_ROWS * ROW_BLOCK_CAPACITY)
    return hot_rows * estimate.row_width + estimate.common_floats


def plan_fleet(
    graph=None,
    *,
    n: Optional[int] = None,
    m: Optional[int] = None,
    max_weight: Optional[float] = None,
    budgets: Sequence[StretchBudget],
    epsilon: float = 0.5,
    max_query_cost: float = math.inf,
    max_resident_floats: float = math.inf,
    shard_target_bytes: float = DEFAULT_SHARD_TARGET_BYTES,
    registry: StrategyRegistry = REGISTRY,
) -> FleetPlan:
    """Choose the cheapest admissible strategy for every budget.

    Pass either ``graph`` (shape is derived) or explicit ``n``/``m``/
    ``max_weight`` — the planner never needs edges, only the shape, so a
    fleet can be planned for a graph that does not exist yet.

    For each budget the registry is enumerated in registration order; a
    strategy is *feasible* when its a-priori guarantee fits the budget,
    its estimated per-query work fits ``max_query_cost``, and its
    estimated resident set (sharded when the payload exceeds
    ``shard_target_bytes``) fits ``max_resident_floats``.  Among feasible
    strategies the planner picks the smallest artifact, breaking ties by
    build cost, then query cost, then name.  An unsatisfiable budget
    raises :class:`PlanError` naming every rejection reason.
    """
    if graph is not None:
        n = graph.n
        m = graph.num_edges()
        max_weight = graph.max_weight()
    if n is None or m is None or max_weight is None:
        raise PlanError(
            "plan_fleet needs either a graph or explicit n, m and max_weight")
    if not budgets:
        raise PlanError("plan_fleet needs at least one stretch budget")

    choices: List[PlanChoice] = []
    for budget in budgets:
        feasible: List[Tuple[Tuple[float, float, float, str], PlanChoice]] = []
        rejections: List[str] = []
        for spec in registry.specs():
            guarantee = spec.guarantee(epsilon, max_weight)
            if not budget.admits(guarantee):
                rejections.append(
                    f"{spec.name}: guarantee {guarantee.multiplicative:g}x"
                    f"+{guarantee.additive:g} exceeds the budget")
                continue
            estimate = spec.estimate(n, m, epsilon)
            num_shards = _shard_count(
                estimate.payload_bytes, shard_target_bytes, n)
            resident = _resident_floats(estimate, n, num_shards > 1)
            if estimate.query_cost > max_query_cost:
                rejections.append(
                    f"{spec.name}: query cost {estimate.query_cost:g} "
                    f"exceeds max_query_cost={max_query_cost:g}")
                continue
            if resident > max_resident_floats:
                rejections.append(
                    f"{spec.name}: resident set ~{resident:g} floats "
                    f"exceeds max_resident_floats={max_resident_floats:g}")
                continue
            choice = PlanChoice(budget=budget, strategy=spec.name,
                                guarantee=guarantee, estimate=estimate,
                                num_shards=num_shards)
            key = (estimate.payload_floats, estimate.build_cost,
                   estimate.query_cost, spec.name)
            feasible.append((key, choice))
        if not feasible:
            detail = "; ".join(rejections) or "registry is empty"
            raise PlanError(
                f"no registered strategy satisfies budget "
                f"{budget.multiplicative:g}x+{budget.additive:g} "
                f"(n={n}, epsilon={epsilon:g}): {detail}")
        choices.append(min(feasible, key=lambda item: item[0])[1])

    return FleetPlan(n=int(n), m=int(m), max_weight=float(max_weight),
                     epsilon=float(epsilon), choices=tuple(choices))


@dataclasses.dataclass(frozen=True)
class FleetExecution:
    """The artifacts a plan produced, pinned to a bootable manifest."""

    plan: FleetPlan
    manifest_path: Path
    #: Artifact name per ``(strategy, num_shards)`` build.
    artifact_names: Dict[Tuple[str, int], str]

    def artifact_for(self, choice: PlanChoice) -> str:
        return self.artifact_names[(choice.strategy, choice.num_shards)]


def execute_plan(plan: FleetPlan, graph, out_dir,
                 jobs: Optional[int] = None) -> FleetExecution:
    """Build every artifact the plan calls for and pin a registry manifest.

    Builds run through the standard :class:`~repro.oracle.build.
    OracleBuilder` (parallel when ``jobs`` is given), so planner-built
    artifacts are byte-identical to hand-built ones.  After each build the
    *actual* artifact guarantee is re-checked against every budget that
    selected it — a defensive fence so an estimator bug can never ship an
    inadmissible artifact silently.  Returns a :class:`FleetExecution`
    whose ``manifest_path`` boots through ``build_registry`` / ``repro net
    serve`` unmodified.
    """
    from repro.oracle.build import OracleBuilder
    from repro.serve.registry import ArtifactRegistry

    if graph.n != plan.n:
        raise PlanError(
            f"plan was made for n={plan.n} but the graph has n={graph.n}")

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = ArtifactRegistry()
    names: Dict[Tuple[str, int], str] = {}
    for strategy, num_shards in plan.builds():
        builder = OracleBuilder(strategy=strategy, epsilon=plan.epsilon,
                                jobs=jobs)
        base = out_dir / strategy
        if num_shards > 1:
            _artifact, manifest_path, _shards = builder.build_sharded(
                graph, base, num_shards)
            entry = registry.register(manifest_path, name=strategy)
        else:
            artifact = builder.build(graph)
            payload_path, _sidecar = artifact.save(base)
            entry = registry.register(payload_path, name=strategy)
        names[(strategy, num_shards)] = entry.name
        for choice in plan.choices:
            if choice.strategy != strategy:
                continue
            if not choice.budget.admits(entry.stretch):
                raise PlanError(
                    f"built artifact {entry.name!r} advertises "
                    f"{entry.stretch.multiplicative:g}x"
                    f"+{entry.stretch.additive:g}, which misses the budget "
                    f"{choice.budget.multiplicative:g}x that selected it "
                    f"(estimator drift — fix the strategy's guarantee_fn)")
    manifest_path = registry.write_manifest(out_dir / "fleet.json")
    return FleetExecution(plan=plan, manifest_path=manifest_path,
                          artifact_names=names)
