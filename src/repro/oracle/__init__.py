"""Distance-oracle subsystem: build once, persist, query many times.

The headline algorithms in :mod:`repro.core` are one-shot Congested Clique
computations.  This package turns them into a *distance oracle* with the
build/serve split used by production shortest-path systems:

* :mod:`repro.oracle.strategies` — the pluggable :class:`StrategyRegistry`
  of build strategies (``dense-apsp``, ``landmark-mssp``,
  ``exact-fallback``, ``spanner-greedy``, ``hopset-landmark``), each a
  declarative :class:`StrategySpec` with build fn, stretch guarantee and
  cost estimators.
* :mod:`repro.oracle.build` — :class:`OracleBuilder` dispatches through
  the registry and records the simulated build rounds and the stretch
  guarantee.
* :mod:`repro.oracle.planner` — :func:`plan_fleet` / :func:`execute_plan`
  turn stretch/latency/memory budgets into a built, bootable artifact
  fleet.
* :mod:`repro.oracle.artifact` — :class:`OracleArtifact`, a versioned
  on-disk format (compressed ``.npz`` payload + JSON metadata sidecar with
  a payload checksum) that round-trips through ``save``/``load``.
* :mod:`repro.oracle.engine` — :class:`QueryEngine` serving ``dist``,
  ``batch`` and ``k_nearest`` queries with an LRU cache and latency
  percentiles via ``stats()``.

Quick start::

    from repro import graphs
    from repro.oracle import build_oracle, OracleArtifact, QueryEngine

    g = graphs.random_weighted_graph(96, average_degree=8, seed=0)
    artifact = build_oracle(g, strategy="landmark-mssp", epsilon=0.5)
    artifact.save("oracle.npz")

    engine = QueryEngine(OracleArtifact.load("oracle.npz"))
    print(engine.dist(0, 42), engine.stats()["latency"]["p50_us"])
"""

from repro.oracle.artifact import (
    FORMAT_VERSION,
    ArtifactError,
    OracleArtifact,
    artifact_paths,
)
from repro.oracle.build import BuildReport, OracleBuilder, build_oracle
from repro.oracle.cache import LatencyRecorder, LRUCache, RowBlockCache
from repro.oracle.engine import QueryEngine, measure_throughput
from repro.oracle.sharding import (
    SHARD_MANIFEST_SUFFIX,
    SHARD_MANIFEST_VERSION,
    ShardedOracleArtifact,
    load_artifact,
    shard_artifact,
    shard_manifest_path,
    write_sharded_artifact,
)
from repro.oracle.strategies import (
    QUERY_KINDS,
    REGISTRY,
    STRATEGY_NAMES,
    CostEstimate,
    StrategyRegistry,
    StrategySpec,
    StretchGuarantee,
    get_strategy,
    register_strategy,
)
from repro.oracle.planner import (
    FleetPlan,
    PlanChoice,
    PlanError,
    execute_plan,
    parse_budget,
    plan_fleet,
)

__all__ = [
    "ArtifactError",
    "BuildReport",
    "CostEstimate",
    "FORMAT_VERSION",
    "FleetPlan",
    "LRUCache",
    "LatencyRecorder",
    "OracleArtifact",
    "OracleBuilder",
    "PlanChoice",
    "PlanError",
    "QUERY_KINDS",
    "QueryEngine",
    "REGISTRY",
    "RowBlockCache",
    "SHARD_MANIFEST_SUFFIX",
    "SHARD_MANIFEST_VERSION",
    "STRATEGY_NAMES",
    "ShardedOracleArtifact",
    "StrategyRegistry",
    "StrategySpec",
    "StretchGuarantee",
    "artifact_paths",
    "build_oracle",
    "execute_plan",
    "get_strategy",
    "load_artifact",
    "measure_throughput",
    "parse_budget",
    "plan_fleet",
    "register_strategy",
    "shard_artifact",
    "shard_manifest_path",
    "write_sharded_artifact",
]
