"""Versioned on-disk format for distance-oracle artifacts.

An artifact is a pair of files living next to each other:

* ``<name>.npz`` — the numeric payload (compressed numpy archive); which
  arrays it contains depends on the strategy (see
  :mod:`repro.oracle.strategies`).
* ``<name>.meta.json`` — a small JSON sidecar with everything needed to
  interpret the payload: format version, strategy, graph shape, epsilon,
  the advertised stretch guarantee, build provenance (simulated rounds,
  wall-clock seconds), and a SHA-256 checksum of the payload so corruption
  is detected at load time instead of surfacing as wrong distances.

The split keeps the metadata greppable/human-readable while the bulk data
stays binary and compressed.  ``save``/``load`` round-trip exactly; loading
verifies the version, the checksum, and the per-strategy array schema.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

from repro.oracle.strategies import StretchGuarantee, get_strategy

PathLike = Union[str, Path]

#: Bump on any incompatible payload/sidecar change.
FORMAT_VERSION = 1

#: Sidecar suffix replacing the payload's ``.npz``.
META_SUFFIX = ".meta.json"


class ArtifactError(RuntimeError):
    """Raised for unreadable, corrupt, or incompatible artifacts."""


def artifact_paths(path: PathLike) -> Tuple[Path, Path]:
    """Normalise ``path`` to the ``(payload, sidecar)`` file pair.

    ``path`` may be given with or without the ``.npz`` extension.
    """
    payload = Path(path)
    if payload.suffix != ".npz":
        payload = payload.with_name(payload.name + ".npz")
    sidecar = payload.with_name(payload.name[: -len(".npz")] + META_SUFFIX)
    return payload, sidecar


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclasses.dataclass
class OracleArtifact:
    """A built oracle: JSON-able metadata plus named numpy arrays.

    The metadata dictionary always contains ``format_version``,
    ``strategy``, ``n``, ``num_edges``, ``epsilon``, ``max_weight``,
    ``stretch`` (multiplicative/additive) and ``build`` (rounds, seconds,
    plus strategy-specific detail such as the landmark count).
    """

    metadata: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        return str(self.metadata["strategy"])

    @property
    def n(self) -> int:
        return int(self.metadata["n"])

    @property
    def epsilon(self) -> float:
        return float(self.metadata["epsilon"])

    @property
    def stretch(self) -> StretchGuarantee:
        return StretchGuarantee.from_dict(self.metadata["stretch"])

    @property
    def query_kind(self) -> str:
        """Engine kernel family serving this payload (sidecar-recorded;
        falls back to the registered spec for pre-PR10 artifacts)."""
        kind = self.metadata.get("query_kind")
        if kind is not None:
            return str(kind)
        return get_strategy(self.strategy).query_kind

    @property
    def build_rounds(self) -> float:
        return float(self.metadata["build"]["rounds"])

    def validate(self) -> None:
        """Check the payload matches the strategy's array schema."""
        spec = get_strategy(self.strategy)
        missing = [name for name in spec.required_arrays if name not in self.arrays]
        if missing:
            raise ArtifactError(
                f"artifact for strategy {self.strategy!r} is missing payload "
                f"arrays {missing}; present: {sorted(self.arrays)}"
            )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Tuple[Path, Path]:
        """Write the artifact; returns the ``(payload, sidecar)`` paths."""
        self.validate()
        payload_path, sidecar_path = artifact_paths(path)
        payload_path.parent.mkdir(parents=True, exist_ok=True)

        buffer = io.BytesIO()
        np.savez_compressed(buffer, **self.arrays)
        payload_bytes = buffer.getvalue()
        payload_path.write_bytes(payload_bytes)

        sidecar = dict(self.metadata)
        sidecar["format_version"] = FORMAT_VERSION
        sidecar["payload_sha256"] = _sha256(payload_bytes)
        sidecar["payload_arrays"] = sorted(self.arrays)
        sidecar_path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
        return payload_path, sidecar_path

    def save_sharded(self, path: PathLike, num_shards: int):
        """Write the artifact as row shards plus a manifest.

        Returns ``(manifest_path, shard_paths)``.  See
        :mod:`repro.oracle.sharding` for the format; the written shards are
        memory-mappable, so a :class:`~repro.oracle.sharding.
        ShardedOracleArtifact` loaded from them serves queries without ever
        reading the full payload.
        """
        from repro.oracle.sharding import write_sharded_artifact

        self.validate()
        return write_sharded_artifact(self.metadata, self.arrays, path, num_shards)

    @classmethod
    def load(cls, path: PathLike) -> "OracleArtifact":
        """Load and verify an artifact saved with :meth:`save`."""
        payload_path, sidecar_path = artifact_paths(path)
        if not payload_path.exists():
            raise ArtifactError(f"oracle artifact not found: {payload_path}")
        if not sidecar_path.exists():
            raise ArtifactError(
                f"metadata sidecar not found: {sidecar_path} "
                f"(expected next to {payload_path.name})"
            )

        try:
            metadata = json.loads(sidecar_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"unparseable metadata sidecar {sidecar_path}: {exc}") from exc

        version = metadata.get("format_version")
        if version != FORMAT_VERSION:
            raise ArtifactError(
                f"artifact {payload_path} has format_version={version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )

        payload_bytes = payload_path.read_bytes()
        expected = metadata.get("payload_sha256")
        if not expected:
            raise ArtifactError(
                f"metadata sidecar {sidecar_path} has no payload_sha256; "
                "refusing to load an unverifiable payload"
            )
        if _sha256(payload_bytes) != expected:
            raise ArtifactError(
                f"payload checksum mismatch for {payload_path}: the .npz file "
                "does not match its sidecar (corrupt or partially written)"
            )

        with np.load(io.BytesIO(payload_bytes)) as archive:
            arrays = {name: archive[name] for name in archive.files}

        artifact = cls(metadata=metadata, arrays=arrays)
        artifact.validate()
        return artifact
