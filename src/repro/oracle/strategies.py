"""Strategy registry for the distance-oracle subsystem.

A *strategy* names one way of turning the paper's one-shot Congested Clique
computations into a persistent, queryable artifact:

* ``dense-apsp`` — run the (2 + ε, (1 + ε)W)-approximate weighted APSP of
  Theorem 28 once and store the full n×n estimate matrix.  Queries are a
  single matrix lookup; the artifact is O(n²) floats.
* ``landmark-mssp`` — the compact oracle: compute every node's √n-nearest
  ball exactly (Theorem 18), pick a hitting set A of those balls (Lemma 4)
  as landmarks, and run (1 + ε)-approximate MSSP from A (Theorem 3).  The
  artifact stores the balls plus the n×|A| landmark table — Õ(n^{3/2})
  numbers instead of n².  Near pairs (inside a ball) are answered exactly;
  far pairs are routed through landmarks with stretch at most 3(1 + ε),
  by the Section 6.1 pivot argument.
* ``exact-fallback`` — exact APSP by iterated dense min-plus squaring
  (the Censor-Hillel et al. 2015 baseline).  Expensive to build
  (Õ(n^{1/3}) simulated rounds) but answers are exact; the comparator the
  approximate strategies are validated against.

:class:`StrategySpec` records, per strategy, the guarantee the built
artifact advertises; the tests and the query engine both read the guarantee
from the artifact metadata rather than hard-coding it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: Canonical strategy names, in the order the CLI lists them.
STRATEGY_NAMES: Tuple[str, ...] = ("dense-apsp", "landmark-mssp", "exact-fallback")


@dataclasses.dataclass(frozen=True)
class StretchGuarantee:
    """The advertised accuracy of an oracle artifact.

    An estimate ``est`` for a pair at true distance ``d`` satisfies

        ``d <= est <= multiplicative * d + additive``

    where ``additive`` is an absolute term fixed at build time (for
    ``dense-apsp`` it is (1 + ε)·W with ``W`` the maximum edge weight, the
    paper's additive (1 + ε)W term evaluated at its worst case).
    """

    multiplicative: float
    additive: float = 0.0

    def upper_bound(self, exact: float) -> float:
        """The largest estimate the guarantee permits for ``exact``."""
        return self.multiplicative * exact + self.additive

    def as_dict(self) -> Dict[str, float]:
        return {"multiplicative": self.multiplicative, "additive": self.additive}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StretchGuarantee":
        return cls(
            multiplicative=float(data["multiplicative"]),
            additive=float(data.get("additive", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """Static description of one oracle strategy."""

    name: str
    #: Arrays the artifact payload must contain for this strategy.
    required_arrays: Tuple[str, ...]
    #: Human-readable summary shown by ``repro oracle build``.
    summary: str
    #: Whether the guarantee depends on epsilon (exact strategies do not).
    uses_epsilon: bool = True
    #: The matrix primitives that dominate this strategy's build time —
    #: the ones the kernel layer (``repro.matmul.kernels``) accelerates and
    #: ``bench_primitives.py`` tracks in BENCH_PR2.json.  Recorded in the
    #: artifact build metadata so a slow build can be matched to the
    #: benchmark trajectory of the primitive that caused it.
    hot_primitives: Tuple[str, ...] = ()
    #: Payload arrays whose leading axis is the node axis — the ones the
    #: sharded artifact format (:mod:`repro.oracle.sharding`) splits into
    #: per-node-range shard files.  Everything else (e.g. the landmark id
    #: vector) is small and travels whole inside shard 0.
    row_sharded_arrays: Tuple[str, ...] = ()

    def guarantee(self, epsilon: float, max_weight: float) -> StretchGuarantee:
        """The stretch guarantee a fresh build with these parameters carries."""
        if self.name == "dense-apsp":
            return StretchGuarantee(2.0 + epsilon, (1.0 + epsilon) * max_weight)
        if self.name == "landmark-mssp":
            # Far pairs: est <= (1+eps)(d(u,p(u)) + d(p(u),v)) <= 3(1+eps)d;
            # near pairs are exact, so 3(1+eps) dominates.
            return StretchGuarantee(3.0 * (1.0 + epsilon), 0.0)
        if self.name == "exact-fallback":
            return StretchGuarantee(1.0, 0.0)
        raise ValueError(f"unknown strategy: {self.name!r}")


_SPECS: Dict[str, StrategySpec] = {
    "dense-apsp": StrategySpec(
        name="dense-apsp",
        required_arrays=("dist",),
        summary="Theorem 28 (2+eps,(1+eps)W)-APSP, dense n x n estimate matrix",
        hot_primitives=("filtered_product", "minplus_product"),
        row_sharded_arrays=("dist",),
    ),
    "landmark-mssp": StrategySpec(
        name="landmark-mssp",
        required_arrays=("landmarks", "landmark_dist", "ball_idx", "ball_dist"),
        summary="hitting-set landmarks + (1+eps)-MSSP table + exact sqrt(n)-balls",
        hot_primitives=("filtered_product", "augmented_product"),
        row_sharded_arrays=("landmark_dist", "ball_idx", "ball_dist"),
    ),
    "exact-fallback": StrategySpec(
        name="exact-fallback",
        required_arrays=("dist",),
        summary="exact APSP via iterated dense min-plus squaring (baseline)",
        uses_epsilon=False,
        hot_primitives=("minplus_product",),
        row_sharded_arrays=("dist",),
    ),
}


def get_strategy(name: str) -> StrategySpec:
    """Look up a strategy spec; raises ``ValueError`` with the known names."""
    spec = _SPECS.get(name)
    if spec is None:
        known = ", ".join(STRATEGY_NAMES)
        raise ValueError(f"unknown oracle strategy {name!r}; known strategies: {known}")
    return spec
