"""Strategy registry for the distance-oracle subsystem.

A *strategy* names one way of turning the paper's one-shot Congested Clique
computations into a persistent, queryable artifact:

* ``dense-apsp`` — run the (2 + ε, (1 + ε)W)-approximate weighted APSP of
  Theorem 28 once and store the full n×n estimate matrix.  Queries are a
  single matrix lookup; the artifact is O(n²) floats.
* ``landmark-mssp`` — the compact oracle: compute every node's √n-nearest
  ball exactly (Theorem 18), pick a hitting set A of those balls (Lemma 4)
  as landmarks, and run (1 + ε)-approximate MSSP from A (Theorem 3).  The
  artifact stores the balls plus the n×|A| landmark table — Õ(n^{3/2})
  numbers instead of n².  Near pairs (inside a ball) are answered exactly;
  far pairs are routed through landmarks with stretch at most 3(1 + ε),
  by the Section 6.1 pivot argument.
* ``spanner-greedy`` — keep only a greedy (2k − 1)-spanner of the graph
  (Althöfer; the Section 1.1 / Parter–Yogev trade-off) and answer from
  spanner-metric balls + hitting-set landmarks with exact spanner
  distances.  The artifact is the spanner CSR plus Õ(n^{3/2}) landmark /
  ball rows — no dense table anywhere — at stretch 3(2k − 1).
* ``hopset-landmark`` — landmark tables accelerated by a hopset
  (:mod:`repro.hopsets`): Bellman–Ford from the hitting-set landmarks
  over G ∪ H converges in few iterations because the hopset shortcuts
  long paths, and the resulting table is *exact* (hopset edges are real
  path lengths), so far pairs carry pure pivot stretch 3.
* ``exact-fallback`` — exact APSP by iterated dense min-plus squaring
  (the Censor-Hillel et al. 2015 baseline).  Expensive to build
  (Õ(n^{1/3}) simulated rounds) but answers are exact; the comparator the
  approximate strategies are validated against.

Strategies are held in a :class:`StrategyRegistry`.  Each
:class:`StrategySpec` is *declarative*: it carries the build function (a
lazily imported ``"module:attr"`` dotted path, so registration never drags
in numpy-heavy build code), the stretch-guarantee rule, the serving cost
model the artifact registry charges, and the a-priori size / build-cost
estimators the fleet planner (:mod:`repro.oracle.planner`) optimises over.
Third parties register their own strategies with :func:`register_strategy`
and they appear everywhere — CLI ``choices``, error messages, planner
enumeration — because :data:`STRATEGY_NAMES` is a live view of the
registry, not a frozen tuple.
"""

from __future__ import annotations

import dataclasses
import difflib
import importlib
import math
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

#: The query-kernel families the engine implements.  Every registered
#: strategy must declare which family serves its payload:
#: ``"dense"`` (one n×n ``dist`` matrix lookup), ``"landmark"`` (exact
#: balls + best-landmark routes), or ``"spanner"`` (landmark kernels plus
#: a direct spanner-edge override).
QUERY_KINDS: Tuple[str, ...] = ("dense", "landmark", "spanner")


@dataclasses.dataclass(frozen=True)
class StretchGuarantee:
    """The advertised accuracy of an oracle artifact.

    An estimate ``est`` for a pair at true distance ``d`` satisfies

        ``d <= est <= multiplicative * d + additive``

    where ``additive`` is an absolute term fixed at build time (for
    ``dense-apsp`` it is (1 + ε)·W with ``W`` the maximum edge weight, the
    paper's additive (1 + ε)W term evaluated at its worst case).
    """

    multiplicative: float
    additive: float = 0.0

    def upper_bound(self, exact: float) -> float:
        """The largest estimate the guarantee permits for ``exact``."""
        return self.multiplicative * exact + self.additive

    def as_dict(self) -> Dict[str, float]:
        return {"multiplicative": self.multiplicative, "additive": self.additive}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StretchGuarantee":
        return cls(
            multiplicative=float(data["multiplicative"]),
            additive=float(data.get("additive", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """A-priori cost estimate for building + serving one strategy.

    Everything the planner needs before any build runs: payload size (for
    memory budgets and shard counts), the sharded-serving row/common split
    (for resident-set estimates), per-query work (for latency budgets) and
    relative build cost (the tie-breaker between equally small artifacts).
    Units: floats for sizes, table-lookup-equivalents for query cost,
    abstract work units for build cost (only comparisons between
    strategies at the same ``(n, m)`` are meaningful).
    """

    payload_floats: float
    row_width: float
    common_floats: float
    query_cost: float
    build_cost: float

    @property
    def payload_bytes(self) -> float:
        return self.payload_floats * 8.0


# Signature of a build function: ``(builder, graph) -> (arrays, rounds,
# detail, phases)`` — exactly what OracleBuilder packages into an artifact.
BuildFn = Callable[[object, object], tuple]


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """Declarative description of one oracle strategy.

    Beyond the artifact schema (``required_arrays`` / ``row_sharded_arrays``)
    a spec carries the four behaviours the rest of the stack dispatches on:

    * ``build_fn`` — how to build: a ``"module:attr"`` dotted path resolved
      lazily (keeps registration import-light and avoids build↔registry
      cycles) or a direct callable for third-party registrations.
    * ``guarantee_fn`` — the stretch guarantee a build with given
      parameters will advertise, computable *before* building (the planner
      relies on this).
    * ``cost_fn`` — ``(n, build_metadata) -> (payload_floats, row_width,
      common_floats, query_cost)``: the serving-cost model the artifact
      registry charges for a built artifact.
    * ``estimate_fn`` — ``(n, m, epsilon) -> CostEstimate``: the a-priori
      estimator the planner optimises over (no artifact needed).
    """

    name: str
    #: Arrays the artifact payload must contain for this strategy.
    required_arrays: Tuple[str, ...]
    #: Human-readable summary shown by ``repro oracle build``/``strategies``.
    summary: str
    #: Whether the guarantee depends on epsilon (exact strategies do not).
    uses_epsilon: bool = True
    #: The matrix primitives that dominate this strategy's build time —
    #: the ones the kernel layer (``repro.matmul.kernels``) accelerates and
    #: ``bench_primitives.py`` tracks in BENCH_PR2.json.  Recorded in the
    #: artifact build metadata so a slow build can be matched to the
    #: benchmark trajectory of the primitive that caused it.
    hot_primitives: Tuple[str, ...] = ()
    #: Payload arrays whose leading axis is the node axis — the ones the
    #: sharded artifact format (:mod:`repro.oracle.sharding`) splits into
    #: per-node-range shard files.  Everything else (e.g. the landmark id
    #: vector or the spanner CSR) is small and travels whole inside shard 0.
    row_sharded_arrays: Tuple[str, ...] = ()
    #: Which engine kernel family serves this payload (see QUERY_KINDS).
    query_kind: str = "dense"
    build_fn: Union[str, BuildFn, None] = None
    guarantee_fn: Optional[Callable[[float, float, Optional[int]],
                                    StretchGuarantee]] = None
    cost_fn: Optional[Callable[[int, dict],
                               Tuple[float, float, float, float]]] = None
    estimate_fn: Optional[Callable[[int, int, float], CostEstimate]] = None

    def guarantee(self, epsilon: float, max_weight: float,
                  k: Optional[int] = None) -> StretchGuarantee:
        """The stretch guarantee a fresh build with these parameters carries.

        ``k`` is the builder's ball-size / spanner parameter (``None``
        means the strategy default); only ``spanner-greedy`` reads it.
        """
        if self.guarantee_fn is None:
            raise ValueError(
                f"strategy {self.name!r} was registered without a guarantee_fn")
        return self.guarantee_fn(epsilon, max_weight, k)

    def resolve_build(self) -> BuildFn:
        """The build callable, importing a dotted-path ``build_fn`` lazily."""
        fn = self.build_fn
        if fn is None:
            raise ValueError(
                f"strategy {self.name!r} was registered without a build_fn")
        if callable(fn):
            return fn
        module_name, sep, attr = fn.partition(":")
        if not sep or not attr:
            raise ValueError(
                f"strategy {self.name!r} has malformed build_fn {fn!r} "
                f"(expected 'module:attr')")
        module = importlib.import_module(module_name)
        return getattr(module, attr)

    def serving_costs(self, n: int, build: dict,
                      sharded: bool) -> Tuple[float, float, float]:
        """``(resident_floats, query_cost, mapped_floats)`` for one artifact.

        The cost model charges only what a loaded engine actually keeps in
        RAM: a monolithic engine holds the full payload, while a sharded
        engine holds at most its hot-row block caches (mirroring the
        engine's ``ROW_BLOCK_ROWS``/``ROW_BLOCK_CAPACITY`` defaults) plus
        the small common arrays — the payload itself is mapped, not
        resident.
        """
        if self.cost_fn is None:
            raise ValueError(
                f"strategy {self.name!r} was registered without a cost_fn")
        payload, row_width, common, query_cost = self.cost_fn(n, dict(build or {}))
        if not sharded:
            return payload, query_cost, 0.0
        from repro.oracle.engine import ROW_BLOCK_CAPACITY, ROW_BLOCK_ROWS
        hot_rows = min(n, ROW_BLOCK_ROWS * ROW_BLOCK_CAPACITY)
        return hot_rows * row_width + common, query_cost, payload

    def estimate(self, n: int, m: int, epsilon: float) -> CostEstimate:
        """A-priori planner estimate for a graph with ``n`` nodes, ``m`` edges."""
        if self.estimate_fn is None:
            raise ValueError(
                f"strategy {self.name!r} was registered without an estimate_fn")
        return self.estimate_fn(int(n), int(m), float(epsilon))


class StrategyRegistry:
    """Mutable, ordered catalogue of oracle strategies.

    Registration order is preserved — it is the order the CLI lists
    strategies and the planner breaks exact ties in.
    """

    def __init__(self):
        self._specs: Dict[str, StrategySpec] = {}

    def register(self, spec: StrategySpec, replace: bool = False) -> StrategySpec:
        """Add ``spec``; duplicate names raise unless ``replace=True``."""
        if spec.query_kind not in QUERY_KINDS:
            raise ValueError(
                f"strategy {spec.name!r} has unknown query_kind "
                f"{spec.query_kind!r}; expected one of {', '.join(QUERY_KINDS)}")
        if spec.name in self._specs and not replace:
            raise ValueError(
                f"oracle strategy {spec.name!r} is already registered "
                f"(pass replace=True to override)")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> StrategySpec:
        """Remove and return a registered spec (unknown names raise)."""
        spec = self.get(name)
        del self._specs[name]
        return spec

    def get(self, name: str) -> StrategySpec:
        """Look up a spec; unknown names raise with suggestions + the catalogue."""
        spec = self._specs.get(name)
        if spec is None:
            known = ", ".join(self._specs) or "<none>"
            close = difflib.get_close_matches(str(name), list(self._specs), n=2)
            hint = ""
            if close:
                hint = " (did you mean " + " or ".join(
                    repr(match) for match in close) + "?)"
            raise ValueError(
                f"unknown oracle strategy {name!r}{hint}; "
                f"known strategies: {known}")
        return spec

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> Tuple[StrategySpec, ...]:
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


class _LiveStrategyNames(Sequence):
    """A read-only Sequence view over the registry's current names.

    Indexing, iteration, ``in`` and ``len`` all reflect the registry *at
    call time*, so a strategy registered after import shows up in CLI
    ``choices=STRATEGY_NAMES``, pytest parametrization, and error text
    without any re-import.
    """

    def __init__(self, registry: StrategyRegistry):
        self._registry = registry

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __len__(self) -> int:
        return len(self._registry)

    def __iter__(self):
        return iter(self._registry.names())

    def __contains__(self, item: object) -> bool:
        return item in self._registry

    def __repr__(self) -> str:
        return repr(self._registry.names())


#: The process-wide strategy registry all lookups go through.
REGISTRY = StrategyRegistry()

#: Canonical strategy names, in registration order — a **live view** of
#: :data:`REGISTRY`, not a snapshot.
STRATEGY_NAMES: Sequence = _LiveStrategyNames(REGISTRY)


def register_strategy(spec: StrategySpec, replace: bool = False) -> StrategySpec:
    """Register ``spec`` on the process-wide registry (see StrategyRegistry)."""
    return REGISTRY.register(spec, replace=replace)


def get_strategy(name: str) -> StrategySpec:
    """Look up a strategy spec; raises ``ValueError`` with the known names."""
    return REGISTRY.get(name)


# ----------------------------------------------------------------------
# built-in strategy behaviours
# ----------------------------------------------------------------------
def _sqrt_k(n: int) -> int:
    """The shared default ball size: ceil(sqrt(n)), clamped to [2, n]."""
    return max(2, min(max(n, 1), math.ceil(math.sqrt(max(n, 1)))))


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


def _dense_guarantee(epsilon, max_weight, k):
    return StretchGuarantee(2.0 + epsilon, (1.0 + epsilon) * max_weight)


def _landmark_guarantee(epsilon, max_weight, k):
    # Far pairs: est <= (1+eps)(d(u,p(u)) + d(p(u),v)) <= 3(1+eps)d;
    # near pairs are exact, so 3(1+eps) dominates.
    return StretchGuarantee(3.0 * (1.0 + epsilon), 0.0)


def _exact_guarantee(epsilon, max_weight, k):
    return StretchGuarantee(1.0, 0.0)


def _spanner_guarantee(epsilon, max_weight, k):
    # Spanner distances are (2k-1)-stretched; the pivot argument over
    # spanner-metric balls adds a factor 3 (near pairs: exact spanner
    # distance <= (2k-1)d; far pairs: d_S(u,p(u)) <= d_S(u,v), so the
    # landmark route <= 3 d_S(u,v) <= 3(2k-1)d).  Known from k alone —
    # the planner selects on this before anything is built.
    k = 2 if k is None else int(k)
    return StretchGuarantee(3.0 * (2 * k - 1), 0.0)


def _hopset_guarantee(epsilon, max_weight, k):
    # The landmark table is exact (Bellman-Ford over G ∪ H to convergence;
    # hopset edges are real path lengths so d_{G∪H} = d_G), leaving only
    # the pivot factor: est <= d(u,p(u)) + d(p(u),v) <= 3 d(u,v).
    return StretchGuarantee(3.0, 0.0)


def _dense_costs(n, build):
    return float(n) * n, float(n), 0.0, 1.0


def _landmark_shape(n, build):
    k = int(build.get("k") or _sqrt_k(n))
    landmarks = int(build.get("num_landmarks") or math.ceil(math.sqrt(max(n, 1))))
    return k, landmarks


def _landmark_costs(n, build):
    k, landmarks = _landmark_shape(n, build)
    payload_floats = 2.0 * n * k + 1.0 * n * landmarks
    return payload_floats, float(landmarks + 2 * k), float(landmarks), float(landmarks)


def _hopset_costs(n, build):
    k = int(build.get("ball_width") or build.get("k") or _sqrt_k(n))
    landmarks = int(build.get("num_landmarks") or math.ceil(math.sqrt(max(n, 1))))
    payload_floats = 2.0 * n * k + 1.0 * n * landmarks
    return payload_floats, float(landmarks + 2 * k), float(landmarks), float(landmarks)


def _spanner_costs(n, build):
    kb = int(build.get("ball_width") or _sqrt_k(n))
    landmarks = int(build.get("num_landmarks") or math.ceil(math.sqrt(max(n, 1))))
    # CSR of the undirected spanner: both edge directions appear, plus the
    # (n + 1)-long indptr.  Default edge count is the greedy bound n^{3/2}
    # for k = 2 when no build metadata is available.
    edges = int(build.get("spanner_edges") or round(max(n, 1) ** 1.5))
    csr_floats = 2.0 * (2 * edges) + (n + 1)
    payload_floats = 2.0 * n * kb + 1.0 * n * landmarks + csr_floats
    common = float(landmarks) + csr_floats
    return payload_floats, float(landmarks + 2 * kb), common, float(landmarks)


def _estimate_from_costs(cost_fn, n, build, build_cost):
    payload, row_width, common, query = cost_fn(n, build)
    return CostEstimate(payload_floats=payload, row_width=row_width,
                        common_floats=common, query_cost=query,
                        build_cost=float(build_cost))


def _dense_estimate(n, m, epsilon):
    # Iterated min-plus squaring over the filtered instances: ~n^3 work.
    return _estimate_from_costs(_dense_costs, n, {}, float(n) ** 3)


def _exact_estimate(n, m, epsilon):
    # log(n) exact squarings of the full matrix.
    return _estimate_from_costs(_dense_costs, n, {}, float(n) ** 3 * _log2(n))


def _landmark_estimate(n, m, epsilon):
    # k-nearest + hitting set + MSSP: ~n^2 log n semiring work.
    return _estimate_from_costs(_landmark_costs, n, {},
                                float(n) ** 2 * _log2(n))


def _spanner_estimate(n, m, epsilon):
    # Greedy spanner (default k = 2) keeps ~min(m, n^{3/2}) edges; the
    # build is m bounded Dijkstras plus ~n truncated/landmark Dijkstras
    # on the sparse spanner.
    edges = int(min(float(m), float(max(n, 1)) ** 1.5)) or 1
    build_cost = (m + n) * _log2(n) + float(n) * edges / max(1.0, _log2(n))
    return _estimate_from_costs(_spanner_costs, n,
                                {"spanner_edges": edges}, build_cost)


def _hopset_estimate(n, m, epsilon):
    # Hopset construction (bounded source detection over beta-hop balls)
    # dominates: clearly super-quadratic, the most expensive compact build.
    return _estimate_from_costs(_hopset_costs, n, {},
                                float(n) ** 2.5 * _log2(n))


register_strategy(StrategySpec(
    name="dense-apsp",
    required_arrays=("dist",),
    summary="Theorem 28 (2+eps,(1+eps)W)-APSP, dense n x n estimate matrix",
    hot_primitives=("filtered_product", "minplus_product"),
    row_sharded_arrays=("dist",),
    query_kind="dense",
    build_fn="repro.oracle.build:build_dense_arrays",
    guarantee_fn=_dense_guarantee,
    cost_fn=_dense_costs,
    estimate_fn=_dense_estimate,
))

register_strategy(StrategySpec(
    name="landmark-mssp",
    required_arrays=("landmarks", "landmark_dist", "ball_idx", "ball_dist"),
    summary="hitting-set landmarks + (1+eps)-MSSP table + exact sqrt(n)-balls",
    hot_primitives=("filtered_product", "augmented_product"),
    row_sharded_arrays=("landmark_dist", "ball_idx", "ball_dist"),
    query_kind="landmark",
    build_fn="repro.oracle.build:build_landmark_arrays",
    guarantee_fn=_landmark_guarantee,
    cost_fn=_landmark_costs,
    estimate_fn=_landmark_estimate,
))

register_strategy(StrategySpec(
    name="exact-fallback",
    required_arrays=("dist",),
    summary="exact APSP via iterated dense min-plus squaring (baseline)",
    uses_epsilon=False,
    hot_primitives=("minplus_product",),
    row_sharded_arrays=("dist",),
    query_kind="dense",
    build_fn="repro.oracle.build:build_exact_arrays",
    guarantee_fn=_exact_guarantee,
    cost_fn=_dense_costs,
    estimate_fn=_exact_estimate,
))

register_strategy(StrategySpec(
    name="spanner-greedy",
    required_arrays=("spanner_indptr", "spanner_indices", "spanner_weights",
                     "landmarks", "landmark_dist", "ball_idx", "ball_dist"),
    summary="greedy (2k-1)-spanner CSR + spanner-metric balls and landmarks",
    uses_epsilon=False,
    row_sharded_arrays=("landmark_dist", "ball_idx", "ball_dist"),
    query_kind="spanner",
    build_fn="repro.oracle.spanner:build_spanner_arrays",
    guarantee_fn=_spanner_guarantee,
    cost_fn=_spanner_costs,
    estimate_fn=_spanner_estimate,
))

register_strategy(StrategySpec(
    name="hopset-landmark",
    required_arrays=("landmarks", "landmark_dist", "ball_idx", "ball_dist"),
    summary="hopset-accelerated exact landmark table + bunch balls (3x)",
    uses_epsilon=False,
    row_sharded_arrays=("landmark_dist", "ball_idx", "ball_dist"),
    query_kind="landmark",
    build_fn="repro.oracle.hopset_landmark:build_hopset_landmark_arrays",
    guarantee_fn=_hopset_guarantee,
    cost_fn=_hopset_costs,
    estimate_fn=_hopset_estimate,
))
