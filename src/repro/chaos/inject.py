"""The runtime half of fault injection: seeded dice at named sites.

One :class:`FaultInjector` lives in each process that opted into chaos
(workers build theirs in :func:`repro.net.worker.run_worker` from the
inherited ``REPRO_CHAOS`` environment).  Instrumented code asks
``injector.pick(site)`` at each wired site; the injector rolls the
site's deterministic dice against every in-scope spec, in plan order,
and returns the first spec that fires (or None).  What the fault *does*
is the call site's business — the injector only decides and counts.

Determinism: each ``(spec index, site, kind, worker id)`` stream gets
its own :class:`random.Random` seeded from a SHA-256 of those
coordinates plus the plan seed, so runs replay identically regardless
of scheduling interleavings between sites.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from repro.chaos.plan import CHAOS_ENV_VAR, FaultPlan, FaultSpec
from repro.obs.metrics import get_registry


def _derive_seed(plan_seed: int, index: int, spec: FaultSpec,
                 worker_id: Optional[int]) -> int:
    key = f"{plan_seed}:{index}:{spec.site}:{spec.kind}:{worker_id}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultInjector:
    """Per-process fault decision engine for one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The validated plan (disk-only faults are ignored here).
    worker_id:
        This process's worker id, or None for non-worker processes
        (worker-scoped specs then never fire).
    """

    def __init__(self, plan: FaultPlan, *, worker_id: Optional[int] = None):
        self.plan = plan
        self.worker_id = worker_id
        self._specs = plan.scoped(worker_id)
        self._rngs: List[random.Random] = []
        self._fired: List[int] = []
        self._counters = []
        registry = get_registry()
        for index, spec in enumerate(self._specs):
            self._rngs.append(
                random.Random(_derive_seed(plan.seed, index, spec, worker_id)))
            self._fired.append(0)
            self._counters.append(registry.counter(
                "repro_chaos_injections_total",
                "Faults injected by the chaos layer",
                labels={"site": spec.site, "kind": spec.kind}))
        self._by_site: Dict[str, List[int]] = {}
        for index, spec in enumerate(self._specs):
            self._by_site.setdefault(spec.site, []).append(index)

    def pick(self, site: str) -> Optional[FaultSpec]:
        """Roll the dice at ``site``; return the first spec that fires.

        Fired specs are counted both locally (:attr:`injected`) and in
        the process metrics registry, so every injected fault is
        attributable on ``/metricsz``.
        """
        indices = self._by_site.get(site)
        if not indices:
            return None
        for index in indices:
            spec = self._specs[index]
            if spec.limit is not None and self._fired[index] >= spec.limit:
                continue
            if (spec.probability >= 1.0
                    or self._rngs[index].random() < spec.probability):
                self._fired[index] += 1
                self._counters[index].inc()
                return spec
        return None

    @property
    def injected(self) -> int:
        """Total faults this injector has fired, across all specs."""
        return sum(self._fired)

    def counts(self) -> Dict[str, int]:
        """Per-``site/kind`` fired counts (for stats endpoints/tests)."""
        totals: Dict[str, int] = {}
        for index, spec in enumerate(self._specs):
            if self._fired[index]:
                key = f"{spec.site}/{spec.kind}"
                totals[key] = totals.get(key, 0) + self._fired[index]
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(specs={len(self._specs)}, "
                f"worker_id={self.worker_id}, injected={self.injected})")


def injector_from_env(worker_id: Optional[int] = None,
                      environ=None) -> Optional[FaultInjector]:
    """Build this process's injector from ``REPRO_CHAOS``, if set.

    Returns None when the variable is unset or empty — the instrumented
    hot paths then pay only an ``is None`` check per wired site.  A
    malformed plan raises :class:`~repro.chaos.plan.PlanError`
    immediately (a typo'd plan must fail loudly at startup, not be
    silently ignored).
    """
    plan = FaultPlan.from_env(environ)
    if plan is None or not plan.scoped(worker_id):
        return None
    return FaultInjector(plan, worker_id=worker_id)


__all__ = ["CHAOS_ENV_VAR", "FaultInjector", "injector_from_env"]
