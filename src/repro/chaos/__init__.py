"""Deterministic fault injection for the serving fleet.

``repro.chaos`` is the failure-testing half of the robustness story: a
seedable, per-site fault plan that the network tier consults at a few
well-known points, so a test or benchmark can subject a *real*
multi-process cluster to slow workers, dropped connections, corrupt
frames, shed load, stuck event loops, and bit-rotted shard files — and
then assert that the fleet degrades gracefully (typed errors, retries,
failover) instead of serving wrong answers or hanging.

The layer has three parts:

* :class:`~repro.chaos.plan.FaultPlan` / :class:`~repro.chaos.plan.
  FaultSpec` — a declarative, JSON-serialisable plan: *where* (an
  injection site such as ``worker.recv``), *what* (a fault kind), *how
  often* (a probability), and *who* (an optional worker-id scope).
* :class:`~repro.chaos.inject.FaultInjector` — the runtime half: one
  per process, seeded deterministically from ``(plan seed, site, kind,
  worker id)`` so a given plan replays the same fault sequence on every
  run, with every injected fault counted in the process
  :class:`~repro.obs.metrics.MetricsRegistry`
  (``repro_chaos_injections_total{site,kind}``).
* :mod:`repro.chaos.disk` — on-disk faults: flip bytes inside an
  ``oracle.shard-K.npz`` payload (with a backup sidecar so tests can
  corrupt, observe the quarantine, then restore and observe recovery).

Activation is by environment variable so worker processes spawned by
:class:`repro.net.cluster.Cluster` inherit the plan with zero plumbing:
``REPRO_CHAOS`` holds either the JSON plan itself or a path to a JSON
file.  An unset/empty variable means no injector is built and the
serving hot paths pay a single ``is None`` check.

Injection sites wired in :mod:`repro.net.worker`:

========================  ====================================================
site                      kinds honoured
========================  ====================================================
``worker.recv``           ``drop_connection``, ``shed``, ``error_frame``,
                          ``delay``, ``stuck_worker``
``worker.gather``         ``delay``, ``slow_worker``
``worker.send``           ``corrupt_frame``, ``drop_connection``
========================  ====================================================

``corrupt_shard`` is not a runtime site — it is applied to artifact
files on disk via :func:`~repro.chaos.disk.apply_disk_faults` before
(or during) a run.
"""

from repro.chaos.disk import (
    apply_disk_faults,
    corrupt_shard_file,
    restore_shard_file,
)
from repro.chaos.inject import FaultInjector, injector_from_env
from repro.chaos.plan import (
    CHAOS_ENV_VAR,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    PlanError,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "PlanError",
    "apply_disk_faults",
    "corrupt_shard_file",
    "injector_from_env",
    "restore_shard_file",
]
