"""Declarative fault plans: what to break, where, how often, for whom.

A :class:`FaultPlan` is a seed plus an ordered list of
:class:`FaultSpec` entries.  Plans are plain JSON so they can live in a
file, a CLI flag, or the ``REPRO_CHAOS`` environment variable that
worker processes inherit from :class:`repro.net.cluster.Cluster`::

    {
      "seed": 42,
      "faults": [
        {"site": "worker.gather", "kind": "delay", "probability": 0.05,
         "ms": 40},
        {"site": "worker.recv", "kind": "drop_connection",
         "probability": 0.01},
        {"site": "worker.gather", "kind": "slow_worker", "workers": [1],
         "ms": 150},
        {"kind": "corrupt_shard", "shard": 2, "flips": 256}
      ]
    }

Everything validates eagerly — a typo'd fault kind or probability out of
``[0, 1]`` raises :class:`PlanError` at parse time, never mid-run.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment variable carrying the active plan (JSON text or a path
#: to a JSON file).  Unset or empty means chaos is off.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Every fault kind the injector and the disk layer understand.
FAULT_KINDS = (
    "delay",            # sleep ``ms`` before continuing
    "drop_connection",  # close the peer's connection mid-exchange
    "corrupt_frame",    # flip header bytes of an outgoing frame
    "slow_worker",      # persistent per-worker added latency of ``ms``
    "stuck_worker",     # block the whole event loop for ``ms`` (liveness
                        # probes stall too — supervisor territory)
    "error_frame",      # answer with a spurious ERR_INTERNAL frame
    "shed",             # answer with ERR_OVERLOADED (fake backpressure)
    "corrupt_shard",    # on-disk: flip bytes in an oracle.shard-K.npz
)

#: Kinds that only make sense as on-disk actions, never at a runtime
#: injection site.
DISK_KINDS = ("corrupt_shard",)


class PlanError(ValueError):
    """A fault plan that does not validate (bad kind, probability, JSON)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: where, what, how often, and for which workers.

    ``site`` is free-form (the injector matches it by string equality
    against whatever the instrumented code asks for); the wired sites
    are documented in :mod:`repro.chaos`.  ``workers`` scopes the fault
    to specific worker ids (empty means every worker).  ``limit`` caps
    how many times this spec may fire in one process (``None`` is
    unlimited).  ``shard``/``flips`` only apply to ``corrupt_shard``.
    """

    kind: str
    site: str = ""
    probability: float = 1.0
    ms: float = 0.0
    workers: Tuple[int, ...] = ()
    limit: Optional[int] = None
    shard: int = 0
    flips: int = 256

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise PlanError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})")
        if self.kind in DISK_KINDS:
            if self.site:
                raise PlanError(
                    f"{self.kind!r} is an on-disk fault and takes no site "
                    f"(got {self.site!r})")
        elif not self.site:
            raise PlanError(f"fault kind {self.kind!r} requires a site")
        if not 0.0 <= self.probability <= 1.0:
            raise PlanError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.ms < 0:
            raise PlanError(f"ms must be non-negative, got {self.ms}")
        if self.limit is not None and self.limit < 0:
            raise PlanError(f"limit must be non-negative, got {self.limit}")
        if self.flips <= 0:
            raise PlanError(f"flips must be positive, got {self.flips}")
        object.__setattr__(self, "workers",
                           tuple(int(w) for w in self.workers))

    def applies_to(self, worker_id: Optional[int]) -> bool:
        """Whether this spec is in scope for ``worker_id``.

        A spec with no worker scope applies everywhere; a scoped spec
        applies only to the listed ids (and never to a process that has
        no worker id at all, such as the frontend).
        """
        if not self.workers:
            return True
        return worker_id is not None and int(worker_id) in self.workers

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": self.kind}
        if self.site:
            doc["site"] = self.site
        if self.probability != 1.0:
            doc["probability"] = self.probability
        if self.ms:
            doc["ms"] = self.ms
        if self.workers:
            doc["workers"] = list(self.workers)
        if self.limit is not None:
            doc["limit"] = self.limit
        if self.kind in DISK_KINDS:
            doc["shard"] = self.shard
            doc["flips"] = self.flips
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultSpec":
        if not isinstance(doc, dict):
            raise PlanError(f"fault spec must be an object, got {doc!r}")
        unknown = set(doc) - {
            "kind", "site", "probability", "ms", "workers", "limit",
            "shard", "flips"}
        if unknown:
            raise PlanError(
                f"unknown fault spec fields: {', '.join(sorted(unknown))}")
        try:
            return cls(
                kind=str(doc.get("kind", "")),
                site=str(doc.get("site", "")),
                probability=float(doc.get("probability", 1.0)),
                ms=float(doc.get("ms", 0.0)),
                workers=tuple(doc.get("workers", ())),
                limit=(None if doc.get("limit") is None
                       else int(doc["limit"])),
                shard=int(doc.get("shard", 0)),
                flips=int(doc.get("flips", 256)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, PlanError):
                raise
            raise PlanError(f"malformed fault spec {doc!r}: {exc}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of faults.

    The seed makes every run of the same plan inject the same fault
    sequence per ``(site, kind, worker)`` stream — chaos tests are
    reproducible, not flaky.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def runtime_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if s.kind not in DISK_KINDS)

    @property
    def disk_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if s.kind in DISK_KINDS)

    def scoped(self, worker_id: Optional[int]) -> List[FaultSpec]:
        """Runtime faults in scope for one worker, in plan order."""
        return [s for s in self.runtime_faults if s.applies_to(worker_id)]

    def as_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "faults": [spec.as_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise PlanError(f"fault plan must be an object, got {doc!r}")
        unknown = set(doc) - {"seed", "faults"}
        if unknown:
            raise PlanError(
                f"unknown fault plan fields: {', '.join(sorted(unknown))}")
        faults = doc.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise PlanError("fault plan 'faults' must be a list")
        try:
            seed = int(doc.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise PlanError(f"fault plan seed must be an int: {exc}")
        return cls(faults=tuple(FaultSpec.from_dict(spec) for spec in faults),
                   seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(doc)

    @classmethod
    def from_env_value(cls, value: str) -> Optional["FaultPlan"]:
        """Decode a ``REPRO_CHAOS`` value: inline JSON or a file path."""
        value = value.strip()
        if not value:
            return None
        if value.startswith("{"):
            return cls.from_json(value)
        path = value[1:] if value.startswith("@") else value
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise PlanError(f"cannot read fault plan file {path!r}: {exc}")

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The active plan per ``REPRO_CHAOS``, or None when chaos is off."""
        value = (environ if environ is not None else os.environ).get(
            CHAOS_ENV_VAR, "")
        return cls.from_env_value(value)


def example_plan() -> FaultPlan:
    """The documented "bad day" starter plan (also ``repro chaos plan``)."""
    return FaultPlan(seed=42, faults=(
        FaultSpec(kind="delay", site="worker.gather", probability=0.05,
                  ms=40.0),
        FaultSpec(kind="drop_connection", site="worker.recv",
                  probability=0.01),
        FaultSpec(kind="slow_worker", site="worker.gather", workers=(1,),
                  ms=150.0),
        FaultSpec(kind="corrupt_shard", shard=0, flips=256),
    ))


def merge_plans(plans: Sequence[FaultPlan]) -> FaultPlan:
    """Concatenate several plans (first plan's seed wins)."""
    if not plans:
        return FaultPlan()
    faults: List[FaultSpec] = []
    for plan in plans:
        faults.extend(plan.faults)
    return FaultPlan(faults=tuple(faults), seed=plans[0].seed)
