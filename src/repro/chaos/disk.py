"""On-disk faults: deterministic bit rot for sharded oracle artifacts.

The runtime injector (:mod:`repro.chaos.inject`) breaks *behaviour*;
this module breaks *data*.  :func:`corrupt_shard_file` overwrites a
seeded run of bytes inside a shard payload with ``0xFF`` — chosen
because a float64 whose bytes are all ``0xFF`` decodes as NaN, so the
corruption is guaranteed to surface as obviously-invalid distances (the
quarantine trigger) rather than plausible-but-wrong values, while still
failing the shard's SHA-256 manifest check the way any bit rot would.

Corruption writes a ``<shard>.chaos-bak`` backup sidecar by default, so
tests and the ``repro chaos`` CLI can corrupt a shard, watch the
serving stack quarantine it, then :func:`restore_shard_file` it and
watch the re-verify/re-mmap recovery path succeed.
"""

from __future__ import annotations

import random
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.chaos.plan import FaultPlan, PlanError

PathLike = Union[str, Path]

#: Suffix of the pristine-copy sidecar written before corruption.
BACKUP_SUFFIX = ".chaos-bak"

#: Bytes at the head/tail of the payload left untouched: the zip local
#: file header at the front and the central directory at the back must
#: stay parseable so the fault models *data* rot, not a truncated file.
_GUARD_BYTES = 4096


def corrupt_shard_file(path: PathLike, *, seed: int = 0, flips: int = 256,
                       backup: bool = True) -> Dict[str, object]:
    """Overwrite ``flips`` bytes of a shard payload with ``0xFF``.

    The corrupted run lands at a seeded offset inside the middle of the
    file (away from the zip structures at either end), so the array
    data itself rots.  Returns a description of what was done —
    ``{"path", "offset", "flips", "backup"}`` — for logs and reports.
    """
    path = Path(path)
    size = path.stat().st_size
    flips = int(flips)
    if flips <= 0:
        raise PlanError(f"flips must be positive, got {flips}")
    lo = min(_GUARD_BYTES, size // 4)
    hi = max(lo + 1, size - _GUARD_BYTES - flips)
    offset = lo + random.Random(seed).randrange(max(1, hi - lo))
    offset = min(offset, max(0, size - flips))
    backup_path: Optional[Path] = None
    if backup:
        backup_path = path.with_name(path.name + BACKUP_SUFFIX)
        if not backup_path.exists():
            shutil.copy2(path, backup_path)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(b"\xff" * flips)
    return {"path": str(path), "offset": int(offset), "flips": flips,
            "backup": str(backup_path) if backup_path else None}


def restore_shard_file(path: PathLike) -> bool:
    """Undo :func:`corrupt_shard_file` from its backup sidecar.

    Returns True when a backup existed and was restored (the sidecar is
    removed), False when there was nothing to restore.
    """
    path = Path(path)
    backup_path = path.with_name(path.name + BACKUP_SUFFIX)
    if not backup_path.exists():
        return False
    shutil.copy2(backup_path, path)
    backup_path.unlink()
    return True


def apply_disk_faults(plan: FaultPlan, manifest_path: PathLike, *,
                      backup: bool = True) -> List[Dict[str, object]]:
    """Apply every ``corrupt_shard`` fault in ``plan`` to one artifact.

    ``manifest_path`` names the sharded artifact (base path, ``.npz``,
    or ``*.shards.json`` — anything :func:`repro.oracle.sharding.
    shard_manifest_path` accepts).  Shard indices beyond the artifact's
    shard count raise :class:`~repro.chaos.plan.PlanError` rather than
    silently corrupting nothing.
    """
    from repro.oracle.sharding import ShardedOracleArtifact, shard_manifest_path

    specs = plan.disk_faults
    if not specs:
        return []
    artifact = ShardedOracleArtifact.load(
        shard_manifest_path(manifest_path), verify="none")
    reports: List[Dict[str, object]] = []
    for spec in specs:
        if not 0 <= spec.shard < artifact.num_shards:
            raise PlanError(
                f"corrupt_shard index {spec.shard} out of range for "
                f"{artifact.num_shards}-shard artifact {manifest_path}")
        reports.append(corrupt_shard_file(
            artifact.shard_file(spec.shard),
            seed=plan.seed + spec.shard, flips=spec.flips, backup=backup))
    return reports


__all__ = ["BACKUP_SUFFIX", "apply_disk_faults", "corrupt_shard_file",
           "restore_shard_file"]
