"""Congested Clique model substrate.

Two layers are provided:

* :mod:`repro.cclique.simulator` — a message-level synchronous simulator
  that *enforces* the model's bandwidth constraint (one O(log n)-bit word per
  ordered node pair per round).  The routing and sorting primitives
  (:mod:`repro.cclique.routing`, :mod:`repro.cclique.sorting`) are
  implemented and validated on it at small ``n``.

* :mod:`repro.cclique.accounting` — the :class:`Clique` round-accounting
  context used by the algorithm layer.  Algorithms perform their local
  computation globally (numpy / dictionaries) but charge every communication
  step through this object, which converts per-node message loads into
  rounds using the primitives' guarantees.  The constants live in
  :mod:`repro.cclique.spec` so the accounting is auditable.

The theorems of the paper bound the number of rounds, which is exactly the
quantity the accounting layer computes, so benchmarks compare its output
against the stated bounds.
"""

from repro.cclique.spec import ModelSpec, DEFAULT_SPEC
from repro.cclique.accounting import Clique, RoundBreakdown
from repro.cclique.simulator import SimNetwork, Message, BandwidthViolation
from repro.cclique.routing import route_messages
from repro.cclique.sorting import distributed_sort

__all__ = [
    "ModelSpec",
    "DEFAULT_SPEC",
    "Clique",
    "RoundBreakdown",
    "SimNetwork",
    "Message",
    "BandwidthViolation",
    "route_messages",
    "distributed_sort",
]
