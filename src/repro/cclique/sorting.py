"""Distributed sorting on the message-level simulator.

The sorting task (Section 1.5): each node holds ``n`` entries from an
ordered universe, and after sorting node ``i`` must hold the ``i``-th batch
of ``n`` entries of the global order.  Lenzen's algorithm does this in
``O(1)`` rounds; our implementation uses the classic sample-splitter scheme:

1. every node broadcasts a regular sample of its locally sorted entries
   (one round),
2. every node locally computes the same ``n - 1`` splitters from the union
   of samples,
3. entries are routed to their target buckets with
   :func:`repro.cclique.routing.route_messages`,
4. a final local sort plus a balancing pass aligns batch boundaries exactly.

The round count is dominated by the routing step and is validated to be a
small constant in tests.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.cclique.routing import broadcast_from_all, route_messages
from repro.cclique.simulator import SimNetwork


def distributed_sort(
    net: SimNetwork, local_entries: Sequence[Sequence[Any]]
) -> Tuple[List[List[Any]], int]:
    """Sort entries so node ``i`` ends with the ``i``-th batch of the order.

    Parameters
    ----------
    net:
        The simulator network (``net.n`` nodes).
    local_entries:
        ``local_entries[v]`` is the list of entries initially held by ``v``.
        Entries must be mutually comparable.

    Returns
    -------
    (sorted_batches, rounds):
        ``sorted_batches[i]`` is the ``i``-th batch of the global order;
        batch sizes differ by at most one.  ``rounds`` is the number of
        simulator rounds consumed.
    """
    n = net.n
    start_round = net.round
    total = sum(len(entries) for entries in local_entries)
    if total == 0:
        return [[] for _ in range(n)], 0

    # Step 1: each node broadcasts a few regular samples of its sorted
    # entries (one word per broadcast round).  More samples give better
    # splitters, which keeps the bucket loads — and therefore the routing
    # rounds of step 3 — balanced; four per node is enough in practice.
    samples: List[Any] = []
    per_node_sorted = [sorted(entries) for entries in local_entries]
    samples_per_node = 4
    for sample_index in range(samples_per_node):
        sample_values: List[Any] = []
        for entries in per_node_sorted:
            if entries:
                position = (2 * sample_index + 1) * len(entries) // (2 * samples_per_node)
                sample_values.append(entries[min(position, len(entries) - 1)])
            else:
                sample_values.append(None)
        received, _ = broadcast_from_all(net, sample_values)
        samples.extend(v for v in received[0] if v is not None)
    samples.sort()

    # Step 2: all nodes derive the same splitters from the samples.
    splitters: List[Any] = []
    if samples:
        for i in range(1, n):
            splitters.append(samples[min(len(samples) - 1, i * len(samples) // n)])

    def bucket_of(value: Any) -> int:
        lo, hi = 0, len(splitters)
        while lo < hi:
            mid = (lo + hi) // 2
            if value < splitters[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # Step 3: route entries to their buckets.
    messages = []
    for src, entries in enumerate(per_node_sorted):
        for value in entries:
            messages.append((src, bucket_of(value), value))
    inboxes, _ = route_messages(net, messages)

    bucket_contents: List[List[Any]] = [sorted(inboxes.get(i, [])) for i in range(n)]

    # Step 4: balancing pass — align exact batch boundaries.  Each node
    # broadcasts its bucket size (one round), all nodes compute the target
    # boundaries, and out-of-place entries are routed to their final nodes.
    sizes = [len(bucket) for bucket in bucket_contents]
    broadcast_from_all(net, sizes)
    base, extra = divmod(total, n)
    target_sizes = [base + (1 if i < extra else 0) for i in range(n)]

    # Compute, from the globally known sizes, which global positions each
    # bucket's entries occupy, and route entries whose position belongs to a
    # different node.
    start_positions = [0] * n
    running = 0
    for i in range(n):
        start_positions[i] = running
        running += sizes[i]
    target_starts = [0] * n
    running = 0
    for i in range(n):
        target_starts[i] = running
        running += target_sizes[i]

    def owner_of_position(pos: int) -> int:
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if target_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo

    rebalance_messages = []
    final_batches: List[List[Any]] = [[] for _ in range(n)]
    for node in range(n):
        for offset, value in enumerate(bucket_contents[node]):
            pos = start_positions[node] + offset
            owner = owner_of_position(pos)
            if owner == node:
                final_batches[node].append(value)
            else:
                rebalance_messages.append((node, owner, value))
    if rebalance_messages:
        inboxes, _ = route_messages(net, rebalance_messages)
        for node in range(n):
            final_batches[node].extend(inboxes.get(node, []))
    final_batches = [sorted(batch) for batch in final_batches]

    return final_batches, net.round - start_round
