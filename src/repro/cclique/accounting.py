"""Round accounting for Congested Clique algorithms.

The algorithm layer of this library computes *what* each node would compute
locally using ordinary Python/numpy code, but charges *every* communication
step through a :class:`Clique` object.  The charge for each step is a pure
function of the per-node message loads of that step and of the O(1)-round
primitives (routing, sorting, broadcast) the paper builds on — i.e. exactly
the quantity the paper's theorems bound.

A :class:`Clique` keeps a labelled breakdown of where rounds were spent,
which the benchmark harness prints next to the corresponding theoretical
bound.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cclique.spec import DEFAULT_SPEC, ModelSpec


@dataclasses.dataclass
class RoundBreakdown:
    """Labelled breakdown of rounds charged to a :class:`Clique`."""

    entries: List[Tuple[str, float]] = dataclasses.field(default_factory=list)

    def add(self, label: str, rounds: float) -> None:
        self.entries.append((label, rounds))

    def by_label(self) -> Dict[str, float]:
        """Aggregate rounds per label."""
        totals: Dict[str, float] = {}
        for label, rounds in self.entries:
            totals[label] = totals.get(label, 0.0) + rounds
        return totals

    def total(self) -> float:
        return sum(rounds for _, rounds in self.entries)

    def formatted(self) -> str:
        """Human-readable multi-line summary (used by examples/benchmarks)."""
        lines = []
        for label, rounds in sorted(self.by_label().items(), key=lambda x: -x[1]):
            lines.append(f"  {label:<40s} {rounds:10.1f}")
        lines.append(f"  {'TOTAL':<40s} {self.total():10.1f}")
        return "\n".join(lines)


class Clique:
    """Round-accounting context for an ``n``-node Congested Clique.

    Parameters
    ----------
    n:
        Number of nodes (and machines).
    spec:
        Cost-model constants; see :class:`repro.cclique.spec.ModelSpec`.

    Notes
    -----
    All ``charge_*`` methods return the number of rounds charged so callers
    can log or assert on individual steps.
    """

    def __init__(self, n: int, spec: ModelSpec = DEFAULT_SPEC):
        if n <= 0:
            raise ValueError(f"clique must have at least one node, got {n}")
        self.n = int(n)
        self.spec = spec
        self.breakdown = RoundBreakdown()
        self.messages_sent = 0
        self._label_stack: List[str] = []

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Context manager scoping charges under ``label`` (nestable)."""
        self._label_stack.append(label)
        try:
            yield
        finally:
            self._label_stack.pop()

    def _full_label(self, label: Optional[str]) -> str:
        parts = list(self._label_stack)
        if label:
            parts.append(label)
        return "/".join(parts) if parts else "unlabelled"

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> float:
        """Total rounds charged so far."""
        return self.breakdown.total()

    def charge(self, rounds: float, label: Optional[str] = None) -> float:
        """Charge a raw number of rounds."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds: {rounds}")
        if rounds > 0:
            self.breakdown.add(self._full_label(label), float(rounds))
        return float(rounds)

    def charge_broadcast(self, words: int = 1, label: Optional[str] = None) -> float:
        """Every node broadcasts ``words`` words to all other nodes."""
        rounds = self.spec.broadcast_rounds(words)
        self.messages_sent += self.n * (self.n - 1) * max(1, words)
        return self.charge(rounds, label or "broadcast")

    def charge_routing(
        self,
        max_send: int,
        max_recv: int,
        words_per_message: int = 1,
        total_messages: Optional[int] = None,
        label: Optional[str] = None,
    ) -> float:
        """Charge a routing step (Lenzen routing).

        ``max_send`` / ``max_recv`` are the worst per-node loads of the step;
        the primitive delivers them in ``O(ceil(load / n))`` rounds.
        """
        rounds = self.spec.routing_rounds(max_send, max_recv, self.n, words_per_message)
        if total_messages is not None:
            self.messages_sent += total_messages * max(1, words_per_message)
        else:
            self.messages_sent += max(max_send, max_recv) * max(1, words_per_message)
        return self.charge(rounds, label or "routing")

    def charge_sorting(
        self,
        max_items_per_node: int,
        words_per_item: int = 1,
        label: Optional[str] = None,
    ) -> float:
        """Charge a distributed sorting step (Lenzen sorting)."""
        rounds = self.spec.sorting_rounds(max_items_per_node, self.n, words_per_item)
        self.messages_sent += max_items_per_node * self.n
        return self.charge(rounds, label or "sorting")

    def charge_hitting_set(self, label: Optional[str] = None) -> float:
        """Charge the deterministic hitting-set construction of Lemma 4."""
        rounds = self.spec.hitting_set_rounds(self.n)
        return self.charge(rounds, label or "hitting-set")

    def charge_rounds_formula(
        self, rounds: float, label: Optional[str] = None
    ) -> float:
        """Charge rounds computed by a caller-side formula.

        Used for steps whose cost the paper states directly (for example the
        ``O(log W)`` binary-search filtering rounds of Theorem 14, where each
        search iteration is one broadcast-and-reply exchange inside a group).
        """
        return self.charge(max(0.0, rounds), label)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Return a formatted report of all charges."""
        header = f"Congested Clique with n={self.n}: {self.rounds:.1f} rounds\n"
        return header + self.breakdown.formatted()

    def merge_from(self, other: "Clique", label: Optional[str] = None) -> None:
        """Fold the charges of another clique context into this one.

        Useful when a sub-computation was run with its own context (for
        example a recursive call on an induced subgraph).
        """
        prefix = self._full_label(label)
        for sub_label, rounds in other.breakdown.entries:
            combined = f"{prefix}/{sub_label}" if prefix != "unlabelled" else sub_label
            self.breakdown.add(combined, rounds)
        self.messages_sent += other.messages_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clique(n={self.n}, rounds={self.rounds:.1f})"
