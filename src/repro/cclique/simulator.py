"""Message-level synchronous simulator of the Congested Clique.

This is the "fidelity" layer: it enforces the defining constraint of the
model — in each round, each ordered pair of nodes may exchange at most one
``O(log n)``-bit message — and counts rounds by actually delivering
messages.  The routing and sorting primitives are implemented on top of it
(:mod:`repro.cclique.routing`, :mod:`repro.cclique.sorting`) and their
constant-round behaviour is validated in tests; the algorithm layer then
charges those primitives through :class:`repro.cclique.accounting.Clique`
instead of simulating every message, which is what makes experiments at
n = 256+ feasible.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Tuple


class BandwidthViolation(RuntimeError):
    """Raised when a node tries to send two messages over one link in a round."""


@dataclasses.dataclass(frozen=True)
class Message:
    """A single message in flight.

    ``payload`` must be small (a few machine words); the simulator checks a
    crude size proxy via ``payload_words``.
    """

    src: int
    dst: int
    payload: Any
    payload_words: int = 1


class SimNetwork:
    """A synchronous fully connected network of ``n`` nodes.

    Usage pattern (orchestrated simulation)::

        net = SimNetwork(n)
        net.post(src, dst, payload)   # any number of posts
        delivered = net.step()        # one round; returns per-node inboxes

    ``post`` raises :class:`BandwidthViolation` if a second message is posted
    on the same ordered link in the same round, or if a payload exceeds the
    word budget.

    Message accounting: ``total_messages`` counts *every* delivered message,
    including same-node "local" deliveries (``src == dst``).  Local messages
    are exempt from the one-message-per-link bandwidth rule and from the
    payload budget — they model free local computation and never cost a
    round — but they still show up in the counter so traffic totals are
    consistent however an algorithm mixes local and remote sends.
    """

    def __init__(self, n: int, max_words_per_message: int = 4):
        if n <= 0:
            raise ValueError(f"network must have at least one node, got {n}")
        self.n = int(n)
        self.max_words_per_message = max_words_per_message
        self.round = 0
        self.total_messages = 0
        self._outbox: Dict[Tuple[int, int], Message] = {}
        self._inboxes: List[List[Message]] = [[] for _ in range(self.n)]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, payload: Any, payload_words: int = 1) -> None:
        """Queue a message for delivery at the end of the current round."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            # Local "messages" are free (no round, no bandwidth) but are
            # still counted, so total_messages covers all deliveries.
            self._inboxes[dst].append(Message(src, dst, payload, payload_words))
            self.total_messages += 1
            return
        if payload_words > self.max_words_per_message:
            raise BandwidthViolation(
                f"payload of {payload_words} words exceeds the per-message "
                f"budget of {self.max_words_per_message} words"
            )
        key = (src, dst)
        if key in self._outbox:
            raise BandwidthViolation(
                f"node {src} already sent a message to {dst} in round {self.round}"
            )
        self._outbox[key] = Message(src, dst, payload, payload_words)

    def can_post(self, src: int, dst: int) -> bool:
        """Return ``True`` if the link ``src -> dst`` is still free this round."""
        return src == dst or (src, dst) not in self._outbox

    def broadcast(self, src: int, payload: Any, payload_words: int = 1) -> None:
        """Node ``src`` sends ``payload`` to every other node (one round's worth).

        A broadcast needs *all* of ``src``'s outgoing links free this round;
        if any link was already used, the whole broadcast is refused (rather
        than partially posted) with an error naming the busy links.
        """
        busy = [dst for dst in range(self.n)
                if dst != src and not self.can_post(src, dst)]
        if busy:
            shown = ", ".join(str(dst) for dst in busy[:5])
            suffix = ", ..." if len(busy) > 5 else ""
            raise BandwidthViolation(
                f"broadcast from node {src} requires all outgoing links free "
                f"in round {self.round}, but links to [{shown}{suffix}] were "
                "already used"
            )
        for dst in range(self.n):
            if dst != src:
                self.post(src, dst, payload, payload_words)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> List[List[Message]]:
        """Advance one round: deliver queued messages and return inboxes."""
        inboxes: List[List[Message]] = [[] for _ in range(self.n)]
        # Carry over any immediately-delivered local messages.
        for node in range(self.n):
            if self._inboxes[node]:
                inboxes[node].extend(self._inboxes[node])
                self._inboxes[node] = []
        for message in self._outbox.values():
            inboxes[message.dst].append(message)
        self.total_messages += len(self._outbox)
        self._outbox = {}
        self.round += 1
        return inboxes

    def run_rounds(
        self,
        round_fn: Callable[[int, "SimNetwork"], bool],
        max_rounds: int = 10_000,
    ) -> int:
        """Run ``round_fn(round_index, net)`` until it returns False.

        ``round_fn`` posts messages and returns ``True`` to continue.  The
        number of executed rounds is returned.
        """
        executed = 0
        for index in range(max_rounds):
            keep_going = round_fn(index, self)
            self.step()
            executed += 1
            if not keep_going:
                break
        return executed

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise ValueError(f"node {u} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNetwork(n={self.n}, round={self.round})"
