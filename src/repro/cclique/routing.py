"""Routing on the message-level simulator.

The routing task (Section 1.5): every node holds up to ``n`` messages, every
node is the recipient of at most ``n`` messages, and all messages must be
delivered.  Lenzen's deterministic routing scheme solves this in ``O(1)``
rounds; here we implement a two-phase relay scheme on the simulator:

* **Phase 1 (disperse):** the ``j``-th message of source ``s`` is sent to
  relay ``(s + j) mod n``.  Each source uses each outgoing link at most
  ``ceil(load_s / n)`` times, so this takes ``ceil(max_send / n)`` rounds.

* **Phase 2 (deliver):** relays forward messages to their destinations.  A
  relay may hold several messages for the same destination, in which case it
  needs several rounds on that link; the scheme greedily sends one message
  per link per round.

Phase 2 is where the full Lenzen algorithm invests its cleverness to stay
``O(1)`` in the worst case.  For the balanced loads produced by the
algorithms in this library the greedy phase 2 empirically completes within a
small constant number of rounds (asserted in tests); the accounting layer
charges the proven Lenzen constant from :mod:`repro.cclique.spec` rather than
the simulator's value, and the difference is documented in DESIGN.md.
"""

from __future__ import annotations

import collections
from typing import Any, Dict, List, Sequence, Tuple

from repro.cclique.simulator import SimNetwork


def route_messages(
    net: SimNetwork,
    messages: Sequence[Tuple[int, int, Any]],
    use_relays: bool = True,
) -> Tuple[Dict[int, List[Any]], int]:
    """Deliver ``(src, dst, payload)`` messages; return (inboxes, rounds used).

    Every source may hold up to ``n`` messages and every destination may be
    the recipient of up to ``n`` messages (the primitive's contract); larger
    loads still work but take proportionally more rounds.

    When ``use_relays`` is False messages are sent directly (one per link per
    round), which is the natural scheme when each (src, dst) pair carries at
    most one message.
    """
    n = net.n
    start_round = net.round
    inboxes: Dict[int, List[Any]] = collections.defaultdict(list)

    if not messages:
        return inboxes, 0

    if not use_relays:
        _route_direct(net, messages, inboxes)
        return inboxes, net.round - start_round

    # ------------------------------------------------------------------
    # Phase 1: disperse to relays, round-robin per source.
    # ------------------------------------------------------------------
    by_source: Dict[int, List[Tuple[int, Any]]] = collections.defaultdict(list)
    for src, dst, payload in messages:
        by_source[src].append((dst, payload))

    # relay_holdings[relay] = list of (dst, payload)
    relay_holdings: Dict[int, List[Tuple[int, Any]]] = collections.defaultdict(list)
    pending: Dict[int, List[Tuple[int, Tuple[int, Any]]]] = collections.defaultdict(list)
    for src, items in by_source.items():
        for j, (dst, payload) in enumerate(items):
            relay = (src + 1 + j) % n
            pending[src].append((relay, (dst, payload)))

    while any(pending.values()):
        used_links = set()
        for src, items in pending.items():
            remaining = []
            for relay, content in items:
                if (src, relay) not in used_links:
                    used_links.add((src, relay))
                    # Local hops go through post() too (free, but counted),
                    # keeping total_messages consistent across hop kinds.
                    net.post(src, relay, ("relay", content))
                else:
                    remaining.append((relay, content))
            pending[src] = remaining
        delivered = net.step()
        for node, node_messages in enumerate(delivered):
            for message in node_messages:
                kind, content = message.payload
                relay_holdings[node].append(content)

    # ------------------------------------------------------------------
    # Phase 2: relays deliver to destinations, one per link per round.
    # ------------------------------------------------------------------
    deliver_pending: Dict[int, List[Tuple[int, Any]]] = {
        relay: list(items) for relay, items in relay_holdings.items()
    }
    while any(deliver_pending.values()):
        used_links = set()
        progress = False
        for relay, items in deliver_pending.items():
            remaining = []
            for dst, payload in items:
                if (relay, dst) not in used_links:
                    used_links.add((relay, dst))
                    progress = True
                    net.post(relay, dst, ("final", payload))
                else:
                    remaining.append((dst, payload))
            deliver_pending[relay] = remaining
        if not progress:  # pragma: no cover - defensive
            raise RuntimeError("routing made no progress; scheduling bug")
        delivered = net.step()
        for node, node_messages in enumerate(delivered):
            for message in node_messages:
                kind, payload = message.payload
                inboxes[node].append(payload)

    return inboxes, net.round - start_round


def _route_direct(
    net: SimNetwork,
    messages: Sequence[Tuple[int, int, Any]],
    inboxes: Dict[int, List[Any]],
) -> None:
    """Send messages directly, one per ordered link per round."""
    pending: Dict[Tuple[int, int], List[Any]] = collections.defaultdict(list)
    for src, dst, payload in messages:
        pending[(src, dst)].append(payload)
    while any(pending.values()):
        for (src, dst), payloads in list(pending.items()):
            if not payloads:
                continue
            payload = payloads.pop(0)
            net.post(src, dst, ("direct", payload))
        delivered = net.step()
        for node, node_messages in enumerate(delivered):
            for message in node_messages:
                _, payload = message.payload
                inboxes[node].append(payload)
        pending = {key: value for key, value in pending.items() if value}


def broadcast_from_all(
    net: SimNetwork, values: Sequence[Any]
) -> Tuple[List[List[Any]], int]:
    """Every node broadcasts one value to all others; returns (received, rounds).

    ``received[v]`` lists the values received by node ``v`` indexed by
    sender.  This is the 1-round "everyone learns one word from everyone"
    primitive used pervasively by the paper's algorithms.
    """
    start_round = net.round
    for src, value in enumerate(values):
        net.broadcast(src, value)
    delivered = net.step()
    received: List[List[Any]] = [[None] * net.n for _ in range(net.n)]
    for node in range(net.n):
        received[node][node] = values[node]
        for message in delivered[node]:
            received[node][message.src] = message.payload
    return received, net.round - start_round
