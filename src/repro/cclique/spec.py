"""Model constants for the Congested Clique accounting layer.

The paper's statements are asymptotic; to produce concrete round counts the
accounting layer needs explicit constants for the O(1)-round primitives it
builds on.  They are collected here, in one auditable place, so every number
reported by the benchmark harness can be traced back to a documented choice.

The defaults are deliberately conservative (small) constants taken from the
structure of the primitives themselves:

* **Routing** (Lenzen 2013, cited as [43]): delivering messages where every
  node sends at most ``n`` and receives at most ``n`` takes a constant number
  of rounds.  We charge ``ROUTING_CONSTANT`` rounds per unit of normalised
  load (``ceil(max load / n)``), with 2 reflecting the two phases
  (disperse + deliver) of the scheme.
* **Sorting** (Lenzen 2013): constant rounds for ``n²`` keys; we charge
  ``SORTING_CONSTANT`` per normalised load unit.
* **Hitting set** (Parter–Yogev, Lemma 4): ``O((log log n)^3)`` rounds; we
  charge exactly ``ceil((log2 log2 n)^3)`` rounds.

Changing these constants rescales every measured round count uniformly and
therefore never changes any of the *shape* conclusions (who wins, crossover
locations, growth exponents) that the benchmarks draw.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Constants describing the Congested Clique cost model."""

    #: Bits per message word; messages are O(log n) bits (informational only,
    #: the accounting works in words).
    word_bits: int = 64

    #: Rounds charged per unit of normalised routing load (Lenzen routing).
    routing_constant: float = 2.0

    #: Rounds charged per unit of normalised sorting load (Lenzen sorting).
    sorting_constant: float = 4.0

    #: Rounds charged for one full broadcast (every node sends one word to
    #: every other node); this is a single round in the model.
    broadcast_constant: float = 1.0

    def routing_rounds(self, max_send: int, max_recv: int, n: int, words: int = 1) -> float:
        """Rounds to deliver messages with the given per-node loads.

        ``max_send`` / ``max_recv`` are the maximum number of messages any
        single node must send / receive, and ``words`` is the number of
        machine words per message.
        """
        if max_send <= 0 and max_recv <= 0:
            return 0.0
        load = max(max_send, max_recv) * max(1, words)
        return self.routing_constant * max(1.0, math.ceil(load / n))

    def sorting_rounds(self, max_items_per_node: int, n: int, words: int = 1) -> float:
        """Rounds to sort items distributed ``max_items_per_node`` per node."""
        if max_items_per_node <= 0:
            return 0.0
        load = max_items_per_node * max(1, words)
        return self.sorting_constant * max(1.0, math.ceil(load / n))

    def broadcast_rounds(self, words: int = 1) -> float:
        """Rounds for every node to broadcast ``words`` words to all nodes."""
        return self.broadcast_constant * max(1, words)

    def hitting_set_rounds(self, n: int) -> float:
        """Rounds for the deterministic hitting set of Lemma 4."""
        if n <= 2:
            return 1.0
        return float(max(1, math.ceil(math.log2(max(2.0, math.log2(n))) ** 3)))


#: The spec used everywhere unless a caller overrides it.
DEFAULT_SPEC = ModelSpec()
