"""The augmented min-plus semiring of Section 3.1.

Elements are pairs ``(weight, hops)``; addition is the lexicographic minimum
and multiplication adds component-wise.  Tracking the hop count alongside the
weight is what makes the k-nearest and source-detection tools *consistent*
(Lemma 17): every prefix of a recorded shortest path is itself recorded.

For fast local computation the semiring also provides an order-preserving
encoding into Python integers / numpy ``int64``::

    encode(w, t) = w * hop_base + t        with  t < hop_base

Because hop counts of two multiplied entries add to at most ``2 n`` we pick
``hop_base > 2 n``; then encoding addition component-wise equals integer
addition of encodings, and lexicographic comparison equals integer
comparison.  This lets the matmul kernels run min-plus products on int64
arrays while remaining bit-exact with the tuple semantics.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple

from repro.semiring.base import Semiring


class AugmentedEntry(NamedTuple):
    """A ``(weight, hops)`` element of the augmented semiring."""

    weight: float
    hops: float


class AugmentedMinPlusSemiring(Semiring):
    """Augmented min-plus semiring over ``(weight, hops)`` pairs.

    Parameters
    ----------
    hop_base:
        Strictly larger than any hop count that can arise (use ``2 n + 2``
        for an ``n``-node graph, since products add hop counts of two
        entries each at most ``n``).
    weight_bound:
        Upper bound (exclusive) on any finite weight that can arise during
        the computation, used to pick the integer encoding of infinity.
        Weights are assumed to be non-negative integers (Section 1.5).
    """

    name = "augmented-min-plus"

    def __init__(self, hop_base: int, weight_bound: int):
        if hop_base <= 1:
            raise ValueError("hop_base must be at least 2")
        if weight_bound <= 0:
            raise ValueError("weight_bound must be positive")
        self.hop_base = int(hop_base)
        self.weight_bound = int(weight_bound)
        # The encoded infinity must dominate any sum of two finite encodings.
        self._inf_code = 2 * self.weight_bound * self.hop_base + 2 * self.hop_base + 1
        self._zero = AugmentedEntry(math.inf, math.inf)
        self._one = AugmentedEntry(0, 0)

    # -- semiring interface --------------------------------------------
    @property
    def zero(self) -> AugmentedEntry:
        return self._zero

    @property
    def one(self) -> AugmentedEntry:
        return self._one

    def add(self, x: AugmentedEntry, y: AugmentedEntry) -> AugmentedEntry:
        return x if x <= y else y

    def mul(self, x: AugmentedEntry, y: AugmentedEntry) -> AugmentedEntry:
        if x[0] == math.inf or y[0] == math.inf:
            return self._zero
        return AugmentedEntry(x[0] + y[0], x[1] + y[1])

    def is_ordered(self) -> bool:
        return True

    def less(self, x: AugmentedEntry, y: AugmentedEntry) -> bool:
        return x < y

    def words_per_element(self) -> int:
        # One word for the weight, one for the hop count.
        return 2

    # -- integer encoding ------------------------------------------------
    def encode(self, entry: AugmentedEntry | Tuple[float, float]) -> int:
        """Encode ``(weight, hops)`` as an order/addition-preserving integer."""
        weight, hops = entry
        if weight == math.inf or hops == math.inf:
            return self._inf_code
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        if hops >= self.hop_base:
            raise ValueError(
                f"hop count {hops} exceeds hop_base {self.hop_base}; "
                "construct the semiring with a larger hop_base"
            )
        return int(weight) * self.hop_base + int(hops)

    def decode(self, code: int) -> AugmentedEntry:
        """Inverse of :meth:`encode` (any code >= the infinity code is ∞)."""
        if code >= self._inf_code:
            return self._zero
        weight, hops = divmod(int(code), self.hop_base)
        return AugmentedEntry(weight, hops)

    @property
    def inf_code(self) -> int:
        """The integer encoding of the additive identity (∞, ∞)."""
        return self._inf_code

    def make(self, weight: float, hops: float = 1) -> AugmentedEntry:
        """Convenience constructor for an entry."""
        return AugmentedEntry(weight, hops)


def augmented_semiring_for(n: int, max_weight: float) -> AugmentedMinPlusSemiring:
    """Build an augmented semiring sized for an ``n``-node graph.

    ``max_weight`` is the largest edge weight; path weights are then at most
    ``n * max_weight``, which bounds every finite value the computation can
    produce (including sums of two path weights inside a product).
    """
    max_weight_int = int(math.ceil(max_weight)) if max_weight > 0 else 1
    weight_bound = max(2, n * max_weight_int + 1)
    hop_base = 2 * n + 2
    return AugmentedMinPlusSemiring(hop_base=hop_base, weight_bound=weight_bound)
