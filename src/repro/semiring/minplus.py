"""The tropical (min, +) semiring.

Distance products over this semiring are the classic tool relating matrix
multiplication and shortest paths: the n-th min-plus power of the weighted
adjacency matrix is the distance matrix (Section 1.1).
"""

from __future__ import annotations

import math

from repro.semiring.base import Semiring


class MinPlusSemiring(Semiring):
    """``(R ∪ {∞}, min, +, ∞, 0)``.

    The additive identity (the "zero", i.e. the absent-entry marker) is
    ``∞`` and the multiplicative identity is ``0``.
    """

    name = "min-plus"

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def add(self, x: float, y: float) -> float:
        return x if x <= y else y

    def mul(self, x: float, y: float) -> float:
        if x == math.inf or y == math.inf:
            return math.inf
        return x + y

    def is_ordered(self) -> bool:
        return True

    def less(self, x: float, y: float) -> bool:
        return x < y

    def words_per_element(self) -> int:
        return 1


#: Shared instance; the semiring is stateless.
MIN_PLUS = MinPlusSemiring()
