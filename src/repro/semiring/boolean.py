"""The Boolean semiring.

Used to define the cancellation-free product density ``ρ̂_{ST}`` of
Section 2.1 (the density of ``Ŝ·T̂`` over the Boolean semiring) and for
reachability-style sanity tests.
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class BooleanSemiring(Semiring):
    """``({0, 1}, or, and, 0, 1)``."""

    name = "boolean"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, x: bool, y: bool) -> bool:
        return bool(x or y)

    def mul(self, x: bool, y: bool) -> bool:
        return bool(x and y)

    def is_ordered(self) -> bool:
        # "or" is max, not min, so the filtered-multiplication machinery
        # (which requires addition to be min) does not apply.
        return False

    def words_per_element(self) -> int:
        return 1


#: Shared instance; the semiring is stateless.
BOOLEAN = BooleanSemiring()
