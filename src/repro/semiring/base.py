"""The semiring protocol shared by all matrix algorithms.

Section 1.5 of the paper assumes a semiring ``(R, +, ·, 0, 1)`` whose
elements fit in ``O(log n)``-bit messages.  Section 2.2 additionally assumes,
for the *filtered* multiplication, that the semiring carries a total order
under which addition is ``min``.  The :class:`Semiring` base class captures
both requirements; semirings that do not support ordering raise from the
ordering hooks.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, List


class Semiring(abc.ABC):
    """Abstract semiring ``(R, +, ·, 0, 1)``.

    Concrete subclasses define the carrier implicitly through their ``add``
    and ``mul`` implementations; matrices store only non-``zero`` entries.
    """

    #: Human-readable name used in reports and reprs.
    name: str = "semiring"

    # -- constants -----------------------------------------------------
    @property
    @abc.abstractmethod
    def zero(self) -> Any:
        """Additive identity (the entry value treated as "absent")."""

    @property
    @abc.abstractmethod
    def one(self) -> Any:
        """Multiplicative identity."""

    # -- operations ----------------------------------------------------
    @abc.abstractmethod
    def add(self, x: Any, y: Any) -> Any:
        """Semiring addition."""

    @abc.abstractmethod
    def mul(self, x: Any, y: Any) -> Any:
        """Semiring multiplication."""

    # -- ordering (needed for filtered multiplication) -----------------
    def is_ordered(self) -> bool:
        """Return ``True`` if addition is ``min`` over a total order."""
        return False

    def less(self, x: Any, y: Any) -> bool:
        """Total order used by filtering; only valid if :meth:`is_ordered`."""
        raise TypeError(f"{self.name} semiring is not ordered")

    # -- helpers --------------------------------------------------------
    def is_zero(self, x: Any) -> bool:
        """Return ``True`` if ``x`` equals the additive identity."""
        return x == self.zero

    def sum(self, values: Iterable[Any]) -> Any:
        """Fold :meth:`add` over ``values`` (returns ``zero`` when empty)."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def smallest(self, values: Iterable[Any], count: int) -> List[Any]:
        """Return the ``count`` smallest values under :meth:`less`.

        Only valid for ordered semirings; used by row filtering.
        """
        if not self.is_ordered():
            raise TypeError(f"{self.name} semiring is not ordered")
        items = list(values)
        items.sort(key=self._sort_key)
        return items[:count]

    def _sort_key(self, x: Any) -> Any:
        """Key used for sorting; overridable for speed."""
        return x

    # -- message-size accounting ---------------------------------------
    def words_per_element(self) -> int:
        """How many O(log n)-bit machine words one element occupies.

        The Congested Clique accounting layer multiplies message counts by
        this factor; the plain min-plus semiring uses one word, the augmented
        semiring (weight, hops) uses two.
        """
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} semiring>"
