"""Semirings used by the matrix-multiplication based distance tools.

The paper computes distance products over the min-plus (tropical) semiring
and, for the distance tools of Section 3, over an *augmented* min-plus
semiring whose elements are ``(weight, hops)`` pairs ordered
lexicographically.  This package provides those semirings behind a small
common protocol, plus an order-preserving integer encoding of the augmented
semiring that lets local product computations run on numpy int64 arrays.
"""

from repro.semiring.base import Semiring
from repro.semiring.minplus import MinPlusSemiring, MIN_PLUS
from repro.semiring.boolean import BooleanSemiring, BOOLEAN
from repro.semiring.augmented import (
    AugmentedMinPlusSemiring,
    AugmentedEntry,
    augmented_semiring_for,
)

__all__ = [
    "Semiring",
    "MinPlusSemiring",
    "MIN_PLUS",
    "BooleanSemiring",
    "BOOLEAN",
    "AugmentedMinPlusSemiring",
    "AugmentedEntry",
    "augmented_semiring_for",
]
