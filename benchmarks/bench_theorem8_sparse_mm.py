"""E-T8: output-sensitive sparse matrix multiplication (Theorem 8).

Regenerates the comparison the paper draws in Sections 1.3 and 2.1: the
Theorem 8 algorithm matches the CLT18 sparse algorithm when the product is
dense and beats it when the product is sparse, while the dense 3D algorithm
pays Θ(n^{1/3}) regardless.
"""

from __future__ import annotations

from _harness import experiment_t8_sparse_mm, format_table
from conftest import run_experiment


def test_theorem8_sparse_mm(benchmark):
    n = 256
    rows = run_experiment(benchmark, experiment_t8_sparse_mm, n)
    print()
    print(format_table(f"E-T8: sparse MM round costs (n={n})", rows))
    for row in rows:
        # Theorem 8 is never meaningfully worse than CLT18 (same machinery,
        # better or equal output estimate; integer rounding of the split
        # parameters can shift individual runs by a few constant rounds).
        assert row["thm8_rounds"] <= row["clt18_rounds"] + 6
    # The separation the paper claims: on polynomially-dense inputs with a
    # sparse product (block-diagonal workloads) Theorem 8 is strictly
    # cheaper than CLT18, and both sparse algorithms beat the dense 3D
    # algorithm; on fully dense instances the dense algorithm wins.
    mid = next(r for r in rows if "n^(3/4)" in r["workload"])
    assert mid["thm8_rounds"] < mid["clt18_rounds"]
    dense_row = next(r for r in rows if "dense rho=n" in r["workload"])
    assert dense_row["dense_rounds"] <= dense_row["thm8_rounds"]


def test_theorem8_scaling_with_size(benchmark):
    """Round cost of Theorem 8 on fixed-density inputs grows sublinearly."""
    from _harness import _random_sparse_matrix
    from repro import output_sensitive_mm

    def run():
        measurements = []
        for n in (48, 96, 192):
            S = _random_sparse_matrix(n, 4, 1)
            T = _random_sparse_matrix(n, 4, 2)
            result = output_sensitive_mm(S, T)
            measurements.append({"n": n, "rounds": result.rounds})
        return measurements

    rows = run_experiment(benchmark, run)
    print()
    print(format_table("E-T8b: Theorem 8 scaling, per-row density 4", rows))
    # constant density => the (rho_S rho_T rho_P)^{1/3} / n^{2/3} term shrinks
    # with n, so rounds must not grow faster than linearly in n.
    assert rows[-1]["rounds"] <= rows[0]["rounds"] * (192 / 48)
