"""E-OBS: observability overhead on the fleet serving path.

Drives a closed-loop single-pair workload through a real 2-worker
``Cluster`` + ``Frontend`` and measures what turning observability on
costs::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --json

Two design facts shape the measurement:

* **Metrics are zero-cost by construction.**  Every tier mirrors its
  plain-int counters onto the registry through weakref *callbacks*
  (``set_function``), evaluated only when ``/metricsz`` is scraped —
  there is no registry code on the dist()/gather() hot paths to
  measure.  What does run per-request is **tracing**: sampled requests
  carry a trace blob across the wire and every tier appends spans.  So
  the bench toggles tracing (and the client-side enabled flag) and
  keeps the worker fleet identical.
* **Shared machines cannot resolve single-digit percent differences
  across independent runs** (cluster spawn, connection setup, and
  neighbour load swamp them).  The bench therefore runs *paired
  segments inside one cluster lifetime* — same processes, same
  connections — alternating the untraced baseline with the traced
  configuration, flipping which of the two runs first on every pair,
  and reports the **median of per-pair throughput ratios**.  Pairing
  cancels drift; order-flipping cancels warm-up bias.

Configurations per pair:

* **off**     — trace sampling 0 and client-side metrics disabled: the
  fast-path baseline a deployment can always fall back to;
* **sampled** — ``REPRO_TRACE_SAMPLE=0.01``: the production default.
  One request in a hundred carries a full cross-tier trace.  The <5%
  overhead gate applies to this configuration;
* **full**    — sampling 1.0, every request traced: the informational
  worst case (separate pairs, never gated).

During the run the frontend's fleet ``/metricsz`` aggregator is scraped
twice; the bench asserts the key series exist, both workers were
merged, and the request counters grew between scrapes — the
instrumented configuration is verified to actually be observing, not
just slower.

``--smoke`` runs fewer/shorter pairs and *gates*: non-zero exit when
the sampled-configuration overhead exceeds ``--max-overhead`` (default
5%) or when the scrape assertions fail.  CI runs the smoke mode.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from _harness import format_table

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

N = 256
NUM_SHARDS = 4
NUM_WORKERS = 2
CONCURRENCY = 64

#: The production trace-sampling rate the overhead gate applies to.
SAMPLED_RATE = 0.01

#: Series the mid-run scrape must find in the frontend's fleet snapshot.
REQUIRED_SERIES = (
    "repro_serve_requests_total",
    "repro_net_frames_in_total",
    "repro_engine_queries_total",
)


def _configure(metrics: bool, sample: float) -> None:
    """Flip the client/frontend tiers' instrumentation in-process."""
    from repro.obs.metrics import set_enabled
    from repro.obs.tracing import set_sample_rate

    set_enabled(metrics)
    set_sample_rate(sample)


def _served_total(snapshot: dict) -> float:
    values = snapshot.get("counters", {}).get(
        "repro_serve_requests_total", {}).get("values", {})
    return sum(values.values())


async def _closed_loop(client, pairs) -> float:
    """Drive ``pairs`` through coalesced dist() at fixed concurrency."""
    iterator = iter(pairs)

    async def worker():
        for u, v in iterator:
            await client.dist(u, v)

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(CONCURRENCY)))
    return len(pairs) / (time.perf_counter() - start)


async def _measure_pairs(client, pairs, sample: float, count: int) -> list:
    """``count`` paired off/traced segments; per-pair qps ratios.

    The two segments of a pair run back to back on the same warm
    connections; which one goes first flips every pair so that any
    monotone drift (cache warm-up, neighbour load ramping) hits both
    configurations symmetrically.
    """
    ratios = []
    for index in range(count):
        off_first = index % 2 == 0
        qps = {}
        for config in (("off", "traced") if off_first
                       else ("traced", "off")):
            if config == "off":
                _configure(metrics=False, sample=0.0)
            else:
                _configure(metrics=True, sample=sample)
            qps[config] = await _closed_loop(client, pairs)
        ratios.append({"off_first": off_first, "qps_off": qps["off"],
                       "qps_traced": qps["traced"],
                       "ratio": qps["traced"] / qps["off"]})
    return ratios


def run_campaign(smoke: bool) -> dict:
    from repro.net.bench import synthetic_sharded_artifact
    from repro.net.cluster import Cluster, free_port
    from repro.net.frontend import Frontend, NetClient
    from repro.obs.export import fetch_snapshot
    from repro.obs.tracing import get_tracer

    queries = 3_000 if smoke else 10_000
    sampled_pairs = 5 if smoke else 10
    full_pairs = 2 if smoke else 3
    pairs = [(index % N, (index * 13 + 7) % N) for index in range(queries)]

    # Workers spawn with metrics enabled — the deployed condition.  Their
    # counters are callback-mirrored ints, so this adds no hot-path work;
    # what tracing costs them is governed by the blobs the client sends.
    os.environ["REPRO_METRICS"] = "1"
    os.environ["REPRO_TRACE_SAMPLE"] = "0"
    traces_before = get_tracer().finished
    scrape: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        manifest = synthetic_sharded_artifact(
            Path(tmp), n=N, num_shards=NUM_SHARDS, seed=31)
        with Cluster([str(manifest)], num_workers=NUM_WORKERS) as cluster:

            async def drive():
                frontend = Frontend([str(manifest)], cluster.addresses,
                                    port=free_port(), request_timeout=10.0)
                await frontend.start()
                try:
                    async with NetClient(*frontend.address,
                                         client="bench-obs",
                                         coalesce_window=0.0005) as client:
                        # Warm connections + engine mmaps out of the timing.
                        _configure(metrics=True, sample=0.0)
                        await client.batch(pairs[:64])
                        await _closed_loop(client, pairs)

                        sampled = await _measure_pairs(
                            client, pairs, SAMPLED_RATE, sampled_pairs)
                        mid = await asyncio.to_thread(
                            fetch_snapshot, frontend.host, frontend.port)
                        scrape["mid_served"] = _served_total(mid)
                        scrape["missing_series"] = [
                            name for name in REQUIRED_SERIES
                            if name not in mid.get("counters", {})]
                        scrape["fleet"] = mid.get("fleet")

                        full = await _measure_pairs(
                            client, pairs, 1.0, full_pairs)
                        end = await asyncio.to_thread(
                            fetch_snapshot, frontend.host, frontend.port)
                        scrape["end_served"] = _served_total(end)
                        return sampled, full
                finally:
                    await frontend.stop()

            sampled, full = asyncio.run(drive())
    _configure(metrics=True, sample=0.0)  # leave the process observable

    sampled_ratio = statistics.median(entry["ratio"] for entry in sampled)
    full_ratio = statistics.median(entry["ratio"] for entry in full)
    return {
        "primitive": "obs_overhead",
        "n": N,
        "num_workers": NUM_WORKERS,
        "queries_per_segment": queries,
        "concurrency": CONCURRENCY,
        "sampled_rate": SAMPLED_RATE,
        "sampled_pairs": sampled,
        "full_pairs": full,
        "qps_off_median": statistics.median(
            entry["qps_off"] for entry in sampled),
        "qps_sampled_median": statistics.median(
            entry["qps_traced"] for entry in sampled),
        "overhead_pct": 100.0 * (1.0 - sampled_ratio),
        "overhead_full_pct": 100.0 * (1.0 - full_ratio),
        "traces_finished": get_tracer().finished - traces_before,
        "scrape": scrape,
        "scrape_failures": scrape_failures(scrape),
    }


def scrape_failures(scrape: dict) -> list:
    """The instrumented fleet must demonstrably be observing."""
    failures = []
    if scrape.get("missing_series"):
        failures.append(f"series absent from fleet snapshot: "
                        f"{scrape['missing_series']}")
    fleet = scrape.get("fleet") or {}
    if fleet.get("workers_scraped") != NUM_WORKERS:
        failures.append(f"frontend scraped {fleet.get('workers_scraped')} "
                        f"of {NUM_WORKERS} workers")
    if not scrape.get("end_served", 0) > scrape.get("mid_served", 0):
        failures.append(f"repro_serve_requests_total did not grow between "
                        f"scrapes ({scrape.get('mid_served')} -> "
                        f"{scrape.get('end_served')})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="write results as JSON (default: BENCH_PR8.json at the repo "
             "root for full runs, BENCH_PR8.smoke.json for --smoke runs)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer/shorter segment pairs + hard gate on --max-overhead "
             "and on the fleet-scrape assertions (CI mode)")
    parser.add_argument(
        "--max-overhead", type=float, default=5.0,
        help="maximum tolerated throughput overhead in percent for the "
             "production (sampled) configuration (default 5)")
    args = parser.parse_args(argv)

    results = run_campaign(smoke=args.smoke)
    print(format_table(
        "E-OBS: paired fleet throughput — untraced vs sampled (gated) "
        "vs full tracing",
        [{key: value for key, value in results.items()
          if key not in ("sampled_pairs", "full_pairs", "scrape",
                         "scrape_failures")}]))

    status = 0
    for failure in results["scrape_failures"]:
        print(f"SCRAPE FAILURE: {failure}")
        status = 1
    if results["traces_finished"] == 0:
        print("SCRAPE FAILURE: instrumented segments finished zero traces")
        status = 1
    overhead = results["overhead_pct"]
    if overhead > args.max_overhead:
        print(f"OVERHEAD GATE FAILED: {overhead:.2f}% > "
              f"{args.max_overhead:.2f}% allowed at sample rate "
              f"{SAMPLED_RATE}")
        status = 1
    else:
        print(f"overhead gate OK: {overhead:.2f}% <= "
              f"{args.max_overhead:.2f}% allowed (full tracing: "
              f"{results['overhead_full_pct']:.2f}%)")

    if args.json is not None:
        default_name = ("BENCH_PR8.smoke.json" if args.smoke
                        else "BENCH_PR8.json")
        path = Path(args.json) if args.json else DEFAULT_OUT.parent / default_name
        payload = {
            "schema": "bench-pr8/v2",
            "smoke": args.smoke,
            "max_overhead_pct": args.max_overhead,
            "results": {"obs_overhead": results},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
