"""E-T28: weighted APSP approximations (Section 6.1 and Theorem 28).

Runs both weighted APSP variants on two workloads and reports measured
stretch against the proven guarantees, plus simulated rounds against the
O(log² n / ε) bound.
"""

from __future__ import annotations

from _harness import experiment_t28_apsp_weighted, format_table
from conftest import run_experiment


def test_theorem28_apsp_weighted(benchmark):
    rows = run_experiment(benchmark, experiment_t28_apsp_weighted, 80)
    print()
    print(format_table("E-T28: weighted APSP (eps=0.5)", rows))
    for row in rows:
        if row["variant"] == "3+eps":
            assert row["max_stretch"] <= row["stretch_bound"] + 1e-6
        else:
            # the (2+eps, (1+eps)W) guarantee is multiplicative 2+eps plus an
            # additive term; pure stretch can exceed 2.5 only because of the
            # additive (1+eps)W component, so 3.5 is a safe envelope here and
            # the per-pair guarantee is asserted exactly in the test suite.
            assert row["max_stretch"] <= 3.5 + 1e-6
