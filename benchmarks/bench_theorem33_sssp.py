"""E-T33: exact SSSP via k-shortcuts (Theorem 33).

Sweeps grid sizes (large shortest-path diameter) and compares the Theorem 33
round count against the plain Bellman-Ford baseline; the algorithm must stay
exact and its Bellman-Ford phase must need far fewer iterations than the
baseline's.
"""

from __future__ import annotations

from _harness import experiment_t33_sssp, format_table
from conftest import run_experiment


def test_theorem33_sssp(benchmark):
    rows = run_experiment(benchmark, experiment_t33_sssp, (36, 64, 100, 144, 196))
    print()
    print(format_table("E-T33: exact SSSP on weighted grids", rows))
    for row in rows:
        assert row["exact"]
        # the shortcut graph reduces the Bellman-Ford iterations well below
        # the baseline's round count on every size
        assert row["thm33_bf_iterations"] <= row["bellman_ford_rounds"]
    # Shape: baseline rounds grow like the grid diameter ~ sqrt(n); the
    # shortcut iterations grow far slower.
    first, last = rows[0], rows[-1]
    baseline_growth = last["bellman_ford_rounds"] / first["bellman_ford_rounds"]
    ours_growth = last["thm33_bf_iterations"] / max(1, first["thm33_bf_iterations"])
    assert ours_growth <= baseline_growth
