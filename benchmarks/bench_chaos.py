"""Chaos campaign: availability and correctness under injected faults.

Every scenario spins up a fresh 2-worker fleet, activates one fault
family (or none, for the baseline) via the ``REPRO_CHAOS`` environment
the workers inherit, drives a closed-loop per-pair workload through the
front tier with client-side timeouts, and replays every answered pair
against a direct engine.  The campaign is the PR's acceptance argument
in executable form:

* **baseline** — no faults; calibrates the P99 the inflation gate is
  measured against.
* **delay / drop_connection / corrupt_frame / overload / slow_worker**
  — one runtime fault family each, exercising retries, link teardown +
  reconnect, circuit breakers, and hedged requests respectively.
* **stuck_worker** — a worker whose event loop wedges; the cluster
  supervisor detects the stalled ``/healthz``, SIGKILLs, and respawns
  it while the breaker keeps traffic away.
* **corrupt_shard** — each worker serves its *own copy* of the
  artifact and one copy's shard is bit-rotted on disk; the integrity
  pipeline (checksum re-verify -> quarantine -> typed
  ``ERR_DATA_INTEGRITY``) must convert silent corruption into failover,
  never into a wrong answer.
* **bad_day** — all of the above at once, sized like a genuinely bad
  day.  Gates: availability >= 99%, **zero** wrong answers, P99 within
  a bounded multiple of baseline.

Full runs write ``BENCH_PR9.json`` at the repo root; ``--smoke`` runs a
reduced scenario set and exits non-zero if any gate fails — CI's
``chaos-smoke`` job runs it on every push.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.chaos.disk import apply_disk_faults
from repro.chaos.plan import CHAOS_ENV_VAR, FaultPlan, FaultSpec
from repro.net.bench import NET_ERROR_TYPES, synthetic_sharded_artifact
from repro.net.cluster import Cluster, free_port
from repro.net.frontend import Frontend, NetClient
from repro.serve.loadgen import count_mismatches, run_closed_loop, zipf_pairs
from repro.serve.registry import build_registry

#: Committed campaign results (written by full runs, shipped with the repo).
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_PR9.json"

#: Acceptance gates (also asserted by the CI chaos-smoke run).
AVAILABILITY_FLOOR = 0.99
P99_INFLATION_FACTOR = 25.0
P99_CEILING_FLOOR_US = 250_000.0  # inflation gate never tighter than this

#: Client-side per-request timeout — the load loop must never hang on a
#: wedged fleet, which is half the point of the exercise.
CLIENT_TIMEOUT_S = 10.0


def scenario_plans(seed: int) -> Dict[str, Optional[FaultPlan]]:
    """Scenario name -> fault plan (None = no chaos).

    Probabilities are per *frame* at the injection site, so a 1% drop
    fails ~1% of coalesced batches before retry — noticeable, survivable.
    ``corrupt_shard`` entries here mark scenarios that also rot worker
    1's on-disk artifact copy (applied by the harness, not the
    injector).
    """

    def plan(*faults: FaultSpec) -> FaultPlan:
        return FaultPlan(faults=faults, seed=seed)

    return {
        "baseline": None,
        "delay": plan(
            FaultSpec(kind="delay", site="worker.gather",
                      probability=0.10, ms=30)),
        "drop_connection": plan(
            FaultSpec(kind="drop_connection", site="worker.recv",
                      probability=0.01),
            FaultSpec(kind="drop_connection", site="worker.send",
                      probability=0.01)),
        "corrupt_frame": plan(
            FaultSpec(kind="corrupt_frame", site="worker.send",
                      probability=0.01)),
        "overload": plan(
            FaultSpec(kind="shed", site="worker.recv", probability=0.004),
            FaultSpec(kind="error_frame", site="worker.recv",
                      probability=0.004)),
        "slow_worker": plan(
            FaultSpec(kind="slow_worker", site="worker.gather",
                      workers=(1,), ms=80)),
        # 4s stall > the supervisor's ~2.5s detection window (two failed
        # 1s-timeout probes, 0.25s apart) — the worker IS killed and
        # respawned, not merely waited out.
        "stuck_worker": plan(
            FaultSpec(kind="stuck_worker", site="worker.recv",
                      workers=(1,), probability=1.0, limit=1, ms=4000)),
        # Shard 1 routes to worker 1 by affinity (shard % workers), and
        # worker 1's copy is the one the harness rots — so the corrupted
        # data sits exactly where the primary attempts land.
        "corrupt_shard": plan(
            FaultSpec(kind="corrupt_shard", shard=1, flips=4096)),
        "bad_day": plan(
            FaultSpec(kind="delay", site="worker.gather",
                      probability=0.05, ms=30),
            FaultSpec(kind="drop_connection", site="worker.recv",
                      probability=0.01),
            FaultSpec(kind="corrupt_frame", site="worker.send",
                      probability=0.01),
            FaultSpec(kind="shed", site="worker.recv", probability=0.004),
            FaultSpec(kind="error_frame", site="worker.recv",
                      probability=0.004),
            FaultSpec(kind="slow_worker", site="worker.gather",
                      workers=(1,), ms=50),
            FaultSpec(kind="corrupt_shard", shard=1, flips=4096)),
    }


#: Scenarios that SIGKILL/respawn workers, so the supervisor runs.
SUPERVISED = {"stuck_worker", "bad_day"}

SMOKE_SCENARIOS = ("baseline", "drop_connection", "corrupt_shard", "bad_day")


class PerWorkerArtifactCluster(Cluster):
    """A cluster whose workers each serve a private copy of the artifact.

    Same artifact *names* (the wire routes by name), different files —
    so the corrupt_shard scenarios poison exactly one worker's data and
    the front tier's integrity failover can route around it.
    """

    def __init__(self, per_worker_paths: Sequence[Sequence[str]], **kwargs):
        super().__init__(list(per_worker_paths[0]),
                         num_workers=len(per_worker_paths), **kwargs)
        self._per_worker_paths = [[str(path) for path in paths]
                                  for paths in per_worker_paths]

    def _spawn(self, index: int) -> None:
        saved = self.artifact_paths
        self.artifact_paths = self._per_worker_paths[index]
        try:
            super()._spawn(index)
        finally:
            self.artifact_paths = saved


def make_worker_copies(manifest: Path, workers: int,
                       root: Path) -> List[Path]:
    """One private copy of the sharded artifact directory per worker."""
    copies: List[Path] = []
    for index in range(workers):
        worker_dir = root / f"worker-{index}"
        shutil.copytree(manifest.parent, worker_dir)
        copies.append(worker_dir / manifest.name)
    return copies


async def run_scenario(name: str, plan: Optional[FaultPlan],
                       manifests: Sequence[Path], pairs, reference,
                       *, concurrency: int) -> Dict[str, object]:
    """One fleet, one fault plan, one verified closed-loop run."""
    supervise = name in SUPERVISED
    if plan is not None and plan.disk_faults:
        # Rot worker 1's private copy only; worker 0 stays the truth.
        apply_disk_faults(plan, manifests[1])
    if plan is not None and plan.runtime_faults:
        os.environ[CHAOS_ENV_VAR] = plan.to_json()
    else:
        os.environ.pop(CHAOS_ENV_VAR, None)
    try:
        cluster = PerWorkerArtifactCluster(
            [[str(path)] for path in manifests],
            supervise=supervise, supervise_interval=0.25, stuck_after=2,
            respawn_backoff=0.25)
        with cluster:
            frontend = Frontend([str(manifests[0])], cluster.addresses,
                                port=free_port(), request_timeout=1.0,
                                breaker_cooldown=0.25)
            await frontend.start()
            try:
                started = time.perf_counter()
                async with NetClient(*frontend.address, client=name,
                                     request_timeout=8.0) as client:
                    report = await run_closed_loop(
                        client, pairs, concurrency=concurrency, client=name,
                        error_types=NET_ERROR_TYPES,
                        timeout=CLIENT_TIMEOUT_S)
                duration = time.perf_counter() - started
                mismatches = count_mismatches(pairs, report.answers,
                                              reference)
                stats = frontend.stats()
                breakers = [link.snapshot()["breaker"]
                            for link in frontend.links()]
            finally:
                await frontend.stop()
            fleet = cluster.describe()
    finally:
        os.environ.pop(CHAOS_ENV_VAR, None)
    return {
        "scenario": name,
        "plan": json.loads(plan.to_json()) if plan is not None else None,
        "supervised": supervise,
        "requested": report.requested,
        "completed": report.completed,
        "errors": report.errors,
        "timeouts": report.timeouts,
        "shed": report.shed,
        "availability": report.availability,
        "error_taxonomy": dict(report.error_taxonomy),
        "mismatches": mismatches,
        "duration_s": duration,
        "qps": report.achieved_qps,
        "p50_us": report.latency.get("p50_us"),
        "p95_us": report.latency.get("p95_us"),
        "p99_us": report.latency.get("p99_us"),
        "frontend": {key: stats.get(key) for key in (
            "retries", "failovers", "ejections", "readmits", "hedges",
            "hedge_wins", "deadline_rejections")},
        "breakers": breakers,
        "cluster": {"respawns": fleet["respawns"],
                    "stuck_kills": fleet["stuck_kills"]},
    }


async def run_campaign(manifest: Path, scenarios: Sequence[str], *,
                       workers: int, queries: int, bad_day_queries: int,
                       concurrency: int, seed: int,
                       copies_root: Path) -> Dict[str, object]:
    plans = scenario_plans(seed)
    ref_registry = build_registry([str(manifest)])
    reference = ref_registry.engine(ref_registry.entries()[0].name)
    n = ref_registry.entries()[0].n

    results: Dict[str, object] = {}
    for index, name in enumerate(scenarios):
        count = bad_day_queries if name == "bad_day" else queries
        pairs = zipf_pairs(n, count, skew=1.0, seed=seed + index)
        scenario_root = copies_root / name
        manifests = make_worker_copies(manifest, workers, scenario_root)
        print(f"-- {name}: {count} queries over {workers} workers --",
              flush=True)
        row = await run_scenario(name, plans[name], manifests, pairs,
                                 reference, concurrency=concurrency)
        shutil.rmtree(scenario_root, ignore_errors=True)
        results[name] = row
        print(f"  availability {row['availability']:.4f}, "
              f"P99 {row['p99_us'] or 0:.0f}us, "
              f"{row['mismatches']} mismatches, "
              f"errors {row['error_taxonomy']}, "
              f"failovers {row['frontend']['failovers']}, "
              f"hedges {row['frontend']['hedges']}, "
              f"respawns {row['cluster']['respawns']}", flush=True)
    return results


def gate_failures(results: Dict[str, object]) -> List[str]:
    """Acceptance-gate violations (empty list = pass)."""
    failures: List[str] = []
    for name, row in results.items():
        if row["mismatches"]:
            failures.append(
                f"correctness gate: {name} returned {row['mismatches']} "
                f"wrong answers (must be zero)")
        if row["availability"] < AVAILABILITY_FLOOR:
            failures.append(
                f"availability gate: {name} at "
                f"{row['availability']:.4f} < {AVAILABILITY_FLOOR}")
    baseline = results.get("baseline")
    bad_day = results.get("bad_day")
    if baseline and bad_day and baseline.get("p99_us") and \
            bad_day.get("p99_us"):
        ceiling = max(P99_CEILING_FLOOR_US,
                      P99_INFLATION_FACTOR * baseline["p99_us"])
        if bad_day["p99_us"] > ceiling:
            failures.append(
                f"latency gate: bad_day P99 {bad_day['p99_us']:.0f}us > "
                f"ceiling {ceiling:.0f}us "
                f"({P99_INFLATION_FACTOR}x baseline "
                f"{baseline['p99_us']:.0f}us)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_chaos",
        description="availability + correctness under injected faults")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scenario set; gates only")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--n", type=int, default=512,
                        help="synthetic artifact size (nodes)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per scenario (default 1500 smoke / "
                             "3000)")
    parser.add_argument("--bad-day-queries", type=int, default=None,
                        dest="bad_day_queries",
                        help="queries for the combined plan (default 2000 "
                             "smoke / 10000)")
    parser.add_argument("--concurrency", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset to run")
    parser.add_argument("--out", type=Path, default=None,
                        help=f"summary JSON (default {DEFAULT_OUT.name} on "
                             f"full runs)")
    args = parser.parse_args(argv)

    all_scenarios = tuple(scenario_plans(args.seed))
    if args.scenarios:
        scenarios = tuple(name.strip() for name in args.scenarios.split(","))
        unknown = set(scenarios) - set(all_scenarios)
        if unknown:
            parser.error(f"unknown scenarios: {', '.join(sorted(unknown))}")
    else:
        scenarios = SMOKE_SCENARIOS if args.smoke else all_scenarios
    queries = args.queries or (1_500 if args.smoke else 3_000)
    bad_day_queries = args.bad_day_queries or (2_000 if args.smoke
                                               else 10_000)
    out = args.out or (None if args.smoke else DEFAULT_OUT)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as tmp:
        artifact_dir = Path(tmp) / "artifact"
        artifact_dir.mkdir()
        manifest = synthetic_sharded_artifact(
            artifact_dir, n=args.n, num_shards=args.shards, seed=args.seed)
        results = asyncio.run(run_campaign(
            manifest, scenarios, workers=args.workers, queries=queries,
            bad_day_queries=bad_day_queries, concurrency=args.concurrency,
            seed=args.seed, copies_root=Path(tmp) / "copies"))

    document = {
        "schema": "bench-pr9/v1",
        "smoke": bool(args.smoke),
        "config": {
            "workers": args.workers, "n": args.n, "shards": args.shards,
            "queries": queries, "bad_day_queries": bad_day_queries,
            "concurrency": args.concurrency, "seed": args.seed,
            "scenarios": list(scenarios),
            "client_timeout_s": CLIENT_TIMEOUT_S,
        },
        "gates": {"availability_floor": AVAILABILITY_FLOOR,
                  "p99_inflation_factor": P99_INFLATION_FACTOR,
                  "p99_ceiling_floor_us": P99_CEILING_FLOOR_US},
        "results": results,
    }
    if out is not None:
        out.write_text(json.dumps(document, indent=2, sort_keys=True,
                                  default=repr) + "\n")
        print(f"wrote {out}")

    failures = gate_failures(results)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
