"""E-T18: the k-nearest problem (Theorem 18).

Sweeps k and reports measured rounds next to the theoretical
O((k/n^{2/3} + log n) log k) expression; also asserts that the computed
distances are exact (the theorem's correctness claim).
"""

from __future__ import annotations

from _harness import experiment_t18_k_nearest, format_table
from conftest import run_experiment


def test_theorem18_k_nearest(benchmark):
    rows = run_experiment(benchmark, experiment_t18_k_nearest, 96)
    print()
    print(format_table("E-T18: k-nearest rounds vs k (n=96)", rows))
    assert all(row["exact_distances"] for row in rows)
    # Rounds are monotone (weakly) in k and stay within a constant factor of
    # the bound's growth: compare the largest-k and smallest-k ratios.
    first, last = rows[0], rows[-1]
    measured_growth = last["rounds"] / first["rounds"]
    bound_growth = last["bound"] / first["bound"]
    assert measured_growth <= 6 * bound_growth
