"""E-T2: (2 + ε)-approximate unweighted APSP (Theorems 2 and 31).

Runs the full Section 6.3 algorithm on three unweighted workloads and two ε
values; measured stretch must stay within 2 + ε and rounds are reported next
to the O(log² n / ε) bound.
"""

from __future__ import annotations

from _harness import experiment_t2_apsp_unweighted, format_table
from conftest import run_experiment


def test_theorem2_apsp_unweighted(benchmark):
    rows = run_experiment(benchmark, experiment_t2_apsp_unweighted, 80)
    print()
    print(format_table("E-T2: unweighted APSP (Theorem 2 / 31)", rows))
    for row in rows:
        assert row["max_stretch"] <= row["stretch_bound"] + 1e-6
