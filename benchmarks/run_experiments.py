#!/usr/bin/env python3
"""Regenerate every paper-vs-measured table recorded in EXPERIMENTS.md.

Runs all experiments from :mod:`benchmarks._harness` (the same code paths
the pytest-benchmark suite exercises) and prints the tables to stdout.

Usage::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py t3 t25     # a subset, by id
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _harness as harness  # noqa: E402

EXPERIMENTS = {
    "t8": ("E-T8: output-sensitive sparse MM (Theorem 8), n=256", lambda: harness.experiment_t8_sparse_mm(256)),
    "t14": ("E-T14: filtered MM (Theorem 14), star workload, n=96", lambda: harness.experiment_t14_filtered(96)),
    "t18": ("E-T18: k-nearest (Theorem 18), n=96", lambda: harness.experiment_t18_k_nearest(96)),
    "t19": ("E-T19: source detection (Theorem 19), n=96", lambda: harness.experiment_t19_source_detection(96)),
    "t20": ("E-T20: distance through sets (Theorem 20), n=96", lambda: harness.experiment_t20_through_sets(96)),
    "t25": ("E-T25: hopsets (Theorem 25), n=80", lambda: harness.experiment_t25_hopsets(80)),
    "t3": ("E-T3: multi-source shortest paths (Theorem 3), n=96", lambda: harness.experiment_t3_mssp(96)),
    "t28": ("E-T28: weighted APSP (Theorem 28 / Section 6.1), n=80", lambda: harness.experiment_t28_apsp_weighted(80)),
    "t2": ("E-T2: unweighted APSP (Theorems 2/31), n=80", lambda: harness.experiment_t2_apsp_unweighted(80)),
    "t33": ("E-T33: exact SSSP (Theorem 33), weighted grids", lambda: harness.experiment_t33_sssp((36, 64, 100, 144, 196))),
    "c35": ("E-C35: diameter approximation (Claim 35)", harness.experiment_c35_diameter),
    "base": ("E-BASE: APSP family head-to-head", lambda: harness.experiment_baseline_comparison((32, 64, 96, 128))),
    "prim": ("E-PRIM: simulator primitives", lambda: harness.experiment_primitives((8, 12, 16, 24))),
    "oracle": ("E-ORACLE: distance-oracle query throughput, n=256", lambda: harness.experiment_oracle_queries(256, 20_000)),
    "kern": ("E-KERN: local product kernels (dict vs csr vs dense)", lambda: harness.experiment_kernel_primitives((64, 256))),
    "batch": ("E-KERN: QueryEngine.batch vs per-pair loop, n=64", lambda: harness.experiment_engine_batch(64, 20_000)),
}


def main(selected: list[str]) -> None:
    chosen = selected or list(EXPERIMENTS)
    for key in chosen:
        if key not in EXPERIMENTS:
            print(f"unknown experiment id: {key}; known ids: {', '.join(EXPERIMENTS)}")
            continue
        title, runner = EXPERIMENTS[key]
        start = time.time()
        rows = runner()
        elapsed = time.time() - start
        print(harness.format_table(title, rows))
        print(f"(regenerated in {elapsed:.1f}s wall-clock)\n")


if __name__ == "__main__":
    main(sys.argv[1:])
