"""E-PLAN: stretch-budget fleet planner gates.

Standalone harness for the PR 10 planner + oracle family::

    PYTHONPATH=src python benchmarks/bench_planner.py --json

Two experiments, both gated (``--smoke`` runs the same experiments on
the same grids — the gates are cheap enough to enforce everywhere):

* **Artifact size** — build ``spanner-greedy`` and ``dense-apsp`` for
  the same n=1024 graph through the ordinary sharded save path and
  compare on-disk shard bytes.  Gate: the spanner fleet must be at most
  ``--max-size-ratio`` (default 0.5) of the dense fleet.  This is the
  paper's point made operational: a (2k-1)-spanner plus landmark rows
  replaces the quadratic table.
* **Budget violations** — for every budget in a stretch grid
  (1x, 3x, 4.5x, 9x, inf) run :func:`repro.oracle.plan_fleet` +
  :func:`repro.oracle.execute_plan` on an n=128 graph, boot the emitted
  manifest through ``build_registry`` + :class:`StretchRouter` (the same
  path ``repro net serve`` takes), and check **every** pair's answer
  against brute-force Dijkstra distances.  Gate: zero violations — the
  planner may never ship an artifact that breaks the budget that
  selected it.

Full runs write ``BENCH_PR10.json`` at the repo root so future PRs have
a committed trajectory; ``--smoke`` writes ``BENCH_PR10.smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time
from pathlib import Path

from repro.graphs import all_pairs_dijkstra
from repro.graphs.generators import random_weighted_graph
from repro.oracle import build_oracle, execute_plan, plan_fleet
from repro.serve import StretchRouter, build_registry
from repro.serve.router import StretchBudget

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Committed baseline written by full runs.
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR10.json"

#: Artifact-size experiment: one graph, both strategies, sharded save.
SIZE_GRID = dict(n=1024, degree=8.0, max_weight=32, seed=7, num_shards=4)

#: Budget-violation experiment: the stretch grid every CI run must clear.
VIOLATION_GRID = dict(n=128, degree=6.0, max_weight=16, seed=11,
                      budget_multipliers=(1.0, 3.0, 4.5, 9.0, math.inf))

#: Required spanner/dense on-disk size ratio.
MAX_SIZE_RATIO = 0.5


def run_size_experiment(n, degree, max_weight, seed, num_shards):
    """Build both artifacts sharded; report on-disk bytes and build time."""
    graph = random_weighted_graph(n, degree, max_weight=max_weight, seed=seed)
    results = {}
    for strategy in ("dense-apsp", "spanner-greedy"):
        start = time.perf_counter()
        artifact = build_oracle(graph, strategy=strategy, epsilon=0.5)
        build_s = time.perf_counter() - start
        with tempfile.TemporaryDirectory(prefix="bench-plan-") as tmp:
            _, shard_paths = artifact.save_sharded(
                Path(tmp) / strategy, num_shards)
            size = sum(path.stat().st_size for path in shard_paths)
        results[strategy] = {
            "build_seconds": round(build_s, 3),
            "sharded_bytes": size,
            "stretch": [artifact.stretch.multiplicative,
                        artifact.stretch.additive],
        }
    ratio = (results["spanner-greedy"]["sharded_bytes"]
             / results["dense-apsp"]["sharded_bytes"])
    return {
        "experiment": "artifact_size",
        "n": n,
        "degree": degree,
        "num_shards": num_shards,
        "seed": seed,
        "strategies": results,
        "spanner_over_dense_ratio": round(ratio, 4),
    }


def run_violation_experiment(n, degree, max_weight, seed,
                             budget_multipliers):
    """Plan/build/boot a fleet per budget; count stretch violations."""
    graph = random_weighted_graph(n, degree, max_weight=max_weight, seed=seed)
    exact = all_pairs_dijkstra(graph)
    pairs = [(u, v) for u in range(n) for v in range(n)]
    budgets = [StretchBudget(mult, math.inf if math.isinf(mult) else 0.0)
               for mult in budget_multipliers]
    plan = plan_fleet(graph, budgets=budgets)
    with tempfile.TemporaryDirectory(prefix="bench-plan-") as tmp:
        execution = execute_plan(plan, graph, Path(tmp) / "fleet")
        registry = build_registry([execution.manifest_path])
        router = StretchRouter(registry)
        rows = []
        for budget, choice in zip(budgets, plan.choices):
            decision = router.route(multiplicative=budget.multiplicative,
                                    additive=budget.additive)
            engine = registry.engine(decision.name)
            violations = 0
            worst = 1.0
            for (u, v), est in zip(pairs, engine.batch(pairs).tolist()):
                true = exact[u][v]
                if true == math.inf:
                    if est != math.inf:
                        violations += 1
                    continue
                if est < true - 1e-9:
                    violations += 1
                elif not math.isinf(budget.multiplicative):
                    if est > budget.multiplicative * true + 1e-9:
                        violations += 1
                    elif true > 0:
                        worst = max(worst, est / true)
            rows.append({
                "budget_multiplicative": budget.multiplicative,
                "planned_strategy": choice.strategy,
                "routed_artifact": decision.name,
                "num_shards": choice.num_shards,
                "pairs_checked": len(pairs),
                "violations": violations,
                "worst_observed_stretch": round(worst, 4),
            })
    return {
        "experiment": "budget_violations",
        "n": n,
        "degree": degree,
        "seed": seed,
        "plan_builds": [list(build) for build in plan.builds()],
        "rows": rows,
    }


def gate_failures(size_result, violation_result,
                  max_size_ratio=MAX_SIZE_RATIO):
    """Both CI gates; a non-empty list fails the run."""
    failures = []
    ratio = size_result["spanner_over_dense_ratio"]
    if ratio > max_size_ratio:
        failures.append(
            f"spanner artifact is {ratio:.1%} of dense at "
            f"n={size_result['n']} — exceeds the {max_size_ratio:.0%} cap")
    for row in violation_result["rows"]:
        if row["violations"]:
            failures.append(
                f"budget {row['budget_multiplicative']:g}x via "
                f"{row['routed_artifact']}: {row['violations']} violations "
                f"over {row['pairs_checked']} pairs")
    return failures


def format_results(size_result, violation_result) -> str:
    lines = [
        f"E-PLAN: artifact size at n={size_result['n']} "
        f"({size_result['num_shards']} shards)",
    ]
    for name, row in size_result["strategies"].items():
        lines.append(f"  {name:>16}: {row['sharded_bytes']:>10} bytes "
                     f"({row['build_seconds']:.2f}s build)")
    lines.append(f"  spanner/dense ratio: "
                 f"{size_result['spanner_over_dense_ratio']:.1%}")
    lines.append(f"E-PLAN: budget grid at n={violation_result['n']}")
    lines.append(f"{'budget':>10} {'strategy':>16} {'shards':>7} "
                 f"{'violations':>11} {'worst':>7}")
    for row in violation_result["rows"]:
        lines.append(
            f"{row['budget_multiplicative']:>9g}x "
            f"{row['planned_strategy']:>16} {row['num_shards']:>7} "
            f"{row['violations']:>11} {row['worst_observed_stretch']:>6.2f}x")
    return "\n".join(lines)


def _json_safe(value):
    """Strict JSON has no Infinity: stringify non-finite floats."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="write results as JSON (default: BENCH_PR10.json at the repo "
             "root for full runs, BENCH_PR10.smoke.json for --smoke runs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: same grids, gates enforced, smoke JSON filename",
    )
    parser.add_argument(
        "--max-size-ratio", type=float, default=MAX_SIZE_RATIO,
        help="maximum allowed spanner/dense on-disk byte ratio "
             f"(default {MAX_SIZE_RATIO})",
    )
    args = parser.parse_args(argv)

    size_result = run_size_experiment(**SIZE_GRID)
    violation_result = run_violation_experiment(**VIOLATION_GRID)
    print(format_results(size_result, violation_result))

    status = 0
    failures = gate_failures(size_result, violation_result,
                             max_size_ratio=args.max_size_ratio)
    if failures:
        print("PLANNER GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        status = 1
    else:
        print("planner gate OK (size ratio + zero budget violations)")

    if args.json is not None:
        default = "BENCH_PR10.smoke.json" if args.smoke else "BENCH_PR10.json"
        path = Path(args.json) if args.json else REPO_ROOT / default
        payload = _json_safe({
            "schema": "bench-pr10/v1",
            "smoke": args.smoke,
            "artifact_size": size_result,
            "budget_violations": violation_result,
        })
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
