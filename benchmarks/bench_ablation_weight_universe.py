"""Ablation: the log W filtering term of Theorem 14.

The filtered multiplication pays an additive O(log W) for the distributed
binary search over the value universe R'.  This ablation sweeps the weight
universe (i.e. the magnitude of the matrix entries) and confirms the round
cost grows additively and logarithmically — the design point DESIGN.md calls
out for ablation.
"""

from __future__ import annotations

import math
import random

from _harness import format_table
from conftest import run_experiment

from repro.matmul import SemiringMatrix, filtered_mm
from repro.semiring import MIN_PLUS


def _experiment(n=96):
    rng = random.Random(1)
    entries = [(i, rng.randrange(n)) for i in range(n) for _ in range(4)]
    rows = []
    for max_value in (2 ** 4, 2 ** 8, 2 ** 16, 2 ** 24):
        S = SemiringMatrix(n, MIN_PLUS)
        T = SemiringMatrix(n, MIN_PLUS)
        for (i, j) in entries:
            S.set(i, j, float(rng.randint(1, max_value)))
            T.set(j, i, float(rng.randint(1, max_value)))
        universe = 2 * max_value  # values appearing during the computation
        result = filtered_mm(S, T, rho=4, weight_universe_size=universe)
        rows.append(
            {
                "max_entry": max_value,
                "log2_universe": math.log2(universe),
                "rounds": result.rounds,
            }
        )
    return rows


def test_ablation_weight_universe(benchmark):
    rows = run_experiment(benchmark, _experiment, 96)
    print()
    print(format_table("Ablation: log W term of the filtered MM (n=96, rho=4)", rows))
    # Rounds grow with log W ...
    rounds = [row["rounds"] for row in rows]
    assert all(a <= b for a, b in zip(rounds, rounds[1:]))
    # ... and the growth is additive-logarithmic: the increase from the
    # smallest to the largest universe is within a small factor of the
    # difference of the log terms.
    delta_rounds = rows[-1]["rounds"] - rows[0]["rounds"]
    delta_log = rows[-1]["log2_universe"] - rows[0]["log2_universe"]
    assert delta_rounds <= 3 * delta_log + 5
