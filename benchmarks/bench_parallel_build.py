"""E-PAR: parallel sharded oracle build ladder.

Standalone perf harness for the process-parallel oracle build path::

    PYTHONPATH=src python benchmarks/bench_parallel_build.py --json

builds the same graph at jobs=1/2/4 through
``repro.oracle.parallel_build.build_sharded_parallel`` and records, per
job count, wall-clock seconds, the per-phase breakdown the builder
already times, and the per-shard SHA-256 digests.  Full runs write
``BENCH_PR7.json`` at the repo root so future PRs have a committed
trajectory.  ``--smoke`` runs a reduced ladder (n=1024, jobs 1 and 4)
and *gates*:

* **Always**: every job count must produce bit-identical shards (the
  per-shard SHA-256 lists must match) — parallelism may never change
  the artifact.
* **When the machine has >= 4 CPUs**: the best parallel build must be at
  least ``--min-ratio`` (default 1.5) times faster than jobs=1.  On
  smaller runners the ratio is reported but not enforced — a 1-CPU box
  cannot speed anything up, only prove bit-parity.

``bench_primitives.py --smoke`` imports ``run_ladder`` /
``gate_failures`` from here so CI exercises the gate in one entrypoint.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.graphs.generators import random_weighted_graph
from repro.oracle.parallel_build import build_sharded_parallel

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Committed baseline written by full runs.
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR7.json"

#: Full ladder: the ISSUE acceptance grid (n=2048 landmark build).
FULL_LADDER = dict(n=2048, num_shards=4, jobs_list=(1, 2, 4))

#: Smoke ladder: the CI gate grid (n=1024, serial vs 4 workers).
SMOKE_LADDER = dict(n=1024, num_shards=4, jobs_list=(1, 4))

#: Required serial/parallel build-time ratio on multi-core machines.
MIN_PARALLEL_RATIO = 1.5


def run_ladder(n, num_shards, jobs_list, *, strategy="landmark-mssp",
               degree=8.0, max_weight=32, seed=7):
    """Build one graph at each job count; return the timed ladder."""
    graph = random_weighted_graph(n, degree, max_weight=max_weight, seed=seed)
    runs = []
    for jobs in jobs_list:
        with tempfile.TemporaryDirectory(prefix="bench-par-") as tmp:
            start = time.perf_counter()
            _, shard_paths, metadata = build_sharded_parallel(
                graph, Path(tmp) / "oracle.npz", num_shards,
                strategy=strategy, jobs=jobs)
            seconds = time.perf_counter() - start
            runs.append({
                "jobs": jobs,
                "seconds": round(seconds, 3),
                "phases": metadata["build"]["phases"],
                "shard_sha256": [hashlib.sha256(p.read_bytes()).hexdigest()
                                 for p in shard_paths],
            })
    serial = runs[0]["seconds"]
    for run in runs:
        run["speedup_vs_jobs1"] = round(serial / run["seconds"], 3)
    return {
        "primitive": "sharded_build",
        "strategy": strategy,
        "n": n,
        "num_shards": num_shards,
        "degree": degree,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }


def gate_failures(ladder, min_ratio=MIN_PARALLEL_RATIO):
    """Gate a ladder: SHA parity always, speedup only on >=4-CPU boxes."""
    failures = []
    runs = ladder["runs"]
    for run in runs[1:]:
        if run["shard_sha256"] != runs[0]["shard_sha256"]:
            failures.append(
                f"jobs={run['jobs']} shards differ from jobs={runs[0]['jobs']}"
                " — parallel build is not bit-identical"
            )
    cpus = ladder.get("cpu_count") or 1
    best = max(run["speedup_vs_jobs1"] for run in runs)
    if cpus >= 4 and best < min_ratio:
        failures.append(
            f"best parallel speedup {best:.2f}x < required {min_ratio:.1f}x "
            f"(n={ladder['n']}, {cpus} CPUs)"
        )
    return failures


def format_ladder(ladder) -> str:
    lines = [
        f"E-PAR: sharded {ladder['strategy']} build, n={ladder['n']}, "
        f"{ladder['num_shards']} shards, {ladder['cpu_count']} CPUs",
        f"{'jobs':>6} {'seconds':>10} {'speedup':>9}  phases",
    ]
    for run in ladder["runs"]:
        phases = " ".join(f"{k}={v:.2f}s"
                          for k, v in sorted(run["phases"].items()))
        lines.append(f"{run['jobs']:>6} {run['seconds']:>10.3f} "
                     f"{run['speedup_vs_jobs1']:>8.2f}x  {phases}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="write results as JSON (default: BENCH_PR7.json at the repo "
             "root for full runs, BENCH_PR7.smoke.json for --smoke runs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced ladder (n=1024, jobs 1/4) with the bit-parity gate "
             "and, on >=4-CPU machines, the speedup gate",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=MIN_PARALLEL_RATIO,
        help="required best-case speedup over jobs=1 on >=4-CPU machines "
             f"(default {MIN_PARALLEL_RATIO})",
    )
    args = parser.parse_args(argv)

    config = SMOKE_LADDER if args.smoke else FULL_LADDER
    ladder = run_ladder(**config)
    print(format_ladder(ladder))

    status = 0
    failures = gate_failures(ladder, min_ratio=args.min_ratio)
    if failures:
        print("PARALLEL BUILD GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        status = 1
    else:
        cpus = ladder.get("cpu_count") or 1
        scope = ("bit-parity + speedup" if cpus >= 4
                 else f"bit-parity only ({cpus} CPU)")
        print(f"parallel build gate OK ({scope})")

    if args.json is not None:
        default = "BENCH_PR7.smoke.json" if args.smoke else "BENCH_PR7.json"
        path = Path(args.json) if args.json else REPO_ROOT / default
        payload = {"schema": "bench-pr7/v1", "smoke": args.smoke,
                   "ladder": ladder}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
