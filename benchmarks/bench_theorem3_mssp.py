"""E-T3: multi-source shortest paths (Theorem 3).

Sweeps the number of sources |S| from 1 to n.  The paper's bound
O((|S|^{2/3}/n^{1/3} + log n) log n / ε) is flat until |S| ≈ √n·polylog and
grows as |S|^{2/3} afterwards; the measured rounds must show the same
crossover shape, and every estimate must respect the (1 + ε) stretch.
"""

from __future__ import annotations

from _harness import experiment_t3_mssp, format_table
from conftest import run_experiment


def test_theorem3_mssp(benchmark):
    rows = run_experiment(benchmark, experiment_t3_mssp, 96)
    print()
    print(format_table("E-T3: MSSP rounds vs |S| (n=96, eps=0.5)", rows))
    for row in rows:
        assert row["stretch"] <= row["stretch_bound"] + 1e-9
    # Crossover shape: going from 1 source to sqrt(n) sources changes the
    # round count by far less than the |S| factor itself (polylog regime)...
    small = rows[0]["rounds_excl_hopset"]
    at_sqrt = next(r for r in rows if r["|S|"] >= 9)["rounds_excl_hopset"]
    assert at_sqrt <= 4 * small
    # ...while the full |S| = n run costs more than the sqrt(n) run.
    full = rows[-1]["rounds_excl_hopset"]
    assert full >= at_sqrt
