"""E-T19: (S, d, k)-source detection (Theorem 19).

Sweeps the source-set size and the hop bound d; the round cost must be
linear in d (the paper's trade-off for exploiting sparsity) and grow slowly
with |S|.
"""

from __future__ import annotations

import collections

from _harness import experiment_t19_source_detection, format_table
from conftest import run_experiment


def test_theorem19_source_detection(benchmark):
    rows = run_experiment(benchmark, experiment_t19_source_detection, 96)
    print()
    print(format_table("E-T19: source detection rounds vs |S| and d (n=96)", rows))

    # Linear-in-d: for a fixed source count, rounds/d is roughly constant.
    by_sources = collections.defaultdict(list)
    for row in rows:
        by_sources[row["|S|"]].append(row)
    for source_count, group in by_sources.items():
        per_hop = [row["rounds_per_hop"] for row in group]
        assert max(per_hop) <= 2.5 * min(per_hop), f"|S|={source_count}: {per_hop}"
