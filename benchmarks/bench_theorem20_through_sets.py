"""E-T20: distance through node sets (Theorem 20).

Sweeps the per-node set size (k-nearest balls of growing k) and reports the
round cost next to the O(ρ^{2/3}/n^{1/3} + 1) bound.
"""

from __future__ import annotations

from _harness import experiment_t20_through_sets, format_table
from conftest import run_experiment


def test_theorem20_through_sets(benchmark):
    rows = run_experiment(benchmark, experiment_t20_through_sets, 96)
    print()
    print(format_table("E-T20: distance-through-sets rounds vs set size (n=96)", rows))
    # Rounds grow no faster than the bound's growth across the sweep, up to a
    # constant (the absolute values include the O(1) additive constants).
    first, last = rows[0], rows[-1]
    measured_growth = last["rounds"] / first["rounds"]
    bound_growth = max(1.0, last["bound"] / first["bound"])
    assert measured_growth <= 8 * bound_growth
