"""E-C35: near-3/2 diameter approximation (Claim 35).

Runs the diameter estimator on topologies with known, very different
diameters and checks the estimate falls in the guaranteed window.
"""

from __future__ import annotations

from _harness import experiment_c35_diameter, format_table
from conftest import run_experiment


def test_claim35_diameter(benchmark):
    rows = run_experiment(benchmark, experiment_c35_diameter)
    print()
    print(format_table("E-C35: diameter approximation (eps=0.5)", rows))
    for row in rows:
        assert row["estimate"] <= row["upper_bound"] + 1e-9
        assert row["estimate"] >= row["lower_bound"] - 1e-9
