"""E-ORACLE: distance-oracle query throughput and latency.

Builds every oracle strategy on a 256-node random graph and a 16x16 grid,
then measures cold (cache-miss) and cached queries/sec plus P50/P95/P99
query latency — the serve-side counterpart of the round-count experiments.

The acceptance floor asserted here: every strategy sustains at least
10,000 cached point queries/sec on the 256-node graphs (in practice the
measured rates are orders of magnitude higher).
"""

from __future__ import annotations

from _harness import experiment_oracle_queries, format_table
from conftest import run_experiment


def test_oracle_query_throughput(benchmark):
    rows = run_experiment(benchmark, experiment_oracle_queries, 256, 20_000)
    print()
    print(format_table("E-ORACLE: oracle queries/sec and latency (n=256)", rows))
    assert len(rows) == 6  # 3 strategies x 2 graph families
    for row in rows:
        assert row["cached_qps"] >= 10_000, row
        # Caching must not make things slower than recomputing per query.
        assert row["cached_qps"] >= row["cold_qps"] * 0.5, row
        assert row["p50_us"] <= row["p95_us"] <= row["p99_us"], row
